"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs go through `setup.py develop` (metadata lives in
pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DEX: self-healing expanders -- full reproduction "
        "(Pandurangan, Robinson, Trehan)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={
        # the CI static-analysis/lint toolchain (not needed at runtime)
        "dev": ["mypy>=1.8", "ruff>=0.4", "pytest>=7.0", "hypothesis>=6.0"],
    },
)
