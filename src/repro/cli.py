"""Command-line experiment runner.

Run any overlay against any churn strategy and print the measured
summary, without writing a script::

    python -m repro.cli --overlay dex --adversary random --steps 500
    python -m repro.cli --overlay law-siu --adversary degree-attack --n0 128
    python -m repro.cli --list
"""

from __future__ import annotations

import argparse
import sys

from repro.adversary import (
    CoordinatorAttack,
    DegreeAttack,
    DeleteOnly,
    FlashCrowd,
    InsertOnly,
    LowLoadAttack,
    MassLeave,
    OscillatingChurn,
    RandomChurn,
    SpareDepleter,
)
from repro.harness import OVERLAY_FACTORIES, Table, run_campaign, run_churn

ADVERSARIES = {
    "random": lambda seed: RandomChurn(0.5, seed=seed),
    "insert-only": lambda seed: InsertOnly(seed=seed),
    "delete-only": lambda seed: DeleteOnly(seed=seed),
    "oscillating": lambda seed: OscillatingChurn(seed=seed),
    "degree-attack": lambda seed: DegreeAttack(seed=seed),
    "coordinator-attack": lambda seed: CoordinatorAttack(seed=seed),
    "spare-depleter": lambda seed: SpareDepleter(seed=seed),
    "low-load-attack": lambda seed: LowLoadAttack(seed=seed),
    "flash-crowd": lambda seed: FlashCrowd(seed=seed),
    "mass-leave": lambda seed: MassLeave(seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Churn an expander overlay and report healing costs.",
    )
    parser.add_argument("--overlay", default="dex", choices=sorted(OVERLAY_FACTORIES))
    parser.add_argument("--adversary", default="random", choices=sorted(ADVERSARIES))
    parser.add_argument("--n0", type=int, default=64, help="initial network size")
    parser.add_argument("--steps", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample-every", type=int, default=50)
    parser.add_argument(
        "--campaign",
        action="store_true",
        help="drive adversary batches through the batch-parallel healing "
        "engine (run_campaign) instead of one step at a time",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="batch-size cap for --campaign mode",
    )
    parser.add_argument(
        "--list", action="store_true", help="list overlays and adversaries"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("overlays:   " + ", ".join(sorted(OVERLAY_FACTORIES)))
        print("adversaries: " + ", ".join(sorted(ADVERSARIES)))
        return 0

    overlay = OVERLAY_FACTORIES[args.overlay](args.n0, seed=args.seed)
    adversary = ADVERSARIES[args.adversary](args.seed)
    if args.campaign:
        result = run_campaign(
            overlay,
            adversary,
            events=args.steps,
            max_batch=args.max_batch,
            sample_every=args.sample_every,
        )
    else:
        result = run_churn(
            overlay, adversary, steps=args.steps, sample_every=args.sample_every
        )

    mode = f", batches<={args.max_batch}" if args.campaign else ""
    table = Table(
        f"{args.overlay} vs {args.adversary} "
        f"(n0={args.n0}, {args.steps} steps, seed={args.seed}{mode})",
        ["quantity", "median", "p95", "max"],
    )
    for attribute in ("rounds", "messages", "topology_changes"):
        summary = result.cost_summary(attribute)
        table.add_row(attribute, summary.median, summary.p95, summary.maximum)
    table.add_note(f"final n = {overlay.size}")
    table.add_note(
        f"spectral gap: min {result.min_gap:.4f}, final {result.final_gap():.4f}"
    )
    table.add_note(f"max degree seen: {result.max_degree_seen}")
    if args.campaign:
        table.add_note(
            f"campaign: {result.steps} events in {result.batches} batches "
            f"({result.batched_events} batch-healed, "
            f"{result.fallback_batches} fallbacks)"
        )
    if result.skipped_actions:
        table.add_note(f"skipped illegal adversary actions: {result.skipped_actions}")
    print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
