"""Command-line experiment runner.

Run any overlay against any churn strategy and print the measured
summary, without writing a script::

    python -m repro.cli --overlay dex --adversary random --steps 500
    python -m repro.cli --overlay law-siu --adversary degree-attack --n0 128
    python -m repro.cli --list

Two subcommands drive the membership-service gateway (PR 5)::

    # live gateway under open-loop Poisson traffic, periodic snapshots
    python -m repro.cli serve --n0 1024 --rate 2000 --duration 5

    # the soak benchmark (micro-batched vs per-request gateway),
    # merged under the `service` key of BENCH_perf.json
    python -m repro.cli soak --sizes 4096 --duration 2 --out BENCH_perf.json

A third renders trace JSONL files written by the obs subsystem
(``soak --trace``, ``recording_to``, shard worker ``trace_path``)::

    python -m repro.cli trace /tmp/trace.jsonl --rollup
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.adversary import (
    CoordinatorAttack,
    DegreeAttack,
    DeleteOnly,
    FlashCrowd,
    InsertOnly,
    LowLoadAttack,
    MassLeave,
    OscillatingChurn,
    RandomChurn,
    SpareDepleter,
)
from repro.harness import OVERLAY_FACTORIES, Table, run_campaign, run_churn

ADVERSARIES = {
    "random": lambda seed: RandomChurn(0.5, seed=seed),
    "insert-only": lambda seed: InsertOnly(seed=seed),
    "delete-only": lambda seed: DeleteOnly(seed=seed),
    "oscillating": lambda seed: OscillatingChurn(seed=seed),
    "degree-attack": lambda seed: DegreeAttack(seed=seed),
    "coordinator-attack": lambda seed: CoordinatorAttack(seed=seed),
    "spare-depleter": lambda seed: SpareDepleter(seed=seed),
    "low-load-attack": lambda seed: LowLoadAttack(seed=seed),
    "flash-crowd": lambda seed: FlashCrowd(seed=seed),
    "mass-leave": lambda seed: MassLeave(seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Churn an expander overlay and report healing costs.",
    )
    parser.add_argument("--overlay", default="dex", choices=sorted(OVERLAY_FACTORIES))
    parser.add_argument("--adversary", default="random", choices=sorted(ADVERSARIES))
    parser.add_argument("--n0", type=int, default=64, help="initial network size")
    parser.add_argument("--steps", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample-every", type=int, default=50)
    parser.add_argument(
        "--campaign",
        action="store_true",
        help="drive adversary batches through the batch-parallel healing "
        "engine (run_campaign) instead of one step at a time",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="batch-size cap for --campaign mode",
    )
    parser.add_argument(
        "--list", action="store_true", help="list overlays and adversaries"
    )
    return parser


def _add_overload_flags(parser: argparse.ArgumentParser) -> None:
    """The PR 7 overload-control knobs, shared by serve and soak."""
    from repro.service import POLICIES

    parser.add_argument("--policy", default="fixed", choices=sorted(POLICIES),
                        help="gateway admission/batching policy")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline; expired requests are "
                        "answered with a rejection, never healed late")
    parser.add_argument("--retries", type=int, default=0,
                        help="client retries on backpressure/shed rejections "
                        "(0 = no retry)")
    parser.add_argument("--retry-base-ms", type=float, default=2.0,
                        help="base backoff of the retry policy")
    parser.add_argument("--retry-cap-ms", type=float, default=50.0,
                        help="backoff cap of the retry policy")


def _retry_policy(args):
    from repro.service import RetryPolicy

    if args.retries <= 0:
        return None
    return RetryPolicy(
        max_retries=args.retries,
        base_ms=args.retry_base_ms,
        cap_ms=args.retry_cap_ms,
    )


_SERVE_QUEUE_LIMIT_DEFAULT = 4096


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description="Run the membership gateway under open-loop Poisson "
        "traffic and print latency/throughput snapshots.",
    )
    parser.add_argument("--n0", type=int, default=1024, help="initial network size")
    parser.add_argument("--rate", type=float, default=1000.0,
                        help="open-loop arrival rate (requests/sec)")
    parser.add_argument("--duration", type=float, default=5.0, help="seconds of load")
    parser.add_argument("--join-fraction", type=float, default=0.6)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--window-ms", type=float, default=2.0)
    parser.add_argument("--queue-limit", type=int,
                        default=_SERVE_QUEUE_LIMIT_DEFAULT)
    parser.add_argument("--pipeline", action="store_true",
                        help="overlap flush validation with the previous "
                        "flush's heal wave (single-gateway mode only)")
    parser.add_argument("--shards", type=int, default=1,
                        help="serve from an N-shard worker cluster behind "
                        "the id-region router instead of one gateway")
    _add_overload_flags(parser)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--report-every", type=float, default=1.0,
                        help="seconds between progress snapshots (0 = final only)")
    parser.add_argument("--checkpoint-dir", type=pathlib.Path, default=None,
                        help="write periodic snapshots into this directory")
    parser.add_argument("--checkpoint-every", type=int, default=32,
                        help="flushes between checkpoints")
    parser.add_argument("--checkpoint-keep", type=int, default=3,
                        help="newest checkpoints retained")
    parser.add_argument("--restore", action="store_true",
                        help="restore from the newest checkpoint in "
                        "--checkpoint-dir instead of bootstrapping")
    parser.add_argument("--metrics-out", type=pathlib.Path, default=None,
                        help="write the final Prometheus text exposition "
                        "of the gateway's metrics registry to this file")
    return parser


def cmd_serve(argv: list[str]) -> int:
    import asyncio
    import contextlib
    import signal as signal_module

    from repro.core.config import DexConfig
    from repro.core.dex import DexNetwork
    from repro.service import MembershipGateway, poisson_load

    args = _serve_parser().parse_args(argv)
    if args.shards > 1:
        return _serve_sharded(args)
    if args.restore:
        if args.checkpoint_dir is None:
            print("--restore requires --checkpoint-dir", file=sys.stderr)
            return 2
        from repro.persist import restore_latest

        net, restored_from, skipped = restore_latest(args.checkpoint_dir)
        print(
            f"restored step {net.step_count} (n = {net.size}) from "
            f"{restored_from}"
            + (f", skipped {len(skipped)} corrupt checkpoints" if skipped else "")
        )
    else:
        config = DexConfig(seed=args.seed, type2_mode="simplified")
        net = DexNetwork.bootstrap(args.n0, config, seed=args.seed)

    async def reporter(gateway: MembershipGateway) -> None:
        while True:
            await asyncio.sleep(args.report_every)
            row = gateway.metrics.window()
            print(
                f"  [{row['elapsed_s']:.1f}s] {row['events']} acks "
                f"({row['events_per_s']:.0f}/s)  p50={row['ack_p50_ms']}ms "
                f"p99={row['ack_p99_ms']}ms  depth={gateway.queue_depth}"
            )

    async def run():
        gateway = MembershipGateway(
            net,
            max_batch=args.max_batch,
            batch_window_ms=args.window_ms,
            queue_limit=args.queue_limit,
            policy=args.policy,
            pipeline=args.pipeline,
            deadline_ms=args.deadline_ms,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_keep=args.checkpoint_keep,
        )
        # Windows re-anchored after any (possibly slow) restore, so the
        # first reported rates use this process's serving time only.
        gateway.metrics.reset_windows()
        await gateway.start()
        # Ctrl-C / SIGTERM become a graceful drain: stop offering load,
        # answer every queued future, write the final checkpoint.  A
        # raw KeyboardInterrupt would instead tear the loop down with
        # unresolved futures.
        loop = asyncio.get_running_loop()
        interrupted = asyncio.Event()
        handled: list = []
        for signum in (signal_module.SIGINT, signal_module.SIGTERM):
            try:
                loop.add_signal_handler(signum, interrupted.set)
                handled.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        watcher = (
            asyncio.ensure_future(reporter(gateway))
            if args.report_every > 0
            else None
        )
        load = asyncio.ensure_future(
            poisson_load(
                gateway,
                rate_hz=args.rate,
                duration_s=args.duration,
                join_fraction=args.join_fraction,
                seed=args.seed + 1,
                retry=_retry_policy(args),
            )
        )
        stop = asyncio.ensure_future(interrupted.wait())
        try:
            await asyncio.wait({load, stop}, return_when=asyncio.FIRST_COMPLETED)
            stats = None
            if interrupted.is_set() and not load.done():
                print("interrupt: draining queued requests ...")
                load.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await load
            else:
                stats = await load
            summary = await gateway.drain()
            # Let clients the cancelled generator left behind observe
            # their (already resolved) acks before the loop closes.
            for _ in range(3):
                await asyncio.sleep(0)
        finally:
            stop.cancel()
            if watcher is not None:
                watcher.cancel()
            for signum in handled:
                loop.remove_signal_handler(signum)
        if args.metrics_out is not None:
            args.metrics_out.write_text(
                gateway.publish_registry().render_prometheus(),
                encoding="utf-8",
            )
        return stats, gateway.metrics.snapshot(), summary

    print(
        f"serving n0={net.size} at {args.rate:.0f} req/s for {args.duration}s "
        f"(max_batch={args.max_batch}, window={args.window_ms}ms)"
    )
    stats, snap, summary = asyncio.run(run())
    table = Table(
        f"gateway soak (n0={args.n0}, rate={args.rate:.0f}/s, "
        f"seed={args.seed})",
        ["quantity", "value"],
    )
    if stats is not None:
        table.add_row("offered", stats.offered)
        table.add_row("acked ok", stats.ok)
        table.add_row("rejected", stats.rejected)
        table.add_row("backpressure", stats.backpressure)
        if stats.shed:
            table.add_row("shed", stats.shed)
        if stats.deadline_timeouts:
            table.add_row("deadline timeouts", stats.deadline_timeouts)
        if stats.retries:
            table.add_row("retries", stats.retries)
    else:
        table.add_row("interrupted", "yes (drained)")
        table.add_row("pending answered", summary["pending_answered"])
    table.add_row("events/sec", snap["events_per_s"])
    table.add_row("goodput/sec", snap["goodput_per_s"])
    table.add_row("ack p50 (ms)", snap["ack_p50_ms"])
    table.add_row("ack p99 (ms)", snap["ack_p99_ms"])
    table.add_row("mean batch", snap["mean_batch"])
    table.add_note(
        f"final n = {net.size}, batches = {snap['batches']}, "
        f"policy = {args.policy}"
    )
    if summary["final_checkpoint"] is not None:
        table.add_note(
            f"checkpoints: {summary['checkpoints_written']} written "
            f"({summary['checkpoint_errors']} errors), "
            f"final {summary['final_checkpoint']}"
        )
    print(table.render())
    return 0


def _serve_sharded(args) -> int:
    """``serve --shards N``: Poisson traffic against an N-worker cluster
    behind the id-region router, with the same progress snapshots and a
    final cluster audit."""
    import asyncio

    from repro.service.loadgen import poisson_load
    from repro.service.router import start_cluster

    if args.restore:
        print("--restore is per-shard in cluster mode; restart a dead "
              "shard from its checkpoint via the router instead",
              file=sys.stderr)
        return 2
    if args.pipeline:
        print("--pipeline applies to the single gateway; shard workers "
              "are already overlapped across processes", file=sys.stderr)
        return 2
    # Overload knobs the worker config does not speak yet are rejected
    # loudly, not silently downgraded to the fixed defaults.
    if args.policy != "fixed":
        print(f"--policy {args.policy} is not supported in cluster mode; "
              "shard workers run the fixed flush loop (admission "
              "policies are not yet threaded through to worker configs)",
              file=sys.stderr)
        return 2
    if args.queue_limit != _SERVE_QUEUE_LIMIT_DEFAULT:
        print("--queue-limit applies to the single gateway's bounded "
              "queue; shard workers queue at the router and are not "
              "bounded by this flag", file=sys.stderr)
        return 2

    async def run():
        router = await start_cluster(
            args.n0,
            args.shards,
            seed=args.seed,
            max_batch=args.max_batch,
            window_ms=args.window_ms,
            checkpoint_root=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            deadline_ms=args.deadline_ms,
        )

        async def reporter():
            while True:
                await asyncio.sleep(args.report_every)
                row = router.metrics.window()
                print(
                    f"  [{row['elapsed_s']:.1f}s] {row['events']} acks "
                    f"({row['events_per_s']:.0f}/s)  p50={row['ack_p50_ms']}ms "
                    f"p99={row['ack_p99_ms']}ms"
                )

        watcher = (
            asyncio.ensure_future(reporter()) if args.report_every > 0 else None
        )
        try:
            stats = await poisson_load(
                router,
                rate_hz=args.rate,
                duration_s=args.duration,
                join_fraction=args.join_fraction,
                seed=args.seed + 1,
                retry=_retry_policy(args),
            )
            audit = await router.cluster_audit()
        finally:
            if watcher is not None:
                watcher.cancel()
        if args.metrics_out is not None:
            args.metrics_out.write_text(
                router.publish_registry().render_prometheus(),
                encoding="utf-8",
            )
        summary = await router.drain()
        return stats, router.metrics.snapshot(), audit, summary

    print(
        f"serving n0={args.n0} across {args.shards} shards at "
        f"{args.rate:.0f} req/s for {args.duration}s "
        f"(max_batch={args.max_batch}, window={args.window_ms}ms)"
    )
    stats, snap, audit, summary = asyncio.run(run())
    table = Table(
        f"sharded gateway soak (n0={args.n0}, shards={args.shards}, "
        f"rate={args.rate:.0f}/s, seed={args.seed})",
        ["quantity", "value"],
    )
    table.add_row("offered", stats.offered)
    table.add_row("acked ok", stats.ok)
    table.add_row("rejected", stats.rejected)
    table.add_row("events/sec", snap["events_per_s"])
    table.add_row("goodput/sec", snap["goodput_per_s"])
    table.add_row("ack p50 (ms)", snap["ack_p50_ms"])
    table.add_row("ack p99 (ms)", snap["ack_p99_ms"])
    handoffs = summary["handoffs"]
    table.add_row(
        "handoffs",
        f"{handoffs['committed']}/{handoffs['attempted']} committed",
    )
    table.add_row("cluster audit", "ok" if audit["ok"] else f"FAILED {audit['errors'][:2]}")
    table.add_note(
        f"total nodes = {audit['total_nodes']} over {args.shards} shards; "
        "per-shard events/s: "
        + ", ".join(
            f"{row['shard']}: {row['events_per_s']:.0f}"
            for row in summary["per_shard"]
        )
    )
    print(table.render())
    return 0 if audit["ok"] else 1


def _soak_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli soak",
        description="Gateway soak benchmark: sustained events/sec and ack "
        "percentiles, micro-batched vs per-request, merged into "
        "BENCH_perf.json under the `service` key.",
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=[4096])
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--clients", type=int, default=256)
    parser.add_argument("--max-batch", type=int, default=128)
    parser.add_argument("--window-ms", type=float, default=2.0)
    parser.add_argument("--pipeline", action="store_true",
                        help="run the batched gateway in pipelined mode")
    _add_overload_flags(parser)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the per-request comparison run")
    parser.add_argument("--label", default="service")
    parser.add_argument("--checkpoint-dir", type=pathlib.Path, default=None,
                        help="periodically snapshot the batched soak's "
                        "network into this directory")
    parser.add_argument("--checkpoint-every", type=int, default=32,
                        help="flushes between checkpoints")
    parser.add_argument("--checkpoint-keep", type=int, default=3,
                        help="newest checkpoints retained")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="merge results into this BENCH_perf.json (omit to skip)")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        help="record request-to-wave spans during the soak "
                        "and export them as trace JSONL to this file")
    return parser


def cmd_soak(argv: list[str]) -> int:
    import contextlib

    from repro.harness import perf
    from repro.obs import recording_to

    args = _soak_parser().parse_args(argv)
    results: dict[str, dict] = {}
    recording = (
        recording_to(args.trace)
        if args.trace is not None
        else contextlib.nullcontext()
    )
    with recording:
        return _run_soak(args, results, perf)


def _run_soak(args, results: dict[str, dict], perf) -> int:
    for n in args.sizes:
        checkpoint_dir = (
            str(args.checkpoint_dir / f"n{n}")
            if args.checkpoint_dir is not None
            else None
        )
        row = perf.bench_service(
            n,
            duration_s=args.duration,
            max_batch=args.max_batch,
            batch_window_ms=args.window_ms,
            clients=args.clients,
            seed=args.seed,
            compare_per_request=not args.no_baseline,
            policy=args.policy,
            deadline_ms=args.deadline_ms,
            retry=_retry_policy(args),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_keep=args.checkpoint_keep,
            pipeline=args.pipeline,
        )
        results[f"n{n}"] = row
        speedup = (
            f"  speedup={row['service_speedup_x']}x"
            if "service_speedup_x" in row
            else ""
        )
        checkpoints = (
            f"  checkpoints={row['checkpoints_written']}"
            if "checkpoints_written" in row
            else ""
        )
        print(
            f"n{n}: {row['events']} events at {row['events_per_s']:.0f}/s "
            f"(p50={row['ack_p50_ms']}ms p99={row['ack_p99_ms']}ms, "
            f"mean batch {row['mean_batch']}){speedup}{checkpoints}"
        )
    if args.out is not None:
        perf.write_service(args.out, args.label, results)
        print(f"wrote {args.out}")
    if args.trace is not None:
        print(f"tracing {args.trace}")
    return 0


def cmd_trace(argv: list[str]) -> int:
    from repro.obs.render import main as render_main

    return render_main(argv)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return cmd_serve(argv[1:])
    if argv and argv[0] == "soak":
        return cmd_soak(argv[1:])
    if argv and argv[0] == "trace":
        return cmd_trace(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list:
        print("overlays:   " + ", ".join(sorted(OVERLAY_FACTORIES)))
        print("adversaries: " + ", ".join(sorted(ADVERSARIES)))
        return 0

    overlay = OVERLAY_FACTORIES[args.overlay](args.n0, seed=args.seed)
    adversary = ADVERSARIES[args.adversary](args.seed)
    if args.campaign:
        result = run_campaign(
            overlay,
            adversary,
            events=args.steps,
            max_batch=args.max_batch,
            sample_every=args.sample_every,
        )
    else:
        result = run_churn(
            overlay, adversary, steps=args.steps, sample_every=args.sample_every
        )

    mode = f", batches<={args.max_batch}" if args.campaign else ""
    table = Table(
        f"{args.overlay} vs {args.adversary} "
        f"(n0={args.n0}, {args.steps} steps, seed={args.seed}{mode})",
        ["quantity", "median", "p95", "max"],
    )
    for attribute in ("rounds", "messages", "topology_changes"):
        summary = result.cost_summary(attribute)
        table.add_row(attribute, summary.median, summary.p95, summary.maximum)
    table.add_note(f"final n = {overlay.size}")
    table.add_note(
        f"spectral gap: min {result.min_gap:.4f}, final {result.final_gap():.4f}"
    )
    table.add_note(f"max degree seen: {result.max_degree_seen}")
    if args.campaign:
        table.add_note(
            f"campaign: {result.steps} events in {result.batches} batches "
            f"({result.batched_events} batch-healed, "
            f"{result.fallbacks} rejected actions, "
            f"{result.fallback_batches} replayed batches)"
        )
    if result.skipped_actions:
        table.add_note(f"skipped illegal adversary actions: {result.skipped_actions}")
    print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
