"""Shared type aliases and tiny value objects used across the library.

The paper distinguishes *vertices* (elements of the virtual p-cycle,
integers in ``Z_p``) from *nodes* (real processors).  We mirror that
vocabulary: :data:`Vertex` values live in the virtual graph, :data:`NodeId`
values name real nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TypeAlias

NodeId: TypeAlias = int
Vertex: TypeAlias = int


class Layer(Enum):
    """Which virtual graph a vertex belongs to during a staggered type-2
    recovery.  Outside staggered operations only :attr:`OLD` exists."""

    OLD = "old"
    NEW = "new"


class StepKind(Enum):
    """What the adversary did in a step (Section 2)."""

    INSERT = "insert"
    DELETE = "delete"
    BATCH = "batch"
    BOOTSTRAP = "bootstrap"


class RecoveryType(Enum):
    """How the algorithm healed a step (Section 4)."""

    TYPE1 = "type1"
    TYPE2_INFLATE = "type2-inflate"
    TYPE2_DEFLATE = "type2-deflate"
    STAGGERED_INFLATE_START = "staggered-inflate-start"
    STAGGERED_DEFLATE_START = "staggered-deflate-start"
    TYPE1_DURING_STAGGER = "type1-during-stagger"
    NONE = "none"


@dataclass(frozen=True)
class VertexRef:
    """A vertex tagged with the layer it belongs to."""

    layer: Layer
    vertex: Vertex

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.layer.value}:{self.vertex}"
