"""Inflation and deflation cloud maps between p-cycles (Section 4.2).

All arithmetic is exact integer arithmetic: the paper's ``alpha`` is the
rational ``p_new / p_old`` and the ceil/floor expressions of Eqs. (6)-(7)
are evaluated without floating point, so the bijection properties proved
in Lemmas 4(b) and 6(b) hold *exactly* in code (and are property-tested).

Inflation (``p_old -> p_new`` with ``p_new in (4 p_old, 8 p_old)``):
every old vertex ``x`` is replaced by the *cloud*

    y_j = ceil(alpha * x) + j   for 0 <= j <= c(x),
    c(x) = ceil(alpha * (x+1)) - ceil(alpha * x) - 1          (Eqs. 6-7)

The clouds partition ``Z_{p_new}`` and have size in {floor(alpha),
ceil(alpha)} <= 8 = zeta.

Deflation (``p_new in (p_old/8, p_old/4)``): old vertex ``x`` maps to
``floor(x / alpha)`` with ``alpha = p_old / p_new``; the smallest ``x`` of
each preimage is the *dominating* vertex of its deflation cloud.
"""

from __future__ import annotations

from repro.errors import VirtualGraphError
from repro.types import Vertex


def _check_pair(p_old: int, p_new: int) -> None:
    if p_old < 2 or p_new < 2:
        raise VirtualGraphError(f"invalid prime pair ({p_old}, {p_new})")


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ----------------------------------------------------------------------
# inflation (p_new > p_old)
# ----------------------------------------------------------------------
def inflation_cloud(x: Vertex, p_old: int, p_new: int) -> list[Vertex]:
    """The cloud of new vertices replacing old vertex ``x`` (Eq. 7)."""
    _check_pair(p_old, p_new)
    if p_new <= p_old:
        raise VirtualGraphError("inflation requires p_new > p_old")
    if not 0 <= x < p_old:
        raise VirtualGraphError(f"vertex {x} not in Z_{p_old}")
    start = _ceil_div(p_new * x, p_old)  # ceil(alpha * x)
    end = _ceil_div(p_new * (x + 1), p_old)  # ceil(alpha * (x+1))
    return [y % p_new for y in range(start, end)]


def inflation_cloud_size(x: Vertex, p_old: int, p_new: int) -> int:
    """``c(x) + 1`` without materialising the cloud."""
    start = _ceil_div(p_new * x, p_old)
    end = _ceil_div(p_new * (x + 1), p_old)
    return end - start


def inflation_parent(y: Vertex, p_old: int, p_new: int) -> Vertex:
    """The unique old vertex whose cloud contains new vertex ``y``
    (inverse of Eq. 7; every node can compute this locally, which is what
    makes intermediate edges in Procedure ``inflate`` possible)."""
    _check_pair(p_old, p_new)
    if p_new <= p_old:
        raise VirtualGraphError("inflation requires p_new > p_old")
    if not 0 <= y < p_new:
        raise VirtualGraphError(f"vertex {y} not in Z_{p_new}")
    return (y * p_old) // p_new


# ----------------------------------------------------------------------
# deflation (p_new < p_old)
# ----------------------------------------------------------------------
def deflation_image(x: Vertex, p_old: int, p_new: int) -> Vertex:
    """``y_x = floor(x / alpha)`` with ``alpha = p_old / p_new``."""
    _check_pair(p_old, p_new)
    if p_new >= p_old:
        raise VirtualGraphError("deflation requires p_new < p_old")
    if not 0 <= x < p_old:
        raise VirtualGraphError(f"vertex {x} not in Z_{p_old}")
    return (x * p_new) // p_old


def is_dominating(x: Vertex, p_old: int, p_new: int) -> bool:
    """True iff ``x`` is the smallest old vertex mapping to its image,
    i.e. the vertex that *dominates* its deflation cloud (Section 4.4.2)."""
    if x == 0:
        return True
    return deflation_image(x - 1, p_old, p_new) < deflation_image(x, p_old, p_new)


def dominating_vertex(y: Vertex, p_old: int, p_new: int) -> Vertex:
    """The dominating (smallest) old vertex of the deflation cloud of new
    vertex ``y``: ``ceil(y * alpha)``."""
    _check_pair(p_old, p_new)
    if p_new >= p_old:
        raise VirtualGraphError("deflation requires p_new < p_old")
    if not 0 <= y < p_new:
        raise VirtualGraphError(f"vertex {y} not in Z_{p_new}")
    return _ceil_div(y * p_old, p_new)


def deflation_cloud(y: Vertex, p_old: int, p_new: int) -> list[Vertex]:
    """All old vertices mapping to new vertex ``y``."""
    start = dominating_vertex(y, p_old, p_new)
    if y + 1 < p_new:
        end = dominating_vertex(y + 1, p_old, p_new)
    else:
        end = p_old
    return list(range(start, end))
