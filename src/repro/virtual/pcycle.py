"""The p-cycle expander family (Definition 1, after Lubotzky [19]).

For a prime ``p``, ``Z(p)`` is the 3-regular multigraph on the vertex set
``Z_p = {0, ..., p-1}`` with

* cycle edges ``(x, x+1 mod p)`` and ``(x, x-1 mod p)``,
* inverse chords ``(x, x^{-1} mod p)`` for ``x, y > 0``,
* a self-loop at vertex ``0`` (and implicitly at ``1`` and ``p-1``, which
  are their own inverses), so that *every* vertex has degree exactly 3
  (self-loops counted once, the convention of [14] for this family).

The graph is an expander with a constant spectral gap for every prime p
[19]; benchmark E9 measures the gap across the family.

Neighbors are computable in O(1) (the inverse via Fermat's little theorem),
so the graph is kept *implicit*: no adjacency structure is materialised
unless :meth:`PCycle.adjacency_matrix` is called.  Shortest paths -- needed
for coordinator messages and DHT routing, both locally computable by nodes
in the paper -- use bidirectional BFS over the implicit neighbor function,
which explores O(sqrt(p)) vertices on this family.
"""

from __future__ import annotations

from collections import deque
from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import VirtualGraphError
from repro.types import Vertex
from repro.virtual.primes import is_prime

_MIN_P = 5

#: primes up to this size get O(p)-space cached structures (the inverse
#: table and the vertex-0 BFS tree); larger p falls back to on-demand
#: modular exponentiation and bidirectional BFS.
_TABLE_MAX_P = 1 << 18


@lru_cache(maxsize=16)
def _inverse_table(p: int) -> list[int]:
    """All multiplicative inverses mod ``p`` in O(p) total time via the
    classic recurrence ``inv[i] = -(p // i) * inv[p % i] mod p`` -- far
    cheaper than one Fermat ``pow`` per neighbor query on the hot path."""
    inv = [0] * p
    if p > 1:
        inv[1] = 1
    for i in range(2, p):
        inv[i] = (-(p // i) * inv[p % i]) % p
    return inv


@lru_cache(maxsize=16)
def _zero_tree(p: int) -> list[int]:
    """Parent array of a BFS tree of ``Z(p)`` rooted at vertex 0
    (``parent[0] == 0``).  Built once per prime: every coordinator update
    routes to vertex 0 (Algorithm 4.7), so the amortized cost of shortest
    paths to/from 0 drops from an O(sqrt(p)) search per step to an
    O(path-length) tree walk."""
    inv = _inverse_table(p)
    parent = [-1] * p
    parent[0] = 0
    frontier = [0]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            chord = inv[u] if u > 0 else 0
            for w in ((u - 1) % p, (u + 1) % p, chord):
                if parent[w] < 0:
                    parent[w] = u
                    nxt.append(w)
        frontier = nxt
    return parent


class PCycle:
    """Implicit representation of the p-cycle ``Z(p)``."""

    __slots__ = ("p", "_inv")

    def __init__(self, p: int):
        if p < _MIN_P or not is_prime(p):
            raise VirtualGraphError(f"p-cycle size must be a prime >= {_MIN_P}, got {p}")
        self.p = p
        #: instance reference to the shared inverse table (None above the
        #: table cutoff) -- neighbor queries sit on the healing hot path,
        #: so they must not pay the lru_cache wrapper per call
        self._inv: list[int] | None = (
            _inverse_table(p) if p <= _TABLE_MAX_P else None
        )

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.p

    def __contains__(self, x: object) -> bool:
        return isinstance(x, int) and 0 <= x < self.p

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PCycle) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PCycle", self.p))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PCycle(p={self.p})"

    def vertices(self) -> range:
        """All vertices ``0..p-1``."""
        return range(self.p)

    def check_vertex(self, x: Vertex) -> None:
        if not (0 <= x < self.p):
            raise VirtualGraphError(f"vertex {x} not in Z_{self.p}")

    def inverse(self, x: Vertex) -> Vertex:
        """Multiplicative inverse of ``x`` mod p (only defined for x > 0)."""
        self.check_vertex(x)
        if x == 0:
            raise VirtualGraphError("vertex 0 has no multiplicative inverse")
        return pow(x, self.p - 2, self.p)

    def chord_target(self, x: Vertex) -> Vertex:
        """The third edge endpoint of ``x``: its inverse for x > 0, and x
        itself (the explicit self-loop) for x = 0."""
        self.check_vertex(x)
        if x == 0:
            return 0
        if self._inv is not None:
            return self._inv[x]
        return pow(x, self.p - 2, self.p)

    def neighbor_multiset(self, x: Vertex) -> tuple[Vertex, Vertex, Vertex]:
        """The three edge endpoints incident to ``x`` (with multiplicity;
        an entry equal to ``x`` denotes a self-loop).  Every vertex has
        exactly three, which is what makes the family 3-regular."""
        p = self.p
        if not 0 <= x < p:
            raise VirtualGraphError(f"vertex {x} not in Z_{p}")
        if x == 0:
            chord = 0
        elif self._inv is not None:
            chord = self._inv[x]
        else:
            chord = pow(x, p - 2, p)
        return ((x - 1) % p, (x + 1) % p, chord)

    def distinct_neighbors(self, x: Vertex) -> set[Vertex]:
        """Distinct neighbors of ``x`` excluding itself (for path finding)."""
        return {y for y in self.neighbor_multiset(x) if y != x}

    def has_self_loop(self, x: Vertex) -> bool:
        """True for 0, 1 and p-1 (the self-inverse vertices)."""
        return self.chord_target(x) == x

    def degree(self, x: Vertex) -> int:
        """Always 3 (self-loops counted once, per [14])."""
        self.check_vertex(x)
        return 3

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Each undirected edge once, self-loops as ``(x, x)``."""
        p = self.p
        for x in range(p):
            y = (x + 1) % p
            yield (min(x, y), max(x, y))
        for x in range(p):
            y = self.chord_target(x)
            if y >= x:  # each chord once; includes self-loops (y == x)
                yield (x, y)

    def num_edges(self) -> int:
        """Number of undirected edges (self-loops counted once): 3p/2
        rounded to account for the three self-loops."""
        return sum(1 for _ in self.edges())

    # ------------------------------------------------------------------
    # adjacency matrix (for spectral analysis)
    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> sp.csr_matrix:
        """Sparse adjacency with multi-edge multiplicities and self-loops
        counted once; every row sums to 3."""
        p = self.p
        rows = np.empty(3 * p, dtype=np.int64)
        cols = np.empty(3 * p, dtype=np.int64)
        k = 0
        for x in range(p):
            for y in self.neighbor_multiset(x):
                rows[k] = x
                cols[k] = y
                k += 1
        data = np.ones(3 * p, dtype=np.float64)
        return sp.csr_matrix((data, (rows, cols)), shape=(p, p))

    # ------------------------------------------------------------------
    # shortest paths (locally computable by every node in the paper)
    # ------------------------------------------------------------------
    def shortest_path(self, src: Vertex, dst: Vertex) -> list[Vertex]:
        """A shortest path from ``src`` to ``dst`` (inclusive).

        Bidirectional BFS over the implicit neighbor function.  Both sides
        expand complete levels; once the two searches have completed levels
        ``lf`` and ``lb``, every path of length <= lf + lb has a vertex seen
        by both sides, so the search can stop as soon as the best meeting
        sum is <= lf + lb + 1.  This guarantees exact shortest paths while
        exploring only O(sqrt(p)) vertices on the expander family.
        """
        self.check_vertex(src)
        self.check_vertex(dst)
        if src == dst:
            return [src]
        if self.p <= _TABLE_MAX_P and (src == 0 or dst == 0):
            return self._path_via_zero_tree(src, dst)
        dist_f: dict[Vertex, int] = {src: 0}
        dist_b: dict[Vertex, int] = {dst: 0}
        parent_f: dict[Vertex, Vertex | None] = {src: None}
        parent_b: dict[Vertex, Vertex | None] = {dst: None}
        frontier_f: list[Vertex] = [src]
        frontier_b: list[Vertex] = [dst]
        level_f = 0
        level_b = 0
        best_total: int | None = None
        best_meet: Vertex | None = None
        while frontier_f or frontier_b:
            if best_total is not None and best_total <= level_f + level_b + 1:
                break
            # Expand the smaller non-empty frontier, a full level at a time.
            expand_forward = bool(frontier_f) and (
                not frontier_b or len(frontier_f) <= len(frontier_b)
            )
            if expand_forward:
                frontier_f = self._expand_level(
                    frontier_f, dist_f, parent_f, level_f + 1
                )
                level_f += 1
                meets = [w for w in frontier_f if w in dist_b]
            else:
                frontier_b = self._expand_level(
                    frontier_b, dist_b, parent_b, level_b + 1
                )
                level_b += 1
                meets = [w for w in frontier_b if w in dist_f]
            for w in meets:
                total = dist_f[w] + dist_b[w]
                if best_total is None or total < best_total:
                    best_total = total
                    best_meet = w
        if best_meet is None:  # pragma: no cover - the p-cycle is connected
            raise VirtualGraphError(f"no path between {src} and {dst} in Z_{self.p}")
        # Rebuild the path by walking both parent maps from the meeting vertex.
        path_f: list[Vertex] = []
        v: Vertex | None = best_meet
        while v is not None:
            path_f.append(v)
            v = parent_f[v]
        path_f.reverse()
        path_b: list[Vertex] = []
        v = parent_b[best_meet]
        while v is not None:
            path_b.append(v)
            v = parent_b[v]
        return path_f + path_b

    def _path_via_zero_tree(self, src: Vertex, dst: Vertex) -> list[Vertex]:
        """Shortest path with one endpoint at vertex 0, read off the
        cached BFS tree (exact: BFS tree distances are graph distances
        from the root)."""
        parent = _zero_tree(self.p)
        v = dst if src == 0 else src
        path = [v]
        while v != 0:
            v = parent[v]
            path.append(v)
        if src == 0:
            path.reverse()
        return path

    def _expand_level(
        self,
        frontier: list[Vertex],
        dist: dict[Vertex, int],
        parent: dict[Vertex, Vertex | None],
        new_level: int,
    ) -> list[Vertex]:
        nxt: list[Vertex] = []
        for u in frontier:
            for w in self.distinct_neighbors(u):
                if w in dist:
                    continue
                dist[w] = new_level
                parent[w] = u
                nxt.append(w)
        return nxt

    def distance(self, src: Vertex, dst: Vertex) -> int:
        """Hop distance between two vertices."""
        return len(self.shortest_path(src, dst)) - 1

    def bfs_distances(self, src: Vertex, cutoff: int | None = None) -> dict[Vertex, int]:
        """Full BFS distance map from ``src`` (used by tests and for
        eccentricity measurements)."""
        self.check_vertex(src)
        dist = {src: 0}
        q: deque[Vertex] = deque([src])
        while q:
            u = q.popleft()
            if cutoff is not None and dist[u] >= cutoff:
                continue
            for w in self.distinct_neighbors(u):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    q.append(w)
        return dist

    def eccentricity(self, src: Vertex) -> int:
        """Maximum BFS distance from ``src`` (O(p) time)."""
        return max(self.bfs_distances(src).values())

    def diameter_bound(self) -> int:
        """An upper bound on the diameter: twice the eccentricity of 0."""
        return 2 * self.eccentricity(0)


@lru_cache(maxsize=64)
def cached_pcycle(p: int) -> PCycle:
    """Shared PCycle instances (they are immutable)."""
    return PCycle(p)


def shortest_path_vertices(p: int, src: Vertex, dst: Vertex) -> Sequence[Vertex]:
    """Convenience wrapper used by routing code."""
    return cached_pcycle(p).shortest_path(src, dst)
