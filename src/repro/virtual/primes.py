"""Prime-number helpers for selecting p-cycle sizes.

The paper picks virtual-graph sizes as primes in multiplicative ranges:

* the initial prime ``p0`` is the smallest prime in ``(4 n0, 8 n0)``
  (Section 4, start of the algorithm description),
* inflation moves from ``p`` to the smallest prime in ``(4 p, 8 p)``
  (Algorithm 4.5 / Phase 1 of Procedure ``inflate``),
* deflation moves to a prime in ``(p/8, p/4)`` (Algorithm 4.6).

Existence inside each range is guaranteed by Bertrand's postulate [4]:
every interval ``(m, 2m)`` for ``m > 1`` contains a prime, and each range
above contains such an interval.

Primality is a deterministic Miller-Rabin test that is exact for every
64-bit integer, far beyond any p-cycle size this library will simulate.
"""

from __future__ import annotations

from repro.errors import VirtualGraphError

# Witness set proven to make Miller-Rabin deterministic for n < 3.3 * 10^24
# (Sorenson & Webster), which covers all 64-bit inputs.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic primality test (exact for all ``n < 3.3e24``)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^s with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in _MR_WITNESSES:
        if a % n == 0:
            continue
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime_in(lo: int, hi: int) -> int:
    """Smallest prime strictly inside the open interval ``(lo, hi)``.

    Raises :class:`VirtualGraphError` if the interval contains none (the
    paper's ranges always do, by Bertrand's postulate).
    """
    if hi <= lo + 1:
        raise VirtualGraphError(f"empty open interval ({lo}, {hi})")
    candidate = lo + 1
    while candidate < hi:
        if is_prime(candidate):
            return candidate
        candidate += 1
    raise VirtualGraphError(f"no prime in open interval ({lo}, {hi})")


def initial_prime(n0: int) -> int:
    """Smallest prime in ``(4 n0, 8 n0)`` for the bootstrap network."""
    if n0 < 2:
        raise VirtualGraphError(f"initial network size must be >= 2, got {n0}")
    return next_prime_in(4 * n0, 8 * n0)


def inflation_prime(p: int) -> int:
    """Smallest prime in ``(4 p, 8 p)`` -- the inflation target."""
    if p < 2:
        raise VirtualGraphError(f"current prime must be >= 2, got {p}")
    return next_prime_in(4 * p, 8 * p)


def deflation_prime(p: int) -> int:
    """Smallest prime in ``(p/8, p/4)`` -- the deflation target.

    The open interval ``(p/8, p/4)`` contains a Bertrand interval
    ``(m, 2m)`` for ``m = p/8`` whenever ``p >= 16``; we require ``p >= 41``
    so that the resulting prime is at least 5 (the smallest p-cycle this
    library supports).
    """
    if p < 41:
        raise VirtualGraphError(
            f"cannot deflate a p-cycle of size {p}: target range (p/8, p/4) "
            "would fall below the smallest supported p-cycle (p = 5)"
        )
    lo = p // 8  # open at p/8: candidates start at lo + 1 > p/8
    hi_exclusive = (p + 3) // 4  # candidates must satisfy 4*c < p
    # next_prime_in uses an open interval (lo, hi): candidate < hi.
    return next_prime_in(lo, hi_exclusive)
