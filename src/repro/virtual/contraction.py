"""Vertex contraction of (multi)graphs.

The central structural fact behind DEX (Lemma 10, citing Lemma 1.15 of
Chung's *Spectral Graph Theory*): forming ``H`` from ``G`` by contracting
vertices cannot increase the second-largest eigenvalue, so a balanced
virtual mapping of the p-cycle keeps the real network an expander
(Lemma 1).

We represent contraction as a quotient of the adjacency matrix.  The
degree-preserving convention is used: an edge internal to a block becomes
a self-loop that contributes *2* to the block's adjacency diagonal, so
row sums (= degrees) are preserved and the stationary distribution of the
random walk on the quotient matches the paper's ``pi(x) = d_x / 2|E|``.
Original self-loops contribute 1, as in the p-cycle convention of [14].
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import VirtualGraphError


def quotient_multigraph(adjacency: sp.spmatrix, labels: Sequence[int]) -> sp.csr_matrix:
    """Contract ``adjacency`` according to ``labels``.

    ``labels[z]`` is the block (real node index) of vertex ``z``; blocks
    must be numbered ``0 .. m-1`` with every block non-empty (the virtual
    mapping is surjective).  Returns the m x m quotient adjacency
    ``S A S^T`` where ``S`` is the block indicator matrix.
    """
    A = sp.csr_matrix(adjacency)
    n = A.shape[0]
    labels_arr = np.asarray(labels, dtype=np.int64)
    if labels_arr.shape != (n,):
        raise VirtualGraphError(
            f"labels must have length {n}, got shape {labels_arr.shape}"
        )
    if n == 0:
        raise VirtualGraphError("cannot contract an empty graph")
    m = int(labels_arr.max()) + 1
    present = np.zeros(m, dtype=bool)
    present[labels_arr] = True
    if not present.all():
        raise VirtualGraphError("block labels must be 0..m-1 with no gaps")
    S = sp.csr_matrix(
        (np.ones(n), (labels_arr, np.arange(n))),
        shape=(m, n),
    )
    return sp.csr_matrix(S @ A @ S.T)


def contract_adjacency(
    adjacency: sp.spmatrix, block_of: Mapping[int, int]
) -> sp.csr_matrix:
    """Same as :func:`quotient_multigraph` but with a dict mapping."""
    n = adjacency.shape[0]
    labels = [block_of[z] for z in range(n)]
    return quotient_multigraph(adjacency, labels)
