"""Virtual-graph substrate: the p-cycle expander family of Definition 1,
prime-finding via Bertrand's postulate, and the inflation/deflation cloud
maps of Section 4.2 (Eqs. 6-7 and the ``floor(x/alpha)`` deflation map).
"""

from repro.virtual.primes import (
    is_prime,
    next_prime_in,
    initial_prime,
    inflation_prime,
    deflation_prime,
)
from repro.virtual.pcycle import PCycle
from repro.virtual.clouds import (
    inflation_cloud,
    inflation_parent,
    deflation_image,
    is_dominating,
    deflation_cloud,
    dominating_vertex,
)
from repro.virtual.contraction import contract_adjacency, quotient_multigraph

__all__ = [
    "is_prime",
    "next_prime_in",
    "initial_prime",
    "inflation_prime",
    "deflation_prime",
    "PCycle",
    "inflation_cloud",
    "inflation_parent",
    "deflation_image",
    "is_dominating",
    "deflation_cloud",
    "dominating_vertex",
    "contract_adjacency",
    "quotient_multigraph",
]
