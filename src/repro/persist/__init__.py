"""Crash-safe persistence for :class:`~repro.core.dex.DexNetwork`.

One snapshot is one directory with an atomic, checksummed manifest;
:func:`restore` rebuilds a network from it in O(load) -- no history
replay.  See :mod:`repro.persist.snapshot` for the format.
"""

from repro.persist.snapshot import (
    SNAPSHOT_SCHEMA,
    list_checkpoints,
    load_snapshot,
    prune_checkpoints,
    restore_latest,
    save_snapshot,
    state_fingerprint,
)

__all__ = [
    "SNAPSHOT_SCHEMA",
    "list_checkpoints",
    "load_snapshot",
    "prune_checkpoints",
    "restore_latest",
    "save_snapshot",
    "state_fingerprint",
]
