"""Versioned on-disk snapshots of a :class:`~repro.core.dex.DexNetwork`.

One snapshot is one directory::

    ckpt-000000001234/
        manifest.json      # schema, scalars, config, rng state, checksums
        nodes.npy          # live-node array, exact insertion order
        adj_rows.npy       # adjacency dict key order (= nodes() order)
        adj_src.npy        # adjacency triplets, grouped per row ...
        adj_dst.npy        # ... in the row Counter's key order
        adj_mult.npy       # multiplicities, verbatim
        host_vertex.npy    # primary layer: active vertex ...
        host_node.npy      # ... -> hosting node, in host-dict order

The format is *order-faithful*: ``DynamicMultigraph.nodes()`` iterates
the adjacency dict, the walk CDF and the healing engines read Counter
rows, and ``random_node`` samples the live-node array -- so dict/list
orders are behaviour, not an implementation detail.  Every container is
serialized in its exact iteration order and rebuilt by inserting in
that order, and the network RNG state rides along, which makes a
restored network *bit-identical* in behaviour to the one that was saved
(the round-trip property tests drive both through identical churn and
compare transcripts).

Durability follows the classic write-temp + fsync + rename protocol:
arrays and manifest are written into a dot-prefixed temp directory and
fsynced, the manifest itself is renamed into place last inside it, then
the whole directory is atomically renamed to its final name and the
parent fsynced.  A crash at any point leaves either the previous
checkpoints intact or an ignorable ``.tmp-*`` orphan -- never a
half-written ``ckpt-*``.  Loads verify per-file SHA-256 checksums and
cross-check the serialized triplets against the manifest's aggregate
counts before any network object is built; any mismatch raises
:class:`~repro.errors.CorruptSnapshot` and :func:`restore_latest` falls
back to the next-newest checkpoint.

Restore cost is O(load): the arrays are materialized straight into the
multigraph's dicts and the coordinator resnapshots its replicated
counters from ground truth on construction (they are exact at all
times, invariant I8) -- no operation history is replayed.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
import io
import json
import os
import random
import shutil
import time
from collections import Counter
from itertools import islice
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.core.mapping import LayerMapping
from repro.core.overlay import Overlay
from repro.errors import CorruptSnapshot, SnapshotError
from repro.net.topology import DynamicMultigraph
from repro.obs import trace as _trace
from repro.virtual.pcycle import PCycle

#: bump on any incompatible change to the directory layout or manifest
SNAPSHOT_SCHEMA = "dex-snapshot/1"

MANIFEST_NAME = "manifest.json"
_CKPT_PREFIX = "ckpt-"


# ----------------------------------------------------------------------
# low-level durability helpers
# ----------------------------------------------------------------------
def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_durable(path: Path, payload: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())


def _array_bytes(values: Iterable[int]) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.asarray(list(values), dtype=np.int64))
    return buffer.getvalue()


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def checkpoint_name(step_count: int) -> str:
    return f"{_CKPT_PREFIX}{step_count:012d}"


def save_snapshot(net: DexNetwork, root: str | Path) -> Path:
    """Write one atomic checkpoint of ``net`` under ``root`` and return
    its directory.  Saving is *idempotent per step*: if a valid
    checkpoint for ``net.step_count`` already exists it is returned
    as-is (network state only changes through steps).  Raises
    :class:`~repro.errors.SnapshotError` while a staggered type-2
    recovery is in flight -- the two-layer intermediate state is
    transient by design and a checkpoint must be a steady state."""
    if _trace.current().enabled:
        with _trace.span("persist.checkpoint.save", step=net.step_count) as sp:
            out = _save_snapshot_impl(net, root)
            sp.set(path=out.name)
            return out
    return _save_snapshot_impl(net, root)


def _save_snapshot_impl(net: DexNetwork, root: str | Path) -> Path:
    if net.staggered is not None or net.overlay.new is not None:
        raise SnapshotError(
            "cannot snapshot while a staggered type-2 recovery is in "
            "flight; retry after the operation completes"
        )
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    final = root / checkpoint_name(net.step_count)
    if final.exists():
        try:
            _read_manifest(final)
        except CorruptSnapshot:
            shutil.rmtree(final)
        else:
            return final

    graph = net.graph
    layer = net.overlay.old
    src: list[int] = []
    dst: list[int] = []
    mult: list[int] = []
    for u, neighbors in graph._adj.items():
        for v, m in neighbors.items():
            src.append(u)
            dst.append(v)
            mult.append(m)
    payloads = {
        "nodes.npy": _array_bytes(graph._nodes),
        "adj_rows.npy": _array_bytes(graph._adj.keys()),
        "adj_src.npy": _array_bytes(src),
        "adj_dst.npy": _array_bytes(dst),
        "adj_mult.npy": _array_bytes(mult),
        "host_vertex.npy": _array_bytes(layer.host.keys()),
        "host_node.npy": _array_bytes(layer.host.values()),
    }
    state = net.rng.getstate()
    manifest = {
        "schema": SNAPSHOT_SCHEMA,
        "created": time.time(),
        "step_count": net.step_count,
        "next_id": net._next_id,
        "p": net.p,
        "num_nodes": graph.num_nodes,
        "edge_units": graph.num_edge_units,
        "connections": graph.num_connections,
        "topology_changes": graph.topology_changes,
        "config": dataclasses.asdict(net.config),
        "rng_state": [state[0], list(state[1]), state[2]],
        "files": {
            name: {
                "sha256": hashlib.sha256(payload).hexdigest(),
                "bytes": len(payload),
            }
            for name, payload in payloads.items()
        },
    }

    tmp = root / f".tmp-{final.name}-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        for name, payload in payloads.items():
            _write_durable(tmp / name, payload)
        # Manifest last, itself rename-atomic: a reader never sees a
        # manifest whose referenced arrays are not already durable.
        _write_durable(
            tmp / (MANIFEST_NAME + ".part"),
            json.dumps(manifest, sort_keys=True).encode(),
        )
        os.replace(tmp / (MANIFEST_NAME + ".part"), tmp / MANIFEST_NAME)
        _fsync_dir(tmp)
        os.rename(tmp, final)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    _fsync_dir(root)
    return final


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    try:
        raw = manifest_path.read_bytes()
    except OSError as exc:
        raise CorruptSnapshot(f"{path}: unreadable manifest: {exc}") from exc
    try:
        manifest = json.loads(raw)
    except ValueError as exc:
        raise CorruptSnapshot(
            f"{path}: manifest is not valid JSON (truncated write?)"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("schema") != SNAPSHOT_SCHEMA:
        raise CorruptSnapshot(
            f"{path}: unsupported snapshot schema "
            f"{manifest.get('schema') if isinstance(manifest, dict) else manifest!r}"
        )
    required = (
        "step_count", "next_id", "p", "num_nodes", "edge_units",
        "connections", "topology_changes", "config", "rng_state", "files",
    )
    missing = [key for key in required if key not in manifest]
    if missing:
        raise CorruptSnapshot(f"{path}: manifest missing keys {missing}")
    return manifest


def _read_arrays(path: Path, manifest: dict) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for name, meta in manifest["files"].items():
        try:
            payload = (path / name).read_bytes()
        except OSError as exc:
            raise CorruptSnapshot(f"{path}: missing array {name}") from exc
        if len(payload) != meta["bytes"]:
            raise CorruptSnapshot(
                f"{path}: {name} is {len(payload)} bytes, "
                f"manifest says {meta['bytes']}"
            )
        if hashlib.sha256(payload).hexdigest() != meta["sha256"]:
            raise CorruptSnapshot(f"{path}: checksum mismatch on {name}")
        try:
            arrays[name] = np.load(io.BytesIO(payload), allow_pickle=False)
        except ValueError as exc:
            raise CorruptSnapshot(f"{path}: undecodable array {name}") from exc
    expected = {
        "nodes.npy", "adj_rows.npy", "adj_src.npy", "adj_dst.npy",
        "adj_mult.npy", "host_vertex.npy", "host_node.npy",
    }
    missing = expected - arrays.keys()
    if missing:
        raise CorruptSnapshot(f"{path}: manifest lists no {sorted(missing)}")
    return arrays


def _check_pair_symmetry(
    path: Path, src: "np.ndarray", dst: "np.ndarray", mult: "np.ndarray"
) -> None:
    """Every positive off-diagonal triplet must have an equal mirror
    ((u, v, m) and (v, u, m)) -- an asymmetric adjacency cannot have
    come from a DynamicMultigraph.  A given ordered pair appears at most
    once per row (rows are dicts), so packing each triplet into one
    int64 and comparing the sorted forward/reverse codes is an exact
    mirror test at a fraction of a 4-key lexsort's cost."""
    off = (mult > 0) & (src != dst)
    s, d, m = src[off], dst[off], mult[off]
    if len(s) == 0:
        return
    forward = s < d
    span_id = int(max(s.max(), d.max())) + 1
    span_m = int(m.max()) + 1
    if span_id < 2**20 and span_m < 2**20:
        code_fwd = (s[forward] * span_id + d[forward]) * span_m + m[forward]
        rev = ~forward
        code_rev = (d[rev] * span_id + s[rev]) * span_m + m[rev]
        symmetric = len(code_fwd) == len(code_rev) and np.array_equal(
            np.sort(code_fwd), np.sort(code_rev)
        )
    else:  # ids too wide to pack -- fall back to the lexsort pairing
        lo = np.minimum(s, d)
        hi = np.maximum(s, d)
        order = np.lexsort((forward, m, hi, lo))
        lo, hi, m, fwd = lo[order], hi[order], m[order], forward[order]
        symmetric = (
            len(lo) % 2 == 0
            and np.array_equal(lo[0::2], lo[1::2])
            and np.array_equal(hi[0::2], hi[1::2])
            and np.array_equal(m[0::2], m[1::2])
            and bool(np.all(fwd[0::2] != fwd[1::2]))
        )
    if not symmetric:
        raise CorruptSnapshot(f"{path}: adjacency triplets are asymmetric")


def load_snapshot(path: str | Path, *, verify: bool = True) -> DexNetwork:
    """Rebuild a :class:`~repro.core.dex.DexNetwork` from one checkpoint
    directory in O(load).  ``verify=True`` (default) additionally runs
    the full invariant oracle (I1--I8, cached aggregates, wave-engine
    equivalence) on the restored network; pass ``False`` when the caller
    audits separately (the restore-time benchmark times both phases).
    Raises :class:`~repro.errors.CorruptSnapshot` on any integrity
    failure -- before any network state is built."""
    if _trace.current().enabled:
        with _trace.span(
            "persist.checkpoint.restore", path=Path(path).name, verify=verify
        ):
            return _load_snapshot_impl(path, verify=verify)
    return _load_snapshot_impl(path, verify=verify)


def _load_snapshot_impl(path: str | Path, *, verify: bool = True) -> DexNetwork:
    # The rebuild allocates ~n container objects back to back; cyclic-gc
    # passes over the (large, growing) heap mid-build cost more than the
    # build itself at n=1e5, and nothing here can leak a cycle worth
    # collecting early, so collection pauses for the assembly.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        net = _assemble(Path(path))
    finally:
        if gc_was_enabled:
            gc.enable()
    if verify:
        net.check_invariants()
        net.graph.verify_caches()
    return net


def _assemble(path: Path) -> DexNetwork:
    manifest = _read_manifest(path)
    arrays = _read_arrays(path, manifest)

    nodes = arrays["nodes.npy"].tolist()
    rows = arrays["adj_rows.npy"].tolist()
    src = arrays["adj_src.npy"]
    dst = arrays["adj_dst.npy"]
    mult = arrays["adj_mult.npy"]
    if not (len(src) == len(dst) == len(mult)):
        raise CorruptSnapshot(f"{path}: adjacency triplet arrays disagree")
    if len(nodes) != manifest["num_nodes"] or len(rows) != len(nodes):
        raise CorruptSnapshot(
            f"{path}: {len(nodes)} nodes / {len(rows)} adjacency rows, "
            f"manifest says {manifest['num_nodes']}"
        )
    if set(nodes) != set(rows) or len(set(nodes)) != len(nodes):
        raise CorruptSnapshot(
            f"{path}: live-node array and adjacency rows name different nodes"
        )
    _check_pair_symmetry(path, src, dst, mult)

    try:
        config = DexConfig(**manifest["config"])
    except Exception as exc:  # ConfigError or TypeError on foreign keys
        raise CorruptSnapshot(f"{path}: bad config: {exc}") from exc

    # ---- multigraph: insert rows in their exact serialized order ----
    graph = DynamicMultigraph()
    adj: dict[int, Counter[int]] = {}
    degree: dict[int, int] = {}
    # Triplets are grouped per row, groups in row order (save iterates one
    # dict); aggregates come from the vectorized whole-array view and each
    # row's Counter is filled by C-level dict.update over an islice, so
    # the only per-element Python is the zip feeding it.
    if len(src):
        starts = np.concatenate(([0], np.flatnonzero(np.diff(src)) + 1))
        group_ids = src[starts].tolist()
        if len(set(group_ids)) != len(group_ids):
            raise CorruptSnapshot(f"{path}: adjacency row split in two")
        counts = np.diff(np.concatenate((starts, [len(src)]))).tolist()
        positive = mult > 0
        row_sums = np.add.reduceat(np.where(positive, mult, 0), starts).tolist()
        edge_units = int(mult[positive & (dst >= src)].sum())
        connections = int(np.count_nonzero(positive & (dst > src)))
    else:
        group_ids, counts, row_sums = [], [], []
        edge_units = connections = 0
    pairs = zip(dst.tolist(), mult.tolist())
    fill = dict.update
    if group_ids == rows:
        # fast path: every row has neighbors and groups line up exactly
        # (what save always writes) -- Counter allocation, adj/degree
        # assembly and the duplicate scan all stay in C
        counters = [dict.__new__(Counter) for _ in rows]
        adj = dict(zip(rows, counters))
        degree = dict(zip(rows, row_sums))
        for neighbors, count in zip(counters, counts):
            fill(neighbors, islice(pairs, count))
        if sum(map(len, counters)) != len(src):
            raise CorruptSnapshot(f"{path}: duplicate neighbor in a row")
    else:
        group = 0
        num_groups = len(group_ids)
        for u in rows:
            neighbors: Counter[int] = dict.__new__(Counter)
            if group < num_groups and group_ids[group] == u:
                count = counts[group]
                fill(neighbors, islice(pairs, count))
                if len(neighbors) != count:
                    raise CorruptSnapshot(
                        f"{path}: duplicate neighbor in row {u}"
                    )
                degree[u] = row_sums[group]
                group += 1
            else:
                degree[u] = 0
            adj[u] = neighbors
        if group != num_groups:
            raise CorruptSnapshot(
                f"{path}: adjacency triplets out of row order or for "
                f"unknown rows (first: {group_ids[group]})"
            )
    if edge_units != manifest["edge_units"] or connections != manifest["connections"]:
        raise CorruptSnapshot(
            f"{path}: serialized adjacency sums to {edge_units} edge units / "
            f"{connections} connections, manifest says "
            f"{manifest['edge_units']} / {manifest['connections']}"
        )
    graph._adj = adj
    graph._nodes = nodes
    graph._node_pos = {u: i for i, u in enumerate(nodes)}
    graph._degree = degree
    graph._edge_units = edge_units
    graph._connections = connections
    graph.topology_changes = manifest["topology_changes"]
    # caches start cold; versions only need per-node monotonicity from here
    graph._version = dict.fromkeys(adj, 0)
    graph._stamp = 0

    # ---- primary layer: host map in serialized order, sets derived ----
    pcycle = PCycle(int(manifest["p"]))
    layer = LayerMapping(pcycle, config.low_threshold)
    raw_vertex = arrays["host_vertex.npy"]
    if len(raw_vertex) != len(arrays["host_node.npy"]):
        raise CorruptSnapshot(f"{path}: host arrays disagree in length")
    if len(raw_vertex) and (
        int(raw_vertex.min()) < 0 or int(raw_vertex.max()) >= pcycle.p
    ):
        raise CorruptSnapshot(f"{path}: host map vertex outside the p-cycle")
    raw_node = arrays["host_node.npy"]
    host_vertex = raw_vertex.tolist()
    host_node = raw_node.tolist()
    host = dict(zip(host_vertex, host_node))
    if len(host) != len(host_vertex):
        raise CorruptSnapshot(f"{path}: host map vertex listed twice")
    foreign = set(host_node) - graph._node_pos.keys()
    if foreign:
        raise CorruptSnapshot(
            f"{path}: host map names dead nodes {sorted(foreign)[:5]}"
        )
    layer.host.update(host)
    # sim / spare / low are pure functions of the host map (which nodes
    # simulate which vertices, at what load); group the host entries by
    # node once with an argsort instead of a per-entry setdefault loop
    if len(raw_node):
        order = np.argsort(raw_node, kind="stable")
        by_node = raw_node[order]
        by_vertex = raw_vertex[order].tolist()
        group_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(by_node)) + 1)
        )
        loads = np.diff(np.concatenate((group_starts, [len(by_node)])))
        owners = by_node[group_starts]
        position = 0
        for u, load in zip(owners.tolist(), loads.tolist()):
            layer.sim[u] = set(by_vertex[position:position + load])
            position += load
        layer.spare.update(owners[loads >= 2].tolist())
        layer.low.update(
            owners[(loads >= 1) & (loads <= layer.low_threshold)].tolist()
        )

    # ---- network: the coordinator resnapshots its counters (I8) ----
    overlay = Overlay(graph, layer)
    rng = random.Random()
    version, internal, gauss = manifest["rng_state"]
    try:
        rng.setstate((version, tuple(internal), gauss))
    except (TypeError, ValueError) as exc:
        raise CorruptSnapshot(f"{path}: bad rng state: {exc}") from exc
    net = DexNetwork(overlay, config, rng)
    net.step_count = int(manifest["step_count"])
    net._next_id = int(manifest["next_id"])
    return net


# ----------------------------------------------------------------------
# checkpoint-directory management
# ----------------------------------------------------------------------
def list_checkpoints(root: str | Path) -> list[Path]:
    """Checkpoint directories under ``root``, oldest first.  Temp
    orphans and foreign entries are ignored; validity is *not* checked
    (that is the loader's job)."""
    root = Path(root)
    if not root.is_dir():
        return []
    found = [
        entry
        for entry in root.iterdir()
        if entry.is_dir()
        and entry.name.startswith(_CKPT_PREFIX)
        and entry.name[len(_CKPT_PREFIX):].isdigit()
    ]
    return sorted(found, key=lambda entry: int(entry.name[len(_CKPT_PREFIX):]))


def restore_latest(
    root: str | Path, *, verify: bool = True
) -> tuple[DexNetwork, Path, list[tuple[Path, CorruptSnapshot]]]:
    """Restore from the newest loadable checkpoint under ``root``.
    Corrupt checkpoints are skipped newest-to-oldest and reported in the
    third element of the result (``(path, error)`` pairs), so a caller
    can log exactly what was lost.  Raises
    :class:`~repro.errors.SnapshotError` when no checkpoint loads."""
    skipped: list[tuple[Path, CorruptSnapshot]] = []
    checkpoints = list_checkpoints(root)
    for path in reversed(checkpoints):
        try:
            return load_snapshot(path, verify=verify), path, skipped
        except CorruptSnapshot as exc:
            skipped.append((path, exc))
    if skipped:
        raise SnapshotError(
            f"no loadable checkpoint under {root}: all {len(skipped)} "
            f"candidates corrupt (newest: {skipped[0][1]})"
        )
    raise SnapshotError(f"no checkpoint found under {root}")


def prune_checkpoints(root: str | Path, keep: int) -> list[Path]:
    """Delete all but the newest ``keep`` checkpoints; returns the
    removed paths (a bounded checkpoint directory is what lets a
    long-running gateway checkpoint indefinitely)."""
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    checkpoints = list_checkpoints(root)
    removed = checkpoints[:-keep] if len(checkpoints) > keep else []
    for path in removed:
        shutil.rmtree(path)
    return removed


# ----------------------------------------------------------------------
# test oracle
# ----------------------------------------------------------------------
def state_fingerprint(net: DexNetwork) -> dict:
    """An order-sensitive structural digest of everything a snapshot
    round-trips: container contents *and iteration orders*, aggregates,
    coordinator counters, and the RNG state.  Two networks with equal
    fingerprints are behaviourally identical under any further driver
    that draws from ``net.rng``."""
    graph = net.graph
    layer = net.overlay.old
    return {
        "nodes": list(graph._nodes),
        "adj": [(u, list(nbrs.items())) for u, nbrs in graph._adj.items()],
        "degree": dict(graph._degree),
        "edge_units": graph.num_edge_units,
        "connections": graph.num_connections,
        "topology_changes": graph.topology_changes,
        "host": list(layer.host.items()),
        "sim": sorted((u, tuple(sorted(vs))) for u, vs in layer.sim.items()),
        "spare": sorted(layer.spare),
        "low": sorted(layer.low),
        "coordinator": (net.coordinator.n, net.coordinator.spare, net.coordinator.low),
        "step_count": net.step_count,
        "next_id": net._next_id,
        "p": net.p,
        "config": dataclasses.asdict(net.config),
        "rng": net.rng.getstate(),
    }
