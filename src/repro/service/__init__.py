"""The membership-service layer (PR 5): an asyncio gateway that turns a
live stream of concurrent ``join``/``leave`` requests into the batch
waves of :mod:`repro.core.multi`, with per-request outcomes, bounded
backpressure, adaptive overload control (admission policies, request
deadlines, controlled shedding), client load generators and latency
metrics.

See :mod:`repro.service.gateway` for the architecture notes and
:mod:`repro.service.policy` for the overload-control design.
"""

from repro.service.gateway import Ack, MembershipGateway
from repro.service.loadgen import (
    LoadStats,
    Population,
    RetryPolicy,
    flash_crowd_load,
    poisson_load,
    saturating_load,
)
from repro.service.metrics import (
    FlushRecord,
    ServiceMetrics,
    aggregate_snapshots,
    exact_quantile,
)
from repro.service.router import (
    InlineShardHandle,
    ProcessShardHandle,
    ShardRouter,
    start_cluster,
)
from repro.service.shard import SHARD_STRIDE, ShardMap, ShardServer
from repro.service.policy import (
    POLICIES,
    AdaptiveWindowPolicy,
    AdmissionPolicy,
    DegradeToRejectPolicy,
    FixedPolicy,
    ShedOldestPolicy,
    make_policy,
)

__all__ = [
    "Ack",
    "MembershipGateway",
    "LoadStats",
    "Population",
    "RetryPolicy",
    "flash_crowd_load",
    "poisson_load",
    "saturating_load",
    "FlushRecord",
    "ServiceMetrics",
    "aggregate_snapshots",
    "exact_quantile",
    "SHARD_STRIDE",
    "ShardMap",
    "ShardServer",
    "InlineShardHandle",
    "ProcessShardHandle",
    "ShardRouter",
    "start_cluster",
    "POLICIES",
    "AdmissionPolicy",
    "AdaptiveWindowPolicy",
    "DegradeToRejectPolicy",
    "FixedPolicy",
    "ShedOldestPolicy",
    "make_policy",
]
