"""The membership-service layer (PR 5): an asyncio gateway that turns a
live stream of concurrent ``join``/``leave`` requests into the batch
waves of :mod:`repro.core.multi`, with per-request outcomes, bounded
backpressure, client load generators and latency metrics.

See :mod:`repro.service.gateway` for the architecture notes.
"""

from repro.service.gateway import Ack, MembershipGateway
from repro.service.loadgen import (
    LoadStats,
    Population,
    flash_crowd_load,
    poisson_load,
    saturating_load,
)
from repro.service.metrics import FlushRecord, ServiceMetrics, exact_quantile

__all__ = [
    "Ack",
    "MembershipGateway",
    "LoadStats",
    "Population",
    "flash_crowd_load",
    "poisson_load",
    "saturating_load",
    "FlushRecord",
    "ServiceMetrics",
    "exact_quantile",
]
