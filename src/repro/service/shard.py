"""One shard of the sharded membership service: a contiguous id region
with its own :class:`~repro.core.dex.DexNetwork` partition.

DEX's coordinator/p-cycle structure heals *locally* (Corollary 2), which
is what makes the overlay partitionable at all: a shard owns the
contiguous id region ``[index * SHARD_STRIDE, (index+1) * SHARD_STRIDE)``
-- its own stretch of the p-cycle, bootstrapped via
``DexNetwork.bootstrap(id_base=...)`` so every id the shard ever mints
(``fresh_id`` is monotone from the bootstrap ids) stays inside the
region.  Ownership is therefore a pure function of the id
(:meth:`ShardMap.owner`), the property the router's hashing relies on.

A :class:`ShardServer` is deliberately *synchronous*: one thread, one
network, a plain flush loop -- the event-loop machinery lives in the
router process, and a lean worker keeps the per-event overhead of the
sharded path close to the engine cost.  It is driven two ways:

* in-process (tests, :class:`~repro.service.router.InlineShardHandle`):
  call :meth:`submit` / :meth:`flush` / the control verbs directly, with
  an injectable clock for deterministic TTL tests;
* as a worker process (:func:`shard_worker_main`): the same server
  behind a duplex pipe, speaking the small tuple protocol of
  :data:`MSG_REQUESTS` / :data:`MSG_CONTROL`, modeled on the
  one-process-per-point fan-out of ``repro.harness.perf --sweep`` and
  checkpointing into its own ``persist``-format directory for crash
  safety.

**Two-phase cross-shard handoff.**  A join that pins an id owned by
shard A while hinting at a node owned by shard B resolves as
reserve-then-commit:

1. ``reserve`` on A parks the id in a TTL'd reservation table -- a
   concurrent join of the same id is rejected cleanly, and if the
   router (or either shard) dies mid-handoff the reservation simply
   expires: the id is *never stranded*.
2. ``pin`` on B proves the hint is live and protects it from deletion
   for the TTL (a delete flush answers a pinned victim with a clean
   per-request rejection), so the liveness fact the commit relies on
   cannot be invalidated mid-handoff.
3. ``commit`` on A turns the reservation into an ordinary pinned join
   through the normal flush path (attached at a *local* sample -- DEX
   drops the adversarial attachment edge after healing anyway,
   Algorithm 4.2 line 3, so the hint is a liveness precondition, not
   an edge).  Either side's refusal unwinds the other: a nak from B
   releases A's reservation, a commit rejection drops it.

Reservation and pin sweeps run at every flush, so expiry needs no extra
timer.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ShardError, SnapshotError
from repro.obs import trace as _trace
from repro.service.metrics import ServiceMetrics
from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork

#: width of each shard's id region.  Large enough that a shard can mint
#: fresh ids monotonically for the lifetime of any deployment without
#: leaving its region; small enough that region arithmetic stays exact
#: in a float-free int world.
SHARD_STRIDE = 1 << 40

#: message kinds of the worker pipe protocol (parent -> child)
MSG_REQUESTS = "req"
MSG_CONTROL = "ctl"
#: child -> parent
MSG_ACKS = "acks"
MSG_CTL_REPLY = "ctl-reply"
MSG_READY = "ready"
MSG_DRAINED = "drained"
MSG_FATAL = "fatal"

#: reason strings of shard-level rejections (tested verbatim)
RESERVED_REASON = "reserved by an in-flight handoff"
PINNED_REASON = "pinned by an in-flight handoff"
DEADLINE_REASON = "deadline exceeded before heal"


class ShardMap:
    """Pure id-region arithmetic: which shard owns which ids."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ShardError(f"need at least one shard, got {shards}")
        self.shards = shards

    def owner(self, node: NodeId) -> int:
        """The index of the shard owning ``node``; raises
        :class:`~repro.errors.ShardError` for ids outside every
        region."""
        if node < 0 or node >= self.shards * SHARD_STRIDE:
            raise ShardError(
                f"id {node} is outside every shard region "
                f"(shards={self.shards}, stride=2^40)"
            )
        return node // SHARD_STRIDE

    def id_base(self, index: int) -> NodeId:
        return self._checked(index) * SHARD_STRIDE

    def region(self, index: int) -> tuple[NodeId, NodeId]:
        """Half-open id interval ``[lo, hi)`` owned by shard
        ``index``."""
        base = self.id_base(index)
        return base, base + SHARD_STRIDE

    def _checked(self, index: int) -> int:
        if not 0 <= index < self.shards:
            raise ShardError(
                f"shard index {index} out of range for {self.shards} shards"
            )
        return index


@dataclass(eq=False)
class _ShardRequest:
    rid: int
    kind: str  # "join" | "leave"
    node: NodeId | None
    attach_hint: NodeId | None
    received_at: float
    deadline_at: float | None
    #: set on commit joins: resolving this request (either way) consumes
    #: the reservation it rode in on
    commit: bool = False
    #: ``(trace_id, parent_span_id)`` shipped over the pipe protocol so
    #: a cross-shard journey renders as one trace (``None`` = untraced)
    trace: tuple[str, str] | None = None
    #: the open ``shard.request`` span while tracing is enabled
    span: "_trace.Span | None" = None


class ShardServer:
    """One shard: a region-owning network partition, a synchronous
    micro-batching flush loop, a TTL'd reservation/pin table, and
    per-shard checkpoints.  Everything the worker process does is a
    method here, so tests drive shards in-process with a fake clock."""

    def __init__(
        self,
        index: int,
        net: "DexNetwork",
        *,
        shard_map: ShardMap,
        max_batch: int = 64,
        window_ms: float = 2.0,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 32,
        checkpoint_keep: int = 3,
        seed: int | None = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        import random

        self.index = index
        self.net = net
        self.shard_map = shard_map
        self.region = shard_map.region(index)
        self.max_batch = max_batch
        self.window_s = window_ms / 1e3
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.checkpoints_written = 0
        self.checkpoint_errors = 0
        self._flushes_since_checkpoint = 0
        self._clock = clock
        self.metrics = metrics or ServiceMetrics(clock=clock)
        self._rng = random.Random(
            seed if seed is not None else getattr(net.config, "seed", 0)
        )
        self._queue: deque[_ShardRequest] = deque()
        #: pinned id -> (reserving rid, expiry instant)
        self.reservations: dict[NodeId, tuple[int, float]] = {}
        #: protected attach hints -> {pinning rid -> expiry instant}.
        #: Keyed per handoff so two concurrent handoffs sharing one
        #: attach hint each hold their own pin: one side's unpin (or
        #: expiry) never drops the other's deletion protection.
        self.pins: dict[NodeId, dict[int, float]] = {}
        self.reservations_expired = 0
        self.handoffs_committed = 0

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(
        self,
        rid: int,
        kind: str,
        node: NodeId | None,
        attach_hint: NodeId | None,
        deadline_s: float | None = None,
        commit: bool = False,
        trace: tuple[str, str] | None = None,
    ) -> None:
        """Queue one request.  ``deadline_s`` is *remaining* seconds at
        send time -- wall clocks are not comparable across processes, so
        the worker re-anchors the deadline on its own clock at receipt.
        ``trace`` is the router's ``(trace_id, parent_span_id)`` pair:
        the shard's spans for this request continue that trace, so a
        cross-shard join is one coherent timeline."""
        now = self._clock()
        deadline_at = now + deadline_s if deadline_s is not None else None
        request = _ShardRequest(
            rid, kind, node, attach_hint, now, deadline_at, commit, trace
        )
        rec = _trace.current()
        if rec.enabled:
            tid, pid = trace if trace is not None else (None, None)
            request.span = rec.start(
                "shard.request",
                trace_id=tid,
                parent_id=pid,
                shard=self.index,
                kind=kind,
            )
        self._queue.append(request)
        self.metrics.record_enqueue(len(self._queue))

    # ------------------------------------------------------------------
    # the flush loop
    # ------------------------------------------------------------------
    def poll_timeout(self, now: float | None = None) -> float | None:
        """Seconds until the next flush is due (0 when due now), or
        ``None`` when idle -- the worker's pipe-poll timeout."""
        if not self._queue:
            return None
        if len(self._queue) >= self.max_batch:
            return 0.0
        now = self._clock() if now is None else now
        due_at = self._queue[0].received_at + self.window_s
        deadline = self._next_deadline()
        if deadline is not None and deadline < due_at:
            due_at = deadline
        return max(0.0, due_at - now)

    def flush_due(self, now: float | None = None) -> bool:
        timeout = self.poll_timeout(now)
        return timeout is not None and timeout <= 0.0

    def _next_deadline(self) -> float | None:
        deadlines = [
            r.deadline_at for r in self._queue if r.deadline_at is not None
        ]
        return min(deadlines) if deadlines else None

    def _selection(self) -> list[_ShardRequest]:
        """Kind-segregated gather with the gateway's same-node-id
        barrier rule (see ``MembershipGateway._selection``)."""
        kind = self._queue[0].kind
        barriers: set[NodeId] = set()
        batch: list[_ShardRequest] = []
        for request in self._queue:
            if (
                len(batch) < self.max_batch
                and request.kind == kind
                and (request.node is None or request.node not in barriers)
            ):
                batch.append(request)
            elif request.node is not None:
                barriers.add(request.node)
        return batch

    def sweep(self, now: float | None = None) -> list[dict]:
        """Expire reservations, pins and queued deadlines.  Runs at
        every flush (and on demand); returns the deadline acks."""
        now = self._clock() if now is None else now
        expired = [
            node
            for node, (_rid, expires) in self.reservations.items()
            if expires <= now
        ]
        for node in expired:
            del self.reservations[node]
        self.reservations_expired += len(expired)
        for node, holders in list(self.pins.items()):
            for rid in [r for r, expires in holders.items() if expires <= now]:
                del holders[rid]
            if not holders:
                del self.pins[node]
        acks: list[dict] = []
        if any(
            r.deadline_at is not None and r.deadline_at <= now
            for r in self._queue
        ):
            survivors: deque[_ShardRequest] = deque()
            for request in self._queue:
                if request.deadline_at is not None and request.deadline_at <= now:
                    self.metrics.record_timeout()
                    acks.append(self._ack(request, ok=False, reason=DEADLINE_REASON))
                else:
                    survivors.append(request)
            self._queue = survivors
        return acks

    def flush(self) -> list[dict]:
        """One micro-batch through the partial-batch engine; returns the
        ack dicts (rid-correlated) for everything answered, sweeps
        included."""
        acks = self.sweep()
        if not self._queue:
            return acks
        batch = self._selection()
        selected = set(batch)
        self._queue = deque(r for r in self._queue if r not in selected)
        if not batch:
            return acks
        kind = batch[0].kind
        requests, screened = self._screen(kind, batch)
        acks.extend(screened)
        if not requests:
            return acks
        rec = _trace.current()
        root: "_trace.Span | None" = None
        if rec.enabled:
            # Adopt the first traced request's trace (parent = its
            # shard.request span) so a handoff commit's flush joins the
            # router's timeline; a fresh trace otherwise.
            lead = next((r for r in requests if r.trace is not None), None)
            root = rec.start(
                "shard.flush",
                trace_id=lead.trace[0] if lead is not None else None,
                parent_id=(
                    lead.span.span_id
                    if lead is not None and lead.span is not None
                    else None
                ),
                shard=self.index,
                kind=kind,
                batch=len(requests),
            )
        t0 = self._clock()
        if kind == "join":
            payload = self._join_payload(requests)
            nodes = [new_id for new_id, _attach in payload]
            heal_call: Callable = self.net.insert_batch_partial
        else:
            payload = [request.node for request in requests]
            nodes = list(payload)
            heal_call = self.net.delete_batch_partial
        if root is not None:
            # ambient heal span: the engine's core.* / net.wave spans
            # nest under it (flush is synchronous)
            with _trace.span(
                "shard.flush.heal",
                trace_id=root.trace_id,
                parent_id=root.span_id,
            ):
                outcome = heal_call(payload)
        else:
            outcome = heal_call(payload)
        heal_s = self._clock() - t0
        rsp = (
            rec.start(
                "shard.flush.resolve",
                trace_id=root.trace_id,
                parent_id=root.span_id,
            )
            if root is not None
            else None
        )
        reasons = {r.index: r.reason for r in outcome.rejected}
        batch_size = len(requests)
        for index, request in enumerate(requests):
            reason = reasons.get(index)
            if request.commit and request.node is not None:
                # The handoff ends with this answer either way: consume
                # the reservation so the id is immediately free again on
                # a rejection (never stranded).
                self.reservations.pop(request.node, None)
                if reason is None:
                    self.handoffs_committed += 1
            acks.append(
                self._ack(
                    request,
                    ok=reason is None,
                    reason=reason,
                    node=nodes[index],
                    batch_size=batch_size,
                )
            )
        if rsp is not None:
            rec.finish(rsp)
            rec.finish(root)
        self.metrics.record_flush(
            "join" if kind == "join" else "leave",
            batch_size,
            len(outcome.accepted),
            len(outcome.rejected),
            heal_s,
        )
        self._flushes_since_checkpoint += 1
        if (
            self.checkpoint_dir is not None
            and self._flushes_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return acks

    def _screen(
        self, kind: str, batch: list[_ShardRequest]
    ) -> tuple[list[_ShardRequest], list[dict]]:
        """Shard-level admission ahead of the engine: a join naming a
        *reserved* id is refused unless it is the reserving handoff's
        own commit; a leave naming a *pinned* hint is refused while the
        pin lives.  Both answers are clean per-request rejections."""
        survivors: list[_ShardRequest] = []
        acks: list[dict] = []
        size = len(batch)
        for request in batch:
            reason = None
            if kind == "join" and request.node is not None:
                held = self.reservations.get(request.node)
                if held is not None and not (
                    request.commit and held[0] == request.rid
                ):
                    reason = f"node id {request.node} {RESERVED_REASON}"
                elif request.commit and held is None:
                    reason = (
                        f"reservation for node id {request.node} expired "
                        "before commit"
                    )
            elif kind == "leave" and request.node in self.pins:
                reason = f"node {request.node} {PINNED_REASON}"
            if reason is None:
                survivors.append(request)
            else:
                acks.append(
                    self._ack(request, ok=False, reason=reason, batch_size=size)
                )
        return survivors, acks

    def _join_payload(
        self, requests: list[_ShardRequest]
    ) -> list[tuple[NodeId, NodeId]]:
        """Pinned ids kept, fresh in-region ids otherwise (skipping
        reserved ids -- a reservation holds the id for its handoff);
        missing hints filled with uniform local samples."""
        explicit = {r.node for r in requests if r.node is not None}
        has_node = self.net.graph.has_node
        pairs: list[tuple[NodeId, NodeId]] = []
        nid: NodeId | None = None
        for request in requests:
            if request.node is not None:
                new_id = request.node
            else:
                nid = self.net.fresh_id() if nid is None else nid + 1
                while nid in explicit or nid in self.reservations or has_node(nid):
                    nid += 1
                new_id = nid
            attach = (
                request.attach_hint
                if request.attach_hint is not None
                else self.net.sample_node(self._rng)
            )
            pairs.append((new_id, attach))
        return pairs

    def _ack(
        self,
        request: _ShardRequest,
        *,
        ok: bool,
        reason: str | None,
        node: NodeId | None = None,
        batch_size: int = 0,
    ) -> dict:
        latency = self._clock() - request.received_at
        self.metrics.record_ack(latency, ok=ok)
        if request.span is not None:
            _trace.current().finish(request.span.set(ok=ok, reason=reason))
            request.span = None
        return {
            "rid": request.rid,
            "ok": ok,
            "kind": request.kind,
            "node": node if node is not None else request.node,
            "reason": reason,
            "latency_s": latency,
            "batch_size": batch_size,
        }

    def drain(self) -> list[dict]:
        """Flush until the queue is empty (every queued request
        answered), then write a final covering checkpoint."""
        acks: list[dict] = []
        while self._queue:
            acks.extend(self.flush())
        if self.checkpoint_dir is not None:
            self.checkpoint()
        return acks

    # ------------------------------------------------------------------
    # handoff control verbs
    # ------------------------------------------------------------------
    def reserve(self, rid: int, node: NodeId, ttl_s: float) -> dict:
        """Phase 1 (owner side): park ``node`` for handoff ``rid``.  The
        reservation self-expires after ``ttl_s`` -- a crash anywhere in
        the handoff can only ever *delay* the id, never strand it."""
        self.sweep()
        lo, hi = self.region
        if not lo <= node < hi:
            return self._nak(rid, f"shard {self.index} does not own id {node}")
        if self.net.graph.has_node(node):
            return self._nak(rid, f"node id {node} already exists")
        held = self.reservations.get(node)
        if held is not None and held[0] != rid:
            return self._nak(rid, f"node id {node} {RESERVED_REASON}")
        self.reservations[node] = (rid, self._clock() + ttl_s)
        return {"rid": rid, "ok": True, "reason": None}

    def release(self, rid: int, node: NodeId) -> dict:
        """Abort path of phase 1: drop the reservation if this handoff
        still holds it."""
        held = self.reservations.get(node)
        if held is not None and held[0] == rid:
            del self.reservations[node]
        return {"rid": rid, "ok": True, "reason": None}

    def pin(self, rid: int, node: NodeId, ttl_s: float) -> dict:
        """Phase 2 (hint side): prove the attach hint is live and
        protect it from deletion for the TTL.  The pin belongs to this
        handoff alone: concurrent handoffs pinning the same hint each
        hold (and release) their own entry."""
        self.sweep()
        if not self.net.graph.has_node(node):
            return self._nak(rid, f"attach point {node} does not exist")
        self.pins.setdefault(node, {})[rid] = self._clock() + ttl_s
        return {"rid": rid, "ok": True, "reason": None}

    def unpin(self, rid: int, node: NodeId) -> dict:
        holders = self.pins.get(node)
        if holders is not None:
            holders.pop(rid, None)
            if not holders:
                del self.pins[node]
        return {"rid": rid, "ok": True, "reason": None}

    @staticmethod
    def _nak(rid: int, reason: str) -> dict:
        return {"rid": rid, "ok": False, "reason": reason}

    # ------------------------------------------------------------------
    # observability / persistence
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        row = self.metrics.snapshot()
        row["shard"] = self.index
        row["size"] = self.net.size
        row["queue_depth"] = len(self._queue)
        row["reservations"] = len(self.reservations)
        row["reservations_expired"] = self.reservations_expired
        row["handoffs_committed"] = self.handoffs_committed
        row["checkpoints_written"] = self.checkpoints_written
        row["checkpoint_errors"] = self.checkpoint_errors
        return row

    def audit(self, include_nodes: bool = False) -> dict:
        """The shard's slice of the cluster audit: the full I1-I8 +
        cache + coordinator oracle over the local partition, plus the
        region-ownership check (every live id inside the owned region --
        the fact that makes cross-shard ownership disjoint by
        construction)."""
        from repro.core import invariants

        errors: list[str] = []
        try:
            invariants.check_all(self.net.overlay, self.net.config)
            invariants.check_cached_aggregates(self.net.overlay)
            if not self.net.coordinator.verify():
                errors.append("coordinator counters diverged")
        except Exception as exc:  # noqa: BLE001 -- audit reports, never raises
            errors.append(f"{type(exc).__name__}: {exc}")
        lo, hi = self.region
        strays = [u for u in self.net.nodes() if not lo <= u < hi]
        if strays:
            errors.append(f"ids outside owned region: {strays[:8]}")
        row = {
            "shard": self.index,
            "size": self.net.size,
            "region": [lo, hi],
            "invariants_ok": not errors,
            "errors": errors,
            "reservations": sorted(self.reservations),
            "queue_depth": len(self._queue),
        }
        if include_nodes:
            row["nodes"] = sorted(self.net.nodes())
        return row

    def checkpoint(self) -> Path | None:
        """Per-shard crash safety: the same guarded snapshot contract as
        the gateway's (a full disk degrades durability, never
        availability)."""
        self._flushes_since_checkpoint = 0
        if self.checkpoint_dir is None:
            return None
        from repro.persist.snapshot import prune_checkpoints, save_snapshot

        try:
            path = save_snapshot(self.net, self.checkpoint_dir)
            prune_checkpoints(self.checkpoint_dir, self.checkpoint_keep)
        except (SnapshotError, OSError):
            self.checkpoint_errors += 1
            return None
        self.checkpoints_written += 1
        return path


def build_shard(cfg: dict) -> ShardServer:
    """Construct one shard from a worker config: restore from its
    checkpoint directory when ``cfg["restore"]`` (the post-crash path),
    bootstrap its id region otherwise."""
    from repro.core.config import DexConfig
    from repro.core.dex import DexNetwork

    shard_map = ShardMap(cfg["shards"])
    index = cfg["index"]
    checkpoint_dir = cfg.get("checkpoint_dir")
    if cfg.get("restore"):
        from repro.persist.snapshot import restore_latest

        net, _path, _skipped = restore_latest(checkpoint_dir)
    else:
        config = DexConfig(
            seed=cfg["seed"],
            type2_mode="simplified",
            validate_every_step=False,
            **cfg.get("config_overrides", {}),
        )
        net = DexNetwork.bootstrap(
            cfg["n_local"],
            config,
            seed=cfg["seed"],
            id_base=shard_map.id_base(index),
        )
    return ShardServer(
        index,
        net,
        shard_map=shard_map,
        max_batch=cfg.get("max_batch", 64),
        window_ms=cfg.get("window_ms", 2.0),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=cfg.get("checkpoint_every", 32),
        checkpoint_keep=cfg.get("checkpoint_keep", 3),
        seed=cfg["seed"],
    )


def _handle_control(server: ShardServer, op: str, args: dict) -> dict:
    """Dispatch one control verb.  Handoff verbs may carry a
    ``trace`` pair from the router; the shard-side work then records a
    ``shard.<op>`` span continuing that trace."""
    trace = args.pop("trace", None)
    if trace is not None and _trace.current().enabled:
        with _trace.span(
            f"shard.{op}",
            trace_id=trace[0],
            parent_id=trace[1],
            shard=server.index,
        ):
            return _control_dispatch(server, op, args)
    return _control_dispatch(server, op, args)


def _control_dispatch(server: ShardServer, op: str, args: dict) -> dict:
    if op == "reserve":
        return server.reserve(args["rid"], args["node"], args["ttl_s"])
    if op == "release":
        return server.release(args["rid"], args["node"])
    if op == "pin":
        return server.pin(args["rid"], args["node"], args["ttl_s"])
    if op == "unpin":
        return server.unpin(args["rid"], args["node"])
    if op == "stats":
        return {"rid": args["rid"], "ok": True, "stats": server.stats()}
    if op == "reset-metrics":
        server.metrics.reset()
        return {"rid": args["rid"], "ok": True}
    if op == "audit":
        return {
            "rid": args["rid"],
            "ok": True,
            "audit": server.audit(include_nodes=args.get("include_nodes", False)),
        }
    if op == "checkpoint":
        path = server.checkpoint()
        return {
            "rid": args["rid"],
            "ok": path is not None,
            "path": str(path) if path else None,
        }
    raise ShardError(f"unknown shard control op {op!r}")


def shard_worker_main(conn: Any, cfg: dict) -> None:
    """Worker-process entry (spawn context): serve one shard over a
    duplex pipe until a ``drain`` control arrives or the pipe closes.
    A dead router closes the pipe -> the worker exits; an engine
    failure is reported as a ``fatal`` message (the router answers the
    shard's in-flight requests with shard-unavailable rejections).

    ``cfg["trace_path"]`` installs a *streaming* span recorder writing
    that JSONL file as spans finish: a SIGKILL'd worker still leaves a
    parseable trace with at most a truncated tail."""
    stream = None
    if cfg.get("trace_path"):
        out = Path(cfg["trace_path"])
        out.parent.mkdir(parents=True, exist_ok=True)
        stream = open(out, "w")
        _trace.install(_trace.SpanRecorder(stream=stream, flush_every=8))
    try:
        _worker_loop(conn, cfg)
    finally:
        if stream is not None:
            _trace.uninstall()
            try:
                stream.flush()
                stream.close()
            except OSError:  # pragma: no cover - disk full on last words
                pass


def _worker_loop(conn: Any, cfg: dict) -> None:
    import gc
    import traceback

    try:
        server = build_shard(cfg)
        # The bootstrap network is millions of long-lived objects (one
        # Counter per node); moving them to the permanent generation
        # keeps every later cyclic-GC pass off them.  Worth ~30% of
        # steady-state throughput at shard sizes >= 2^16, and safe only
        # because a worker process is dedicated to its shard for life.
        gc.collect()
        gc.freeze()
        conn.send(
            (
                MSG_READY,
                {
                    "shard": server.index,
                    "size": server.net.size,
                    "region": list(server.region),
                    "nodes": sorted(server.net.nodes()),
                    "restored": bool(cfg.get("restore")),
                },
            )
        )
        draining = False
        served_first = False
        while True:
            timeout = server.poll_timeout()
            if conn.poll(timeout if timeout is not None else None):
                kind, payload = conn.recv()
                if kind == MSG_REQUESTS:
                    if not served_first:
                        # First traffic: re-anchor the shard's elapsed
                        # clock so per-shard events/s excludes the idle
                        # wait for the rest of the cluster to bootstrap.
                        served_first = True
                        server.metrics.reset_windows()
                    for req in payload:
                        server.submit(*req)
                elif kind == MSG_CONTROL:
                    op, args = payload
                    if op == "drain":
                        draining = True
                    else:
                        conn.send((MSG_CTL_REPLY, _handle_control(server, op, args)))
                # Drain everything already buffered before flushing.
                while conn.poll(0):
                    kind, payload = conn.recv()
                    if kind == MSG_REQUESTS:
                        for req in payload:
                            server.submit(*req)
                    elif kind == MSG_CONTROL:
                        op, args = payload
                        if op == "drain":
                            draining = True
                        else:
                            conn.send(
                                (MSG_CTL_REPLY, _handle_control(server, op, args))
                            )
            if draining:
                acks = server.drain()
                if acks:
                    conn.send((MSG_ACKS, acks))
                conn.send((MSG_DRAINED, server.stats()))
                return
            if server.flush_due():
                acks = server.flush()
                if acks:
                    conn.send((MSG_ACKS, acks))
    except EOFError:
        return
    except Exception:  # noqa: BLE001 -- last words beat a silent exit
        try:
            conn.send((MSG_FATAL, traceback.format_exc()))
        except (OSError, BrokenPipeError):
            pass
