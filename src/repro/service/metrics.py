"""Service-side observability for the membership gateway.

The gateway records three signal families into a :class:`ServiceMetrics`
instance: per-request **ack latency** (enqueue to future resolution),
per-flush **batch shape** (submitted / accepted / rejected sizes and
engine wall-clock), and **queue depth** at every enqueue.  A
:meth:`~ServiceMetrics.snapshot` turns the accumulated samples into the
row the soak harness persists under the ``service`` key of
``BENCH_perf.json``: sustained events/sec plus p50/p90/p99/max ack
latency.

Quantiles are *exact* -- :func:`~repro.obs.registry.exact_quantile`
(re-exported here for compatibility) linearly interpolates between
closest ranks, matching ``numpy.quantile``'s default method bit for bit
(the test suite checks them against the numpy reference) -- because the
percentile math must not be another dependency's approximation.
Retention is *bounded*: counters and means are running aggregates over
the whole run, while percentile samples keep the most recent
``sample_cap`` acks (a long-running ``repro.cli serve`` must not grow
memory with uptime), so a soak within the cap gets full-run-exact
percentiles and anything longer gets recent-window-exact ones.

Since PR 10 the ack-latency samples live in **one registry histogram**
(:class:`~repro.obs.registry.Histogram`): the cumulative snapshot, the
rolling ``window()`` row that ``repro.cli serve`` prints, and the
Prometheus/JSON exposition all read the same sample store, so they can
never disagree.  The histogram also memoizes its sorted window
(invalidated on append), so a p50/p90/p99 snapshot sorts once instead
of three times per call -- and not at all when nothing new arrived.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    exact_quantile,  # noqa: F401  (re-export: the historical home)
    quantile_sorted,
)


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else round(seconds * 1e3, 6)


#: snapshot columns that add across shards
_SUM_KEYS = (
    "events",
    "accepted",
    "rejected",
    "backpressure",
    "shed",
    "deadline_timeouts",
    "retries",
    "batches",
    "events_per_s",
    "goodput_per_s",
    "heal_s",
)
#: columns where the cluster-wide figure is the worst shard's
_MAX_KEYS = (
    "ack_p50_ms",
    "ack_p90_ms",
    "ack_p99_ms",
    "ack_max_ms",
    "ack_mean_ms",
    "max_batch_seen",
    "queue_depth_max",
    "elapsed_s",
)


def aggregate_snapshots(rows: Sequence[dict]) -> dict:
    """Cross-shard rollup of per-shard :meth:`ServiceMetrics.snapshot`
    rows: counters and rates *sum* (the shards run concurrently, so
    cluster throughput is the sum of shard throughputs), latency
    quantiles take the *max* (a per-shard pXX is exact for its shard;
    the max is the tight upper bound the rollup can honestly claim
    without resampling every shard's raw window)."""
    if not rows:
        raise ValueError("cannot aggregate an empty snapshot list")
    out: dict = {"shards": len(rows)}
    for key in _SUM_KEYS:
        values = [row[key] for row in rows if row.get(key) is not None]
        out[key] = round(sum(values), 6) if values else None
    for key in _MAX_KEYS:
        values = [row[key] for row in rows if row.get(key) is not None]
        out[key] = max(values) if values else None
    return out


@dataclass
class FlushRecord:
    """Shape of one gateway flush (one batch-engine wave)."""

    kind: str
    submitted: int
    accepted: int
    rejected: int
    heal_s: float


@dataclass
class ServiceMetrics:
    """Accumulates gateway samples; cheap to record, summarised on
    demand.  ``clock`` is injectable so tests can drive deterministic
    latencies; ``sample_cap`` bounds percentile-sample (and flush-log)
    retention."""

    clock: Callable[[], float] = time.perf_counter
    started_at: float | None = None
    #: most recent ack latencies (seconds), bounded to ``sample_cap``.
    #: Since PR 10 this deque is the *registry histogram's* sample
    #: store -- one window shared by snapshot, serve table and
    #: exposition.
    sample_cap: int = 200_000
    #: the metrics registry this instance publishes into (a private one
    #: unless the caller shares a process-wide registry)
    registry: MetricsRegistry | None = None
    ack_latencies_s: deque = field(default_factory=deque)
    #: the most recent flushes, same bound
    flushes: deque = field(default_factory=deque)
    accepted_events: int = 0
    rejected_events: int = 0
    #: requests refused at the door by the bounded queue (answered with
    #: a rejected outcome, never silently dropped)
    backpressure_rejections: int = 0
    #: queued requests dropped by the admission policy's high-water mark
    #: (each answered with a rejected shed outcome)
    shed_events: int = 0
    #: queued requests whose deadline expired before their flush (each
    #: answered with a rejected deadline outcome, never healed late)
    deadline_timeouts: int = 0
    #: client retry attempts observed by the load generator
    retries: int = 0
    heal_s: float = 0.0
    # running aggregates (whole run, unbounded time, O(1) memory)
    batches: int = 0
    _batch_size_sum: int = 0
    _batch_size_max: int = 0
    _depth_count: int = 0
    _depth_sum: int = 0
    _depth_max: int = 0
    _ack_sum_s: float = 0.0
    _ack_max_s: float = 0.0
    _window_started_at: float | None = None

    def __post_init__(self) -> None:
        if self.started_at is None:
            self.started_at = self.clock()
        self._window_started_at = self.started_at
        if self.registry is None:
            self.registry = MetricsRegistry()
        self._ack_hist = self.registry.histogram(
            "dex.ack_latency_seconds",
            "per-request enqueue-to-resolution latency",
            window=self.sample_cap,
        )
        if self.ack_latencies_s:
            for latency in self.ack_latencies_s:
                self._ack_hist.observe(latency)
            self._ack_hist.reset_window()
        # one sample store: the histogram's bounded deque IS the
        # public ack_latencies_s attribute
        self.ack_latencies_s = self._ack_hist.samples
        self.flushes = deque(self.flushes, maxlen=self.sample_cap)

    @property
    def _window_acks(self) -> list:
        """Acks since the last :meth:`window` call -- the histogram's
        rolling mark (kept as a property so restore paths and tests may
        reset it in place)."""
        return self._ack_hist.window_samples

    @_window_acks.setter
    def _window_acks(self, values: Sequence[float]) -> None:
        self._ack_hist.window_samples = list(values)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_enqueue(self, depth: int) -> None:
        self._depth_count += 1
        self._depth_sum += depth
        if depth > self._depth_max:
            self._depth_max = depth

    def record_ack(self, latency_s: float, ok: bool) -> None:
        # one observe: cumulative deque, rolling window and the sorted
        # memo's invalidation all happen inside the histogram
        self._ack_hist.observe(latency_s)
        self._ack_sum_s += latency_s
        if latency_s > self._ack_max_s:
            self._ack_max_s = latency_s
        if ok:
            self.accepted_events += 1
        else:
            self.rejected_events += 1

    def record_backpressure(self) -> None:
        self.backpressure_rejections += 1

    def record_shed(self) -> None:
        self.shed_events += 1

    def record_timeout(self) -> None:
        self.deadline_timeouts += 1

    def record_retry(self) -> None:
        self.retries += 1

    def record_flush(
        self, kind: str, submitted: int, accepted: int, rejected: int, heal_s: float
    ) -> None:
        self.flushes.append(
            FlushRecord(kind, submitted, accepted, rejected, heal_s)
        )
        self.batches += 1
        self._batch_size_sum += submitted
        if submitted > self._batch_size_max:
            self._batch_size_max = submitted
        self.heal_s += heal_s

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def _summarise(
        self, sorted_acks: Sequence[float], events: int, elapsed_s: float
    ) -> dict[str, float | int | None]:
        """Build a summary row.  ``sorted_acks`` must already be in
        ascending order (the histogram's memoized sort, or one explicit
        sort of a rolling window): the p50/p90/p99 reads then cost three
        interpolations, not three sorts."""
        return {
            "elapsed_s": round(elapsed_s, 6),
            "events": events,
            "events_per_s": round(events / elapsed_s, 3) if elapsed_s > 0 else 0.0,
            "accepted": self.accepted_events,
            "rejected": self.rejected_events,
            "backpressure": self.backpressure_rejections,
            "shed": self.shed_events,
            "deadline_timeouts": self.deadline_timeouts,
            "retries": self.retries,
            "ack_p50_ms": _ms(quantile_sorted(sorted_acks, 0.50)),
            "ack_p90_ms": _ms(quantile_sorted(sorted_acks, 0.90)),
            "ack_p99_ms": _ms(quantile_sorted(sorted_acks, 0.99)),
            "ack_max_ms": _ms(self._ack_max_s if events else None),
            "ack_mean_ms": _ms(self._ack_sum_s / events if events else None),
            "batches": self.batches,
            "mean_batch": (
                round(self._batch_size_sum / self.batches, 3)
                if self.batches
                else 0.0
            ),
            "max_batch_seen": self._batch_size_max,
            "queue_depth_max": self._depth_max,
            "queue_depth_mean": (
                round(self._depth_sum / self._depth_count, 3)
                if self._depth_count
                else 0.0
            ),
            "heal_s": round(self.heal_s, 6),
            "heal_utilization": (
                round(self.heal_s / elapsed_s, 4) if elapsed_s > 0 else 0.0
            ),
        }

    def snapshot(self) -> dict[str, float | int | None]:
        """Cumulative summary since construction: throughput, ack
        latency percentiles (over the retained ``sample_cap`` newest
        acks), batch shape and queue pressure.  Safe on an empty run
        (rates zero, percentiles ``None``).  ``events_per_s`` counts
        every flushed request; ``goodput_per_s`` counts only healed
        (``ok``) ones -- under saturation the gap between the two is the
        served-but-rejected fraction, and door rejections (backpressure,
        shed, deadline) appear in neither."""
        elapsed_s = self.clock() - (self.started_at or 0.0)
        row = self._summarise(
            self._ack_hist.sorted_samples(),
            self.accepted_events + self.rejected_events,
            elapsed_s,
        )
        row["goodput_per_s"] = (
            round(self.accepted_events / elapsed_s, 3) if elapsed_s > 0 else 0.0
        )
        return row

    def reset_windows(self) -> None:
        """Re-anchor the elapsed/window clocks at *now* and drop pending
        window samples.  Required after a process restore: ``started_at``
        is a ``perf_counter`` reading, which is meaningless across
        processes (and inflated by however long the restore itself took),
        so a freshly restored gateway would otherwise report garbage
        ``elapsed_s`` / ``events_per_s`` in its first
        :meth:`snapshot`/:meth:`window` rows.  Cumulative counters are
        kept -- only the time base and the rolling window reset."""
        now = self.clock()
        self.started_at = now
        self._window_started_at = now
        self._window_acks = []

    def reset(self) -> None:
        """Zero every cumulative counter and re-anchor the clocks: the
        summaries that follow cover only what happens after this call.
        Benchmarks use it to exclude a warmup phase (cold CSR caches,
        first-flush rebuilds) from the steady-state row."""
        # hist.clear() empties the shared sample deque (ack_latencies_s
        # is the same object) *and* the running count/sum/max + memo
        self._ack_hist.clear()
        self.flushes.clear()
        self.accepted_events = 0
        self.rejected_events = 0
        self.backpressure_rejections = 0
        self.shed_events = 0
        self.deadline_timeouts = 0
        self.retries = 0
        self.heal_s = 0.0
        self.batches = 0
        self._batch_size_sum = 0
        self._batch_size_max = 0
        self._depth_count = 0
        self._depth_sum = 0
        self._depth_max = 0
        self._ack_sum_s = 0.0
        self._ack_max_s = 0.0
        self.reset_windows()

    def window(self) -> dict[str, float | int | None]:
        """Summary of the acks since the previous :meth:`window` call
        (the periodic progress row of ``repro.cli serve``), then drop
        the consumed samples and advance the boundary.  Counter and
        batch/queue columns stay cumulative."""
        now = self.clock()
        acks = self._ack_hist.take_window()
        row = self._summarise(
            sorted(acks), len(acks), now - (self._window_started_at or now)
        )
        # per-window max/mean, not the run-wide aggregates
        row["ack_max_ms"] = _ms(max(acks) if acks else None)
        row["ack_mean_ms"] = _ms(sum(acks) / len(acks) if acks else None)
        self._window_started_at = now
        return row

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def publish_registry(self) -> MetricsRegistry:
        """Sync the cumulative counters into the shared registry and
        return it.  The ack-latency histogram needs no sync (it *is*
        the registry's); counters publish on read so the hot path stays
        two integer adds per event."""
        registry = self.registry
        assert registry is not None  # set in __post_init__
        registry.counter(
            "dex.acks_total", "requests resolved (healed or rejected)"
        ).set_total(self.accepted_events + self.rejected_events)
        registry.counter(
            "dex.acks_accepted_total", "requests healed successfully"
        ).set_total(self.accepted_events)
        registry.counter(
            "dex.acks_rejected_total", "requests resolved as rejected"
        ).set_total(self.rejected_events)
        registry.counter(
            "dex.backpressure_total", "requests refused by the bounded queue"
        ).set_total(self.backpressure_rejections)
        registry.counter(
            "dex.shed_total", "queued requests shed by admission policy"
        ).set_total(self.shed_events)
        registry.counter(
            "dex.deadline_timeouts_total", "requests expired before flush"
        ).set_total(self.deadline_timeouts)
        registry.counter(
            "dex.retries_total", "client retry attempts observed"
        ).set_total(self.retries)
        registry.counter(
            "dex.batches_total", "gateway flushes executed"
        ).set_total(self.batches)
        registry.gauge(
            "dex.heal_seconds_total", "cumulative engine wall-clock"
        ).set(round(self.heal_s, 6))
        registry.gauge(
            "dex.queue_depth_max", "deepest queue observed at enqueue"
        ).set(self._depth_max)
        return registry

    def render_exposition(self) -> str:
        """Prometheus text exposition of the synced registry -- the
        same histogram the serve table and soak row read, so the three
        surfaces cannot disagree."""
        return self.publish_registry().render_prometheus()
