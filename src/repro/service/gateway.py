"""The asyncio membership-service gateway (the serving layer).

Everything below :mod:`repro.harness` replays recorded adversary
scripts; this module is the first *online* surface: many concurrent
clients call :meth:`MembershipGateway.join` / ``leave`` and await an
answer, and the gateway turns that request stream into the
congestion-synchronous batch waves the healing engine already speaks.
DEX's healing is local and concurrent by construction (Corollary 2), so
the serving layer's whole job is coalescing:

* **Ingestion** -- a bounded FIFO queue.  A request arriving at a full
  queue is *answered* with a rejected outcome (or
  :class:`~repro.errors.GatewayOverloaded` under the ``"raise"``
  policy), never silently dropped: backpressure is an explicit contract
  with the client, not a timeout.
* **Adaptive micro-batching** -- each flush is kind-segregated (it maps
  to exactly one ``insert_batch`` or ``delete_batch`` wave), led by the
  oldest queued request.  The batcher gathers that kind *across* the
  queue, because reordering around the other kind is only observable
  when two requests name the same node id: a ``leave(x)`` can only race
  a ``join(x)`` if ``x`` was pinned by the client (a gateway-assigned
  id is unknown until the join's ack resolves), so any request naming
  an id that a skipped earlier request also names acts as a barrier and
  stays queued for a later flush.  The flush fires as soon as the
  gather reaches ``max_batch`` or the ``batch_window_ms`` timer
  expires; under saturation the gateway therefore heals
  ``max_batch``-sized waves, while at low arrival rates a request waits
  at most one window.  ``batch_window_ms=0`` with ``max_batch=1``
  degenerates to a per-request gateway -- the baseline the soak
  benchmark compares against.
* **Partial-batch outcomes** -- each flush maps to exactly one
  :func:`~repro.core.multi.insert_batch_partial` /
  :func:`~repro.core.multi.delete_batch_partial` call, and every
  client's future resolves with its *individual* :class:`Ack`: healed
  requests learn their assigned node id; illegal ones (stale attach
  hint, duplicate leave, victim that would disconnect the remainder)
  learn the engine's per-request rejection reason while the legal
  majority of their batch still heals in one wave.

The heal call itself runs synchronously on the event loop by default --
the engine is CPU-bound Python over one shared graph, so handing it to
a thread would serialize on the same state anyway; the batcher yields
between flushes so clients keep enqueueing while a wave heals.

**Pipelined mode** (``pipeline=True``, PR 8) breaks that serial loop
into overlapping stages: the heal of flush k runs on a single-worker
thread executor while the event loop keeps ingesting, *collects* flush
k+1 (the window wait overlaps the wave instead of following it) and
runs its **membership-determined validation** against the predicted
post-flush-k view.  The prediction is exact, not speculative:

* an in-flight *insert* flush only ever adds the ids published at
  dispatch time (``_view_added``), so "id exists" / "attach point
  missing" answers for flush k+1 are already decided;
* an in-flight *delete* flush only ever removes its victims -- those
  ids form a **doubt set** treated as selection barriers (a request
  naming or attaching to a doubtful id simply waits one flush), so no
  request is ever answered from an uncertain fact.

Requests whose rejection is membership-determined (a pinned id that
already exists, a pinned hint that does not) are answered at stage
time, one heal earlier than the serial gateway could.  Everything
topology-dependent -- attach fan-out, the eps*n cap, survivor
connectivity -- stays with the engine's own re-partition when the
flush dispatches at the next quiescent point, so a staged flush can
never corrupt a wave: the worst a stale prediction can do is turn
into the same per-request rejection the serial gateway would have
issued.  Checkpoints keep their between-flushes placement (taken only
while no heal is in flight), deadlines are re-swept at dispatch so a
request that expired while parked behind a wave is never healed late,
and an engine exception still fails every flushed, staged and queued
future before tearing the batcher down.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import GatewayClosed, GatewayOverloaded, SnapshotError
from repro.obs import trace as _trace
from repro.service.metrics import ServiceMetrics
from repro.service.policy import AdmissionPolicy, make_policy
from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork
    from repro.core.multi import BatchOutcome


@dataclass(frozen=True)
class Ack:
    """One client's outcome: the resolution of a ``join``/``leave``."""

    ok: bool
    kind: str  # "join" | "leave"
    #: the (assigned) node id the request was about; joins learn their
    #: id here even when the gateway chose it
    node: NodeId | None
    #: rejection reason (``None`` on success) -- the engine's per-request
    #: reason, or the gateway's backpressure notice
    reason: str | None
    #: enqueue-to-resolution seconds as measured by the gateway
    latency_s: float
    #: size of the flush that carried the request (0 for requests
    #: answered at the door, i.e. backpressure)
    batch_size: int


@dataclass(eq=False)  # identity semantics: each request is unique
class _Request:
    kind: str
    node: NodeId | None
    attach_hint: NodeId | None
    future: asyncio.Future
    submitted_at: float
    #: absolute ``perf_counter`` instant after which the request must be
    #: answered with a deadline rejection instead of healed (``None`` =
    #: no deadline)
    deadline_at: float | None = None
    #: open ``gateway.request`` span while tracing is enabled, finished
    #: at resolution (``None`` when tracing is off)
    span: "_trace.Span | None" = None


@dataclass(eq=False)
class _StagedFlush:
    """Flush k+1 of the pipeline: gathered and membership-screened
    while flush k's wave is still healing, dispatched at the next
    quiescent point."""

    kind: str
    requests: list[_Request]
    #: the flush's open ``gateway.flush`` root span (tracing on only)
    span: "_trace.Span | None" = None


@dataclass(eq=False)
class _InflightFlush:
    """Flush k while its heal runs on the pipeline executor: the
    requests it will answer, the concrete node ids it is about, and the
    executor future carrying ``(BatchOutcome, heal_s)``."""

    kind: str
    requests: list[_Request]
    nodes: list[NodeId]
    future: asyncio.Future
    #: the flush's open ``gateway.flush`` root span (tracing on only)
    span: "_trace.Span | None" = None


class MembershipGateway:
    """Async facade over one :class:`~repro.core.dex.DexNetwork`.

    Use as an async context manager (or call :meth:`start` /
    :meth:`close` explicitly)::

        async with MembershipGateway(net, max_batch=64) as gateway:
            ack = await gateway.join()
            assert ack.ok and net.graph.has_node(ack.node)

    ``overload`` selects the backpressure policy: ``"reject"`` (default)
    answers queue-full requests with a rejected :class:`Ack`;
    ``"raise"`` raises :class:`~repro.errors.GatewayOverloaded` instead.

    ``policy`` selects the admission/batching controller (a name from
    :data:`~repro.service.policy.POLICIES` or a ready
    :class:`~repro.service.policy.AdmissionPolicy` instance) and
    ``deadline_ms`` an optional default per-request deadline: a queued
    request whose deadline passes is answered with a rejected ack
    (:data:`DEADLINE_REASON`), never healed late and never left hanging
    -- the sweep runs before every flush, across :meth:`drain` and
    across checkpoint pauses.
    """

    #: reason string of backpressure rejections (tested verbatim)
    BACKPRESSURE_REASON = "backpressure: ingestion queue full"
    #: reason of door rejections issued by a degraded admission policy
    #: (prefixed "backpressure" so clients treat both alike, e.g. retry)
    DEGRADED_REASON = "backpressure: degraded under sustained saturation"
    #: reason of requests shed from the queue by the admission policy
    SHED_REASON = "shed: queue above high-water mark"
    #: reason of requests whose deadline expired before their flush
    DEADLINE_REASON = "deadline exceeded before heal"

    def __init__(
        self,
        net: "DexNetwork",
        *,
        max_batch: int = 64,
        batch_window_ms: float = 2.0,
        queue_limit: int = 4096,
        overload: str = "reject",
        policy: "str | AdmissionPolicy" = "fixed",
        pipeline: bool = False,
        deadline_ms: float | None = None,
        seed: int | None = None,
        metrics: ServiceMetrics | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 32,
        checkpoint_keep: int = 3,
        on_before_checkpoint: Callable[[int], None] | None = None,
        on_checkpoint: Callable[[int, Path], None] | None = None,
        on_ack: Callable[[Ack], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, got {batch_window_ms}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if overload not in ("reject", "raise"):
            raise ValueError(f"unknown overload policy {overload!r}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if checkpoint_keep < 1:
            raise ValueError(f"checkpoint_keep must be >= 1, got {checkpoint_keep}")
        self.net = net
        self.max_batch = max_batch
        self.batch_window_s = batch_window_ms / 1e3
        self.queue_limit = queue_limit
        self.metrics = metrics or ServiceMetrics()
        self._overload = overload
        self.policy = make_policy(policy)
        self.policy.bind(
            base_window_s=self.batch_window_s,
            max_batch=max_batch,
            queue_limit=queue_limit,
        )
        self.deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
        #: set on the first request that carries a deadline; keeps the
        #: per-flush sweep O(1) for deadline-free workloads
        self._deadlines_active = self.deadline_s is not None
        self._rng = random.Random(
            seed if seed is not None else getattr(net.config, "seed", 0)
        )
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        #: fired with the step about to be checkpointed, *before* the
        #: snapshot is written or published.  A subscriber that must
        #: stay ahead of durable state (e.g. a write-ahead journal:
        #: flush + fsync here, so no checkpoint can become durable with
        #: the journal lagging it) does its work here; raising OSError
        #: vetoes the checkpoint (counted in ``checkpoint_errors``).
        self.on_before_checkpoint = on_before_checkpoint
        self.on_checkpoint = on_checkpoint
        #: synchronous ack tap, fired the moment an outcome is decided
        #: (inside the flush, before control returns to the event loop).
        #: At checkpoint time every ack issued so far is therefore
        #: visible to the tap -- the property the fault harness's
        #: journal relies on.  Must not raise.
        self.on_ack = on_ack
        self.checkpoints_written = 0
        self.checkpoint_errors = 0
        self.last_checkpoint: Path | None = None
        self._flushes_since_checkpoint = 0
        self._queue: deque[_Request] = deque()
        self._wake = asyncio.Event()
        self._batcher: asyncio.Task | None = None
        self._closing = False
        self._clock = time.perf_counter
        self._last_flush_end = self._clock()
        #: pipelined mode: heal on a single-worker thread, overlap the
        #: next flush's collection + membership screening with the wave
        self.pipeline = pipeline
        self._executor: ThreadPoolExecutor | None = None
        self._inflight: _InflightFlush | None = None
        #: ids the in-flight insert flush is adding (certain deltas of
        #: the predicted post-heal membership view)
        self._view_added: set[NodeId] = set()
        #: victims of the in-flight delete flush: membership *unknown*
        #: until the wave resolves -- treated as selection barriers, so
        #: no staged decision ever rests on a doubtful id
        self._doubt: set[NodeId] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "MembershipGateway":
        if self._batcher is None:
            self._last_flush_end = self._clock()
            if self.pipeline and self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="dex-heal"
                )
            runner = self._run_pipelined() if self.pipeline else self._run()
            self._batcher = asyncio.ensure_future(runner)
        return self

    async def close(self) -> None:
        """Stop accepting requests, drain the queue (every queued
        request still gets its outcome), and join the batcher."""
        self._closing = True
        self._wake.set()
        try:
            if self._batcher is not None:
                await self._batcher
        finally:
            self._batcher = None
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    async def drain(self) -> dict:
        """Graceful shutdown: stop accepting new requests, answer
        **every** queued future (the batcher keeps flushing until the
        queue is empty -- no client is left hanging), then write one
        final checkpoint.  Returns a small summary the caller can log.
        The final checkpoint happens strictly *after* the last flush, so
        it captures every acknowledged request."""
        pending = len(self._queue)
        await self.close()
        final = None
        if self.checkpoint_dir is not None:
            final = self._checkpoint_guarded()
        return {
            "pending_answered": pending,
            "final_checkpoint": str(final) if final is not None else None,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_errors": self.checkpoint_errors,
        }

    @classmethod
    def from_checkpoint(
        cls, checkpoint_root: str | Path, **kwargs: object
    ) -> "MembershipGateway":
        """Build a gateway over the newest loadable checkpoint under
        ``checkpoint_root``.  The restored gateway checkpoints back into
        the same directory unless ``checkpoint_dir`` overrides it, and
        its metrics windows are re-anchored *after* the restore
        completes -- ``perf_counter`` anchors from the previous process
        (or from before a multi-second restore) would otherwise corrupt
        the first reported rates."""
        from repro.persist.snapshot import restore_latest

        net, path, _skipped = restore_latest(checkpoint_root)
        kwargs.setdefault("checkpoint_dir", checkpoint_root)
        gateway = cls(net, **kwargs)
        gateway.last_checkpoint = path
        gateway.metrics.reset_windows()
        return gateway

    async def __aenter__(self) -> "MembershipGateway":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # the client surface
    # ------------------------------------------------------------------
    async def join(
        self,
        node_id: NodeId | None = None,
        attach_hint: NodeId | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> Ack:
        """Request membership: a new node (gateway-assigned id unless
        ``node_id`` pins one) attached at ``attach_hint`` (a uniformly
        sampled live node unless pinned).  Resolves when the request's
        micro-batch healed.  ``deadline_ms`` overrides the gateway
        default deadline for this request only."""
        return await self._submit("join", node_id, attach_hint, deadline_ms)

    async def leave(
        self, node_id: NodeId, *, deadline_ms: float | None = None
    ) -> Ack:
        """Request departure of ``node_id``; resolves when the request's
        micro-batch healed (or with the per-victim rejection reason)."""
        return await self._submit("leave", node_id, None, deadline_ms)

    def _submit(
        self,
        kind: str,
        node: NodeId | None,
        attach_hint: NodeId | None,
        deadline_ms: float | None = None,
    ) -> asyncio.Future:
        if self._closing or self._batcher is None:
            raise GatewayClosed(
                f"{kind} request arrived while the gateway is "
                f"{'closing' if self._closing else 'not started'}"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        depth = len(self._queue)
        if depth >= self.queue_limit or not self.policy.admit(depth):
            # At-the-door rejection: the hard queue limit first, then
            # the policy's stricter admission (e.g. degrade-to-reject).
            reason = (
                self.BACKPRESSURE_REASON
                if depth >= self.queue_limit
                else self.DEGRADED_REASON
            )
            self.metrics.record_backpressure()
            if self._overload == "raise":
                raise GatewayOverloaded(
                    f"ingestion queue full ({self.queue_limit} pending)"
                    if depth >= self.queue_limit
                    else f"admission degraded by policy {self.policy.name!r}"
                )
            ack = Ack(
                ok=False,
                kind=kind,
                node=node,
                reason=reason,
                latency_s=0.0,
                batch_size=0,
            )
            future.set_result(ack)
            if self.on_ack is not None:
                self.on_ack(ack)
            return future
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else self.deadline_s
        now = self._clock()
        deadline_at = now + deadline_s if deadline_s is not None else None
        if deadline_at is not None:
            self._deadlines_active = True
        request = _Request(kind, node, attach_hint, future, now, deadline_at)
        rec = _trace.current()
        if rec.enabled:
            request.span = rec.start("gateway.request", kind=kind, node=node)
        self._queue.append(request)
        self.metrics.record_enqueue(len(self._queue))
        self._shed_excess()
        self._wake.set()
        return future

    # ------------------------------------------------------------------
    # the batcher
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _selection(self) -> list[_Request]:
        """The next flush, selected non-destructively: up to
        ``max_batch`` requests of the lead kind (the oldest queued
        request's), gathered across the queue.  A *skipped* request's
        pinned node id is a barrier -- later lead-kind requests naming
        it are skipped too, so per-node operation order is preserved
        even though kinds interleave.  Single source of truth for both
        the window decision (:meth:`_gatherable`) and the dequeue
        (:meth:`_gather`).  In pipelined mode the in-flight delete
        flush's doubt set also defers any request *naming or attaching
        to* a doubtful id -- its membership is unknown until the wave
        resolves, so it must not reach a staged decision."""
        kind = self._queue[0].kind
        doubt = self._doubt
        barriers: set[NodeId] = set()
        batch: list[_Request] = []
        for request in self._queue:
            if (
                len(batch) < self.max_batch
                and request.kind == kind
                and (
                    request.node is None
                    or (request.node not in barriers and request.node not in doubt)
                )
                and (
                    request.attach_hint is None
                    or request.attach_hint not in doubt
                )
            ):
                batch.append(request)
            elif request.node is not None:
                barriers.add(request.node)
        return batch

    def _gatherable(self) -> int:
        return len(self._selection())

    def _gather(self) -> list[_Request]:
        batch = self._selection()
        selected = set(batch)  # _Request hashes by identity
        self._queue = deque(r for r in self._queue if r not in selected)
        return batch

    def _finish_request_span(self, request: _Request, ack: Ack) -> None:
        """Seal the request's open ``gateway.request`` span (no-op with
        tracing off -- the span is only created while enabled)."""
        sp = request.span
        if sp is not None:
            request.span = None
            sp.set(ok=ack.ok, reason=ack.reason, batch=ack.batch_size)
            _trace.current().finish(sp)

    def _answer_dropped(self, request: _Request, reason: str) -> None:
        """Resolve a request the gateway decided not to heal (shed or
        deadline-expired) with a rejected ack -- answered, never
        dropped, same contract as backpressure."""
        ack = Ack(
            ok=False,
            kind=request.kind,
            node=request.node,
            reason=reason,
            latency_s=self._clock() - request.submitted_at,
            batch_size=0,
        )
        if not request.future.done():
            request.future.set_result(ack)
        self._finish_request_span(request, ack)
        if self.on_ack is not None:
            self.on_ack(ack)

    def _shed_excess(self) -> None:
        """Answer-and-drop the oldest queued requests the policy wants
        gone.  Skipped while closing: a draining gateway heals its
        backlog rather than shedding it (deadlines still apply)."""
        if self._closing:
            return
        count = self.policy.shed_count(len(self._queue))
        for _ in range(min(count, len(self._queue))):
            request = self._queue.popleft()
            self.metrics.record_shed()
            self._answer_dropped(request, self.SHED_REASON)

    def _next_deadline(self) -> float | None:
        """The soonest queued deadline, or ``None``."""
        if not self._deadlines_active:
            return None
        deadlines = [
            r.deadline_at for r in self._queue if r.deadline_at is not None
        ]
        return min(deadlines) if deadlines else None

    def _sweep_deadlines(self) -> None:
        """Answer every queued request whose deadline has passed with a
        deadline rejection.  Runs before every flush -- including while
        closing and right after a checkpoint pause -- so an expired
        request is never healed late and never left hanging."""
        if not self._deadlines_active:
            return
        now = self._clock()
        if not any(
            r.deadline_at is not None and r.deadline_at <= now
            for r in self._queue
        ):
            return
        survivors: deque[_Request] = deque()
        for request in self._queue:
            if request.deadline_at is not None and request.deadline_at <= now:
                self.metrics.record_timeout()
                self._answer_dropped(request, self.DEADLINE_REASON)
            else:
                survivors.append(request)
        self._queue = survivors

    async def _run(self) -> None:
        while True:
            self._shed_excess()
            self._sweep_deadlines()
            if not self._queue:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            rec = _trace.current()
            root = (
                rec.start("gateway.flush", mode="serial")
                if rec.enabled
                else None
            )
            if root is not None:
                csp = rec.start(
                    "gateway.flush.collect",
                    trace_id=root.trace_id,
                    parent_id=root.span_id,
                )
                await self._collect()
                rec.finish(csp)
            else:
                await self._collect()
            # The window wait (or a checkpoint pause last iteration) may
            # have expired deadlines: answer them *before* gathering so
            # an expired request is never healed late.
            self._sweep_deadlines()
            if not self._queue:
                if root is not None:
                    rec.finish(root.set(empty=True))
                continue
            batch = self._gather()
            if root is not None:
                root.set(kind=batch[0].kind, batch=len(batch))
            heal_s = self._flush(batch[0].kind, batch, root=root)
            if root is not None:
                rec.finish(root)
            now = self._clock()
            interval_s = now - self._last_flush_end
            self._last_flush_end = now
            self.policy.observe_flush(
                depth=len(self._queue),
                batch_size=len(batch),
                heal_s=heal_s,
                interval_s=interval_s,
            )
            # Checkpoints sit *between* flushes: the heal call above has
            # returned, so the network is in a steady state (never
            # mid-heal, never with a staggered layer in flight).
            if self.checkpoint_dir is not None:
                self._flushes_since_checkpoint += 1
                if self._flushes_since_checkpoint >= self.checkpoint_every:
                    self._checkpoint_guarded()
            # Yield so awaiting clients resolve and new arrivals land
            # before the next flush decision.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # the pipelined batcher (pipeline=True)
    # ------------------------------------------------------------------
    async def _run_pipelined(self) -> None:
        """Collection, membership screening and healing as overlapping
        stages: while flush k's wave runs on the executor, the loop
        collects and screens flush k+1; the moment k resolves, k+1
        dispatches.  All serial contracts hold: shed/deadline sweeps
        before every gather (re-swept at dispatch), checkpoints only at
        quiescent points, drain answers everything, engine exceptions
        fail every in-flight, staged and queued future."""
        staged: _StagedFlush | None = None
        while True:
            if staged is not None and self._inflight is None:
                self._dispatch(staged)
                staged = None
                continue
            if self._inflight is not None:
                if staged is None:
                    self._shed_excess()
                    self._sweep_deadlines()
                    if self._queue:
                        await self._collect_overlap(self._inflight.future)
                        self._sweep_deadlines()
                        staged = self._stage()
                await self._complete(staged)
                continue
            self._shed_excess()
            self._sweep_deadlines()
            if not self._queue:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._collect()
            self._sweep_deadlines()
            staged = self._stage()
            # Yield so door-answered clients resolve and new arrivals
            # land before the dispatch decision (mirrors the serial
            # loop's between-flush yield).
            await asyncio.sleep(0)

    async def _collect_overlap(self, heal_future: asyncio.Future) -> None:
        """The collection wait while a wave is in flight.  Unlike
        :meth:`_collect` it never runs the O(queue) selection scan per
        enqueue wake -- the flush cannot dispatch before the wave
        resolves anyway, so scanning eagerly would only steal cycles
        from the heal thread.  It waits on the cheap ``len(queue)``
        proxy (a superset of the gatherable count) until the wave
        resolves, the window expires or the queue plausibly fills a
        batch, and the single authoritative selection happens in
        :meth:`_stage` afterwards.  Deadline wakes behave exactly as in
        :meth:`_collect`."""
        window_s = self.policy.window_s()
        if window_s <= 0 or self._closing:
            return
        expires = self._clock() + window_s
        while (
            not self._closing
            and self._queue
            and len(self._queue) < self.max_batch
            and not heal_future.done()
        ):
            now = self._clock()
            if now >= expires:
                return
            timeout = expires - now
            soonest = self._next_deadline()
            if soonest is not None and soonest < expires:
                if soonest <= now:
                    self._sweep_deadlines()
                    continue
                timeout = soonest - now
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                self._sweep_deadlines()

    def _view_has_node(self, node: NodeId) -> bool:
        """Membership in the predicted post-heal view: the settled graph
        plus the in-flight insert flush's certain additions.  Doubtful
        ids (in-flight delete victims) never get here -- selection bars
        them -- so every answer is deterministic even mid-wave: an
        insert flush only ever *adds* ``_view_added``, and a delete
        flush only ever removes ``_doubt``."""
        return node in self._view_added or self.net.graph.has_node(node)

    def _stage(self) -> _StagedFlush | None:
        """Gather the next flush and run its membership-determined
        screening -- the pipeline's overlap stage.  Returns ``None``
        when nothing survives (every gathered request was answered at
        the door here)."""
        if not self._queue:
            return None
        batch = self._gather()
        if not batch:
            return None
        kind = batch[0].kind
        rec = _trace.current()
        root = (
            rec.start("gateway.flush", mode="pipelined", kind=kind)
            if rec.enabled
            else None
        )
        if root is not None:
            ssp = rec.start(
                "gateway.flush.screen",
                trace_id=root.trace_id,
                parent_id=root.span_id,
            )
            survivors = self._screen(kind, batch)
            rec.finish(ssp)
        else:
            survivors = self._screen(kind, batch)
        if not survivors:
            if root is not None:
                rec.finish(root.set(empty=True))
            return None
        return _StagedFlush(kind, survivors, span=root)

    def _screen(self, kind: str, batch: list[_Request]) -> list[_Request]:
        """Answer the requests whose *rejection* is already decided by
        membership facts alone -- a pinned id that exists in the view
        (it will still exist after the in-flight flush), a pinned attach
        hint or leave victim that does not (nothing in flight can create
        it).  Reason strings mirror the engine partition's wording
        verbatim.  Duplicates and everything topology-dependent
        (fan-out, eps*n, connectivity, stranding) stay with the engine's
        own re-partition at dispatch -- a duplicate's verdict depends on
        whether its predecessor is accepted, which only the engine
        knows."""
        view_has = self._view_has_node
        survivors: list[_Request] = []
        size = len(batch)
        for request in batch:
            reason = None
            if kind == "join":
                if request.node is not None and view_has(request.node):
                    reason = f"node id {request.node} already exists"
                elif request.attach_hint is not None and not view_has(
                    request.attach_hint
                ):
                    reason = f"attach point {request.attach_hint} does not exist"
            elif not view_has(request.node):
                reason = f"node {request.node} does not exist"
            if reason is None:
                survivors.append(request)
                continue
            latency = self._clock() - request.submitted_at
            self.metrics.record_ack(latency, ok=False)
            ack = Ack(
                ok=False,
                kind=kind,
                node=request.node,
                reason=reason,
                latency_s=latency,
                batch_size=size,
            )
            if not request.future.done():
                request.future.set_result(ack)
            self._finish_request_span(request, ack)
            if self.on_ack is not None:
                self.on_ack(ack)
        return survivors

    def _dispatch(self, staged: _StagedFlush) -> bool:
        """Start the staged flush's heal on the executor.  Runs only at
        quiescent points (no heal in flight), so payload assembly --
        fresh-id assignment and attach-hint sampling -- reads the
        settled graph, and the view deltas for the next staging epoch
        are published before the wave starts.  Deadlines are re-swept
        here: the staged batch may have waited out a whole heal plus a
        checkpoint, and an expired request must never be healed late."""
        now = self._clock()
        requests: list[_Request] = []
        for request in staged.requests:
            if request.deadline_at is not None and request.deadline_at <= now:
                self.metrics.record_timeout()
                self._answer_dropped(request, self.DEADLINE_REASON)
            else:
                requests.append(request)
        if not requests:
            if staged.span is not None:
                _trace.current().finish(staged.span.set(empty=True))
            return False
        loop = asyncio.get_running_loop()
        if staged.kind == "join":
            payload = self._join_payload(requests)
            nodes = [new_id for new_id, _attach in payload]
            self._view_added = set(nodes)
            heal_call = self.net.insert_batch_partial
        else:
            payload = [request.node for request in requests]
            nodes = list(payload)
            self._doubt = set(payload)
            heal_call = self.net.delete_batch_partial
        root = staged.span
        if root is not None:
            root.set(batch=len(requests))

        def heal() -> "tuple[BatchOutcome, float]":
            t0 = self._clock()
            if root is not None:
                # ambient span on the executor thread: the engine's
                # core.* / net.wave spans nest under this heal phase
                with _trace.span(
                    "gateway.flush.heal",
                    trace_id=root.trace_id,
                    parent_id=root.span_id,
                ):
                    outcome = heal_call(payload)
            else:
                outcome = heal_call(payload)
            return outcome, self._clock() - t0

        future = loop.run_in_executor(self._executor, heal)
        # Wake the collection wait the instant the wave resolves: the
        # next flush must dispatch immediately, not after a window.
        future.add_done_callback(lambda _f: self._wake.set())
        self._inflight = _InflightFlush(
            staged.kind, requests, nodes, future, span=root
        )
        return True

    async def _complete(self, staged: _StagedFlush | None) -> float:
        """Join the in-flight heal and settle its flush: acks, policy
        feedback, the between-flush checkpoint.  On an engine failure,
        fail the flushed requests, the staged batch *and* the queue --
        exactly the serial guarantee -- then re-raise."""
        inflight = self._inflight
        assert inflight is not None
        try:
            outcome, heal_s = await inflight.future
        except BaseException as exc:
            pending = list(inflight.requests)
            if staged is not None:
                pending.extend(staged.requests)
                if staged.span is not None:
                    _trace.current().finish(
                        staged.span.set(error=type(exc).__name__)
                    )
            if inflight.span is not None:
                _trace.current().finish(
                    inflight.span.set(error=type(exc).__name__)
                )
            self._inflight = None
            self._view_added = set()
            self._doubt = set()
            self._fail_pending(pending, exc)
            raise
        self._inflight = None
        self._view_added = set()
        self._doubt = set()
        root = inflight.span
        if root is not None:
            rec = _trace.current()
            rsp = rec.start(
                "gateway.flush.resolve",
                trace_id=root.trace_id,
                parent_id=root.span_id,
            )
            self._resolve_flush(
                inflight.kind, inflight.requests, inflight.nodes, outcome, heal_s
            )
            rec.finish(rsp)
            rec.finish(root)
        else:
            self._resolve_flush(
                inflight.kind, inflight.requests, inflight.nodes, outcome, heal_s
            )
        now = self._clock()
        interval_s = now - self._last_flush_end
        self._last_flush_end = now
        self.policy.observe_flush(
            depth=len(self._queue),
            batch_size=len(inflight.requests),
            heal_s=heal_s,
            interval_s=interval_s,
        )
        # Quiescent point: the wave above has resolved and the next one
        # has not dispatched -- the only place the pipelined batcher may
        # checkpoint.
        if self.checkpoint_dir is not None:
            self._flushes_since_checkpoint += 1
            if self._flushes_since_checkpoint >= self.checkpoint_every:
                self._checkpoint_guarded()
        return heal_s

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def publish_registry(self):
        """Sync the gateway's whole observable state -- service
        counters, admission-policy state, checkpoint/queue gauges --
        into the metrics registry and return it (the ``serve
        --metrics-out`` exposition surface)."""
        registry = self.metrics.publish_registry()
        registry.counter(
            "dex.checkpoints_written_total", "checkpoints written"
        ).set_total(self.checkpoints_written)
        registry.counter(
            "dex.checkpoint_errors_total", "checkpoint attempts that failed"
        ).set_total(self.checkpoint_errors)
        registry.gauge(
            "dex.queue_depth", "requests currently queued"
        ).set(len(self._queue))
        for key, value in self.policy.describe().items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                registry.gauge(
                    f"dex.policy.{key}", f"admission policy state: {key}"
                ).set(value)
        return registry

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint_now(self) -> Path:
        """Write one checkpoint synchronously (callers outside the
        batcher must know the engine is idle -- the batcher itself only
        calls this between flushes).  Prunes to ``checkpoint_keep`` and
        fires ``on_checkpoint`` *after* the snapshot is durable, so a
        subscriber's bookkeeping (e.g. the fault harness's ack journal)
        is always covered by an on-disk checkpoint."""
        if self.checkpoint_dir is None:
            raise SnapshotError("gateway has no checkpoint_dir configured")
        from repro.persist.snapshot import prune_checkpoints, save_snapshot

        if self.on_before_checkpoint is not None:
            self.on_before_checkpoint(self.net.step_count)
        path = save_snapshot(self.net, self.checkpoint_dir)
        prune_checkpoints(self.checkpoint_dir, self.checkpoint_keep)
        self.checkpoints_written += 1
        self.last_checkpoint = path
        if self.on_checkpoint is not None:
            self.on_checkpoint(self.net.step_count, path)
        return path

    def _checkpoint_guarded(self) -> Path | None:
        """A checkpoint attempt that cannot take the service down: a
        full disk or a snapshot refusal is counted and logged onto the
        gateway (``checkpoint_errors``), but the batcher keeps answering
        clients -- losing durability is strictly better than hanging
        every queued future."""
        self._flushes_since_checkpoint = 0
        try:
            return self.checkpoint_now()
        except (SnapshotError, OSError):
            self.checkpoint_errors += 1
            return None

    async def _collect(self, stop_early: asyncio.Future | None = None) -> None:
        """Adaptive wait: let the gatherable flush grow until it
        reaches ``max_batch`` or the policy's window expires.  A closing
        gateway drains immediately.  A queued deadline that lands inside
        the window wakes the wait early so the expiring request is
        answered on time -- a deadline wake is *not* a window expiry;
        the loop keeps waiting out the remainder.  ``stop_early`` (the
        in-flight heal future, pipelined mode) cuts the window short the
        moment the wave resolves: the executor must never idle out the
        remainder of a batching window."""
        window_s = self.policy.window_s()
        if window_s <= 0 or self._closing:
            return
        expires = self._clock() + window_s
        while (
            not self._closing
            and self._queue
            and self._gatherable() < self.max_batch
            and not (stop_early is not None and stop_early.done())
        ):
            now = self._clock()
            if now >= expires:
                return
            timeout = expires - now
            soonest = self._next_deadline()
            if soonest is not None and soonest < expires:
                if soonest <= now:
                    self._sweep_deadlines()
                    continue
                timeout = soonest - now
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                self._sweep_deadlines()

    def _flush(
        self,
        kind: str,
        requests: list[_Request],
        root: "_trace.Span | None" = None,
    ) -> float:
        """One micro-batch -> one partial-batch heal call -> one
        individual outcome per caller.  Returns the heal wall-clock
        seconds (the policy's utilization signal).  ``root`` (tracing
        on) parents the ``gateway.flush.heal`` / ``.resolve`` phase
        spans; the ambient heal span in turn parents the engine's
        ``core.*`` / ``net.wave`` spans."""
        try:
            if kind == "join":
                payload: list = self._join_payload(requests)
                nodes = [new_id for new_id, _attach in payload]
                heal_call: Callable = self.net.insert_batch_partial
            else:
                payload = [request.node for request in requests]
                nodes = list(payload)
                heal_call = self.net.delete_batch_partial
            t0 = self._clock()
            if root is not None:
                with _trace.span(
                    "gateway.flush.heal",
                    trace_id=root.trace_id,
                    parent_id=root.span_id,
                ):
                    outcome = heal_call(payload)
            else:
                outcome = heal_call(payload)
            heal_s = self._clock() - t0
        except BaseException as exc:
            # An engine failure (e.g. RecoveryError) is not a per-request
            # rejection: surface it to every waiting caller -- the
            # flushed batch AND everything still queued (the batcher
            # dies with this raise, so a queued future would otherwise
            # never resolve and its client would hang forever) -- and to
            # the gateway owner instead of masking it as an outcome.
            self._fail_pending(requests, exc)
            raise
        if root is not None:
            with _trace.span(
                "gateway.flush.resolve",
                trace_id=root.trace_id,
                parent_id=root.span_id,
            ):
                self._resolve_flush(kind, requests, nodes, outcome, heal_s)
        else:
            self._resolve_flush(kind, requests, nodes, outcome, heal_s)
        return heal_s

    def _fail_pending(self, requests: list[_Request], exc: BaseException) -> None:
        """Engine-failure path: fail the given requests and every queued
        future, then leave the gateway closing -- no client ever hangs
        on a batcher that died."""
        self._closing = True
        rec = _trace.current()
        for request in requests:
            if not request.future.done():
                request.future.set_exception(exc)
            if request.span is not None:
                rec.finish(request.span.set(error=type(exc).__name__))
                request.span = None
        while self._queue:
            queued = self._queue.popleft()
            if not queued.future.done():
                queued.future.set_exception(exc)
            if queued.span is not None:
                rec.finish(queued.span.set(error=type(exc).__name__))
                queued.span = None

    def _resolve_flush(
        self,
        kind: str,
        requests: list[_Request],
        nodes: list[NodeId],
        outcome: "BatchOutcome",
        heal_s: float,
    ) -> None:
        """Turn one :class:`BatchOutcome` into one individual ack per
        flushed request (shared by the serial and pipelined paths)."""
        reasons = {r.index: r.reason for r in outcome.rejected}
        now = self._clock()
        batch_size = len(requests)
        for index, request in enumerate(requests):
            reason = reasons.get(index)
            latency = now - request.submitted_at
            self.metrics.record_ack(latency, ok=reason is None)
            ack = Ack(
                ok=reason is None,
                kind=kind,
                node=nodes[index],
                reason=reason,
                latency_s=latency,
                batch_size=batch_size,
            )
            request.future.set_result(ack)
            self._finish_request_span(request, ack)
            if self.on_ack is not None:
                self.on_ack(ack)
        self.metrics.record_flush(
            kind, batch_size, len(outcome.accepted), len(outcome.rejected), heal_s
        )

    def _join_payload(
        self, requests: list[_Request]
    ) -> list[tuple[NodeId, NodeId]]:
        """Concrete ``(new_id, attach_to)`` pairs: pinned ids kept,
        fresh consecutive ids otherwise; missing attach hints filled
        with uniform live samples from the gateway's own rng (stale
        pinned hints are left for the engine to reject per-request)."""
        explicit = {r.node for r in requests if r.node is not None}
        has_node = self.net.graph.has_node
        pairs: list[tuple[NodeId, NodeId]] = []
        nid: NodeId | None = None
        for request in requests:
            if request.node is not None:
                new_id = request.node
            else:
                nid = self.net.fresh_id() if nid is None else nid + 1
                while nid in explicit or has_node(nid):
                    nid += 1
                new_id = nid
            attach = (
                request.attach_hint
                if request.attach_hint is not None
                else self.net.sample_node(self._rng)
            )
            pairs.append((new_id, attach))
        return pairs
