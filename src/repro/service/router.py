"""The shard router: one asyncio process fronting N single-threaded
shard workers, each owning a contiguous id region of the overlay
(:mod:`repro.service.shard`).

The router presents the *gateway's* client surface -- ``await join()``
/ ``await leave()`` resolving to :class:`~repro.service.gateway.Ack`,
plus ``metrics`` and a ``net.nodes()`` view -- so every load generator
in :mod:`repro.service.loadgen` drives a sharded cluster unchanged.
Under the surface each request is hashed to its owning shard
(ownership is pure id arithmetic, :class:`~repro.service.shard.ShardMap`),
batched per shard, and correlated back by request id.

**Routing rules.**  A ``leave`` goes to the victim's owner.  A pinned
join goes to the pinned id's owner; if its attach hint lives on a
*different* shard the join becomes a two-phase reserve-then-commit
handoff (see the :mod:`~repro.service.shard` module docstring).  An
unpinned join follows its hint's owner when hinted, else round-robins
over the *live* shards -- which is also the whole rebalancing story:
a dead shard drops out of the rotation (its region's requests are
*answered* with ``shard N unavailable`` rejections, never hung), and a
shard restarted from its checkpoint rejoins it.

**Failure containment.**  A worker death surfaces as pipe EOF (or a
``fatal`` message); the router marks the shard down, fails its
in-flight requests with answered rejections, and keeps serving the
other regions.  A router-side deadline sweeper backstops requests
parked anywhere -- including mid-handoff -- so no future ever hangs.

The :class:`ShardHandle` seam keeps all of this testable without
processes: :class:`InlineShardHandle` drives a real
:class:`~repro.service.shard.ShardServer` synchronously (fake clocks
and deterministic kills included), while :class:`ProcessShardHandle`
speaks the same message protocol over a spawn-context pipe.
"""

from __future__ import annotations

import asyncio
import itertools
import queue
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.errors import GatewayClosed, ShardError
from repro.obs import trace as _trace
from repro.service.gateway import Ack
from repro.service.metrics import ServiceMetrics, aggregate_snapshots
from repro.service.shard import (
    DEADLINE_REASON,
    MSG_ACKS,
    MSG_CONTROL,
    MSG_CTL_REPLY,
    MSG_DRAINED,
    MSG_FATAL,
    MSG_READY,
    MSG_REQUESTS,
    ShardMap,
    ShardServer,
)
from repro.types import NodeId

_EOF = object()


class InlineShardHandle:
    """A :class:`~repro.service.shard.ShardServer` behind the worker
    message protocol, processed synchronously in the caller's thread.
    The reply queue is read exactly like a pipe (blocking ``recv`` with
    an EOF sentinel), so the router cannot tell it from a process --
    which is the point: every router behavior short of true parallelism
    is testable deterministically, including crashes (:meth:`kill`
    makes ``send`` raise and ``recv`` report EOF, exactly like a dead
    worker's pipe)."""

    def __init__(self, server: ShardServer) -> None:
        self.server = server
        self.index = server.index
        self._replies: queue.Queue = queue.Queue()
        self._alive = True
        self._replies.put(
            (
                MSG_READY,
                {
                    "shard": server.index,
                    "size": server.net.size,
                    "region": list(server.region),
                    "nodes": sorted(server.net.nodes()),
                    "restored": False,
                },
            )
        )

    def send(self, msg: tuple[str, Any]) -> None:
        if not self._alive:
            raise BrokenPipeError(f"shard {self.index} killed")
        kind, payload = msg
        if kind == MSG_REQUESTS:
            for req in payload:
                self.server.submit(*req)
            while self.server.flush_due():
                acks = self.server.flush()
                if acks:
                    self._replies.put((MSG_ACKS, acks))
        elif kind == MSG_CONTROL:
            op, args = payload
            if op == "drain":
                acks = self.server.drain()
                if acks:
                    self._replies.put((MSG_ACKS, acks))
                self._replies.put((MSG_DRAINED, self.server.stats()))
                self._alive = False
                self._replies.put(_EOF)
            else:
                from repro.service.shard import _handle_control

                self._replies.put((MSG_CTL_REPLY, _handle_control(self.server, op, args)))

    def pump(self) -> None:
        """Run due flushes/sweeps outside a ``send`` -- how tests make
        time-driven behavior (deadlines, TTL expiry) observable."""
        acks = self.server.sweep()
        while self.server.flush_due():
            acks.extend(self.server.flush())
        if acks:
            self._replies.put((MSG_ACKS, acks))

    def recv(self) -> tuple[str, Any]:
        item = self._replies.get()
        if item is _EOF:
            raise EOFError(f"shard {self.index} closed")
        return item

    def kill(self) -> None:
        """Simulate a worker crash: in-server state (reservations
        included) dies with it; the router sees EOF."""
        self._alive = False
        self._replies.put(_EOF)

    def close(self) -> None:
        self._alive = False
        self._replies.put(_EOF)

    def join_process(self) -> None:  # protocol parity with processes
        return None


class ProcessShardHandle:
    """One spawn-context worker process running
    :func:`~repro.service.shard.shard_worker_main`, reached over a
    duplex pipe.  ``recv`` blocks (the router runs it on the executor);
    a dead worker closes the pipe, which ``recv`` reports as EOF."""

    def __init__(self, index: int, cfg: dict, *, ctx: Any = None) -> None:
        import multiprocessing as mp

        from repro.service.shard import shard_worker_main

        ctx = ctx or mp.get_context("spawn")
        self.index = index
        self.cfg = cfg
        parent, child = ctx.Pipe()
        self._conn = parent
        self.process = ctx.Process(
            target=shard_worker_main, args=(child, cfg), daemon=True
        )
        self.process.start()
        child.close()

    def send(self, msg: tuple[str, Any]) -> None:
        self._conn.send(msg)

    def recv(self) -> tuple[str, Any]:
        return self._conn.recv()

    def poll(self, timeout: float = 0.0) -> bool:
        return self._conn.poll(timeout)

    def fileno(self) -> int:
        return self._conn.fileno()

    def kill(self) -> None:
        self.process.kill()

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass

    def join_process(self, timeout: float = 10.0) -> None:
        self.process.join(timeout)
        self.close()


@dataclass(eq=False)
class _Pending:
    future: asyncio.Future
    shard: int
    kind: str
    node: NodeId | None
    submitted_at: float
    deadline_at: float | None
    #: the open router-side span for this request (tracing on only);
    #: finished wherever the future resolves
    span: "_trace.Span | None" = None


@dataclass(eq=False)
class _PendingCtl:
    """An outstanding control verb.  ``deadline_at`` is never ``None``:
    a control future a *wedged* (alive but silent) shard never answers
    would otherwise hang its caller forever -- and a handoff awaiting
    ``reserve``/``pin`` would hang the client with it, past any client
    deadline.  The sweeper answers expired entries with ``None``, the
    same "no answer" outcome as a dead shard."""

    future: asyncio.Future
    shard: int
    deadline_at: float


#: control verbs that are phases of a client-facing handoff: bounded by
#: the handoff TTL (a reply arriving later is protocol-stale anyway --
#: the server-side reservation/pin it refers to has expired)
_HANDOFF_VERBS = frozenset({"reserve", "pin", "release", "unpin"})


class ShardRouter:
    """Client-facing front of a sharded membership cluster.  Built over
    a list of :class:`ShardHandle`-shaped objects; :func:`start_cluster`
    is the process-backed convenience constructor."""

    def __init__(
        self,
        handles: Sequence[Any],
        *,
        shard_map: ShardMap | None = None,
        cfgs: list[dict] | None = None,
        deadline_ms: float | None = None,
        handoff_ttl_s: float = 2.0,
        sweep_interval_s: float = 0.05,
        ctl_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.perf_counter,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        handles = list(handles)
        if not handles:
            raise ShardError("a router needs at least one shard handle")
        self.shard_map = shard_map or ShardMap(len(handles))
        if len(handles) != self.shard_map.shards:
            raise ShardError(
                f"router built over {len(handles)} handles for a map of "
                f"{self.shard_map.shards} shards"
            )
        self.handles: dict[int, object] = {h.index: h for h in handles}
        if sorted(self.handles) != list(range(self.shard_map.shards)):
            raise ShardError("shard handle indices must cover 0..shards-1")
        self._cfgs = {c["index"]: c for c in cfgs} if cfgs else {}
        self.deadline_ms = deadline_ms
        self.handoff_ttl_s = handoff_ttl_s
        self.sweep_interval_s = sweep_interval_s
        #: answer bound for operator controls (stats/audit/...) toward a
        #: wedged shard; handoff phases use the tighter ``handoff_ttl_s``
        self.ctl_timeout_s = ctl_timeout_s
        self._clock = clock
        self.metrics = metrics or ServiceMetrics(clock=clock)
        self._rids = itertools.count(1)
        self._pending: dict[int, _Pending] = {}
        self._pending_ctl: dict[int, _PendingCtl] = {}
        self._outbox: dict[int, list] = {i: [] for i in self.handles}
        self._outbox_scheduled: set[int] = set()
        self._down: dict[int, str] = {}
        self._drained: dict[int, dict] = {}
        self._drain_event: asyncio.Event | None = None
        self._readers: dict[int, asyncio.Task] = {}
        self._sweeper: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closing = False
        self._rr = 0
        self.net = _ClusterView()
        # handoff accounting (audited: attempted == terminal outcomes)
        self.handoffs_attempted = 0
        self.handoffs_committed = 0
        self.handoffs_rejected = 0
        self.handoffs_expired = 0
        self.shard_failures = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Consume every shard's ready report (bootstrap membership
        seeds the cluster view), then run one reader task per shard and
        the deadline sweeper."""
        self._loop = asyncio.get_running_loop()
        for index in sorted(self.handles):
            await self._consume_ready(index)
        for index in sorted(self.handles):
            self._readers[index] = self._loop.create_task(
                self._reader(index), name=f"shard-reader-{index}"
            )
        self._drain_event = asyncio.Event()
        self._sweeper = self._loop.create_task(
            self._sweep_deadlines(), name="router-deadline-sweeper"
        )
        # Re-anchor the elapsed clock now that every worker has finished
        # bootstrapping: throughput reads as events over *serving* time,
        # not bootstrap + serving time (at large n the bootstrap wait
        # would otherwise dominate and understate events/s).
        self.metrics.reset_windows()

    async def _consume_ready(self, index: int) -> dict:
        handle = self.handles[index]
        while True:
            kind, payload = await self._loop.run_in_executor(None, handle.recv)
            if kind == MSG_READY:
                self.net.absorb(payload["nodes"])
                return payload
            if kind == MSG_FATAL:
                raise ShardError(
                    f"shard {index} died during bootstrap:\n{payload}"
                )

    async def _reader(self, index: int) -> None:
        handle = self.handles[index]
        if hasattr(handle, "fileno"):
            await self._reader_fd(index, handle)
        else:
            await self._reader_executor(index, handle)

    async def _reader_fd(self, index: int, handle: Any) -> None:
        """Event-loop-native reader for pipe-backed handles: the fd is
        registered with ``add_reader`` and every available message is
        drained per wakeup.  No thread-pool hop per message -- at
        saturation the executor dispatch alone costs more than the
        pickle it delivers."""
        fd = handle.fileno()
        wakeup = asyncio.Event()
        self._loop.add_reader(fd, wakeup.set)
        try:
            while True:
                await wakeup.wait()
                wakeup.clear()
                while True:
                    try:
                        if not handle.poll(0):
                            break
                        kind, payload = handle.recv()
                    except (EOFError, OSError, BrokenPipeError):
                        self._mark_down(index, "pipe closed")
                        return
                    if not self._dispatch(index, kind, payload):
                        return
        finally:
            try:
                self._loop.remove_reader(fd)
            except (OSError, ValueError):  # pragma: no cover - closed fd
                pass

    async def _reader_executor(self, index: int, handle: Any) -> None:
        """Blocking-recv reader for handles without a file descriptor
        (the in-process test handles)."""
        while True:
            try:
                kind, payload = await self._loop.run_in_executor(
                    None, handle.recv
                )
            except (EOFError, OSError, BrokenPipeError):
                self._mark_down(index, "pipe closed")
                return
            if not self._dispatch(index, kind, payload):
                return

    def _dispatch(self, index: int, kind: str, payload: Any) -> bool:
        """Process one worker message; False ends the reader task."""
        if kind == MSG_ACKS:
            for ack in payload:
                self._resolve_ack(ack)
        elif kind == MSG_CTL_REPLY:
            entry = self._pending_ctl.pop(payload["rid"], None)
            if entry is not None and not entry.future.done():
                entry.future.set_result(payload)
        elif kind == MSG_DRAINED:
            self._drained[index] = payload
            if self._drain_event is not None:
                self._drain_event.set()
        elif kind == MSG_FATAL:
            self._mark_down(index, f"worker fatal: {payload.splitlines()[-1]}")
            return False
        return True

    def _mark_down(self, index: int, why: str) -> None:
        """A shard stopped talking.  During shutdown that is the normal
        end of a drained worker; otherwise it is a crash: take the shard
        out of rotation and *answer* everything in flight toward it."""
        if index in self._drained or self._closing:
            self._down.setdefault(index, "drained")
            return
        if index in self._down:
            return
        self._down[index] = why
        self.shard_failures += 1
        reason = f"shard {index} unavailable ({why})"
        for rid in [r for r, p in self._pending.items() if p.shard == index]:
            pending = self._pending.pop(rid)
            if not pending.future.done():
                latency = self._clock() - pending.submitted_at
                self.metrics.record_ack(latency, ok=False)
                ack = Ack(False, pending.kind, pending.node, reason, latency, 0)
                pending.future.set_result(ack)
                self._finish_pending_span(pending, ack)
        for rid in [
            r for r, c in self._pending_ctl.items() if c.shard == index
        ]:
            entry = self._pending_ctl.pop(rid)
            if not entry.future.done():
                entry.future.set_result(None)

    def _live_shards(self) -> list[int]:
        return [i for i in self.handles if i not in self._down]

    def shard_is_live(self, index: int) -> bool:
        return index in self.handles and index not in self._down

    async def restart_shard(self, index: int, handle: Any = None) -> dict:
        """Bring a dead shard back -- from its checkpoint directory when
        process-backed (``restore=True`` worker config), or from a
        caller-built handle in inline tests -- and fold it back into the
        routing rotation."""
        if index not in self._down:
            raise ShardError(f"shard {index} is not down")
        old = self.handles[index]
        try:
            old.close()
        except Exception:  # noqa: BLE001 -- already dead
            pass
        if handle is None:
            cfg = self._cfgs.get(index)
            if cfg is None or not cfg.get("checkpoint_dir"):
                raise ShardError(
                    f"shard {index} has no checkpoint directory to restore from"
                )
            cfg = dict(cfg)
            cfg["restore"] = True
            handle = ProcessShardHandle(index, cfg)
        self.handles[index] = handle
        self._outbox[index] = []
        ready = await self._consume_ready(index)
        del self._down[index]
        self._readers[index] = self._loop.create_task(
            self._reader(index), name=f"shard-reader-{index}"
        )
        return ready

    async def drain(self) -> dict:
        """Stop intake, drain every live shard (each queued request
        answered, final covering checkpoints written), and reap the
        workers.  Returns router + per-shard final stats."""
        self._closing = True
        for index in self._live_shards():
            self._flush_outbox(index)
            try:
                self.handles[index].send((MSG_CONTROL, ("drain", {})))
            except (BrokenPipeError, OSError):
                self._mark_down(index, "pipe closed")
        expected = set(self.handles)
        while expected - set(self._drained) - set(self._down):
            self._drain_event.clear()
            try:
                await asyncio.wait_for(self._drain_event.wait(), timeout=30.0)
            except asyncio.TimeoutError as exc:  # pragma: no cover
                raise ShardError(
                    f"shards {sorted(expected - set(self._drained))} "
                    "did not drain within 30s"
                ) from exc
        if self._sweeper is not None:
            self._sweeper.cancel()
        for index, handle in self.handles.items():
            try:
                handle.close()
            except Exception:  # noqa: BLE001
                pass
            handle.join_process()
        for task in self._readers.values():
            task.cancel()
        # Shutdown answers everything: anything still pending raced the
        # drain and is resolved here rather than left hanging.
        for rid in list(self._pending):
            pending = self._pending.pop(rid)
            if not pending.future.done():
                latency = self._clock() - pending.submitted_at
                self.metrics.record_ack(latency, ok=False)
                ack = Ack(
                    False,
                    pending.kind,
                    pending.node,
                    "gateway closed before heal",
                    latency,
                    0,
                )
                pending.future.set_result(ack)
                self._finish_pending_span(pending, ack)
        for rid in list(self._pending_ctl):
            entry = self._pending_ctl.pop(rid)
            if not entry.future.done():
                entry.future.set_result(None)
        return {
            "router": self.metrics.snapshot(),
            "per_shard": [self._drained[i] for i in sorted(self._drained)],
            "handoffs": self.handoff_stats(),
        }

    # ------------------------------------------------------------------
    # client surface (the gateway's)
    # ------------------------------------------------------------------
    async def join(
        self,
        node_id: NodeId | None = None,
        attach_hint: NodeId | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> Ack:
        """Route a join to the shard owning its pinned id (two-phase
        handoff when the hint lives elsewhere), to its hint's owner, or
        round-robin over live shards."""
        if self._closing:
            raise GatewayClosed("router is draining; no new requests accepted")
        deadline_ms = deadline_ms if deadline_ms is not None else self.deadline_ms
        if node_id is None:
            if attach_hint is not None:
                try:
                    shard = self.shard_map.owner(attach_hint)
                except ShardError:
                    return self._door_ack(
                        "join",
                        None,
                        f"attach point {attach_hint} does not exist",
                    )
                return await self._submit(
                    shard, "join", None, attach_hint, deadline_ms
                )
            shard = self._next_live_shard()
            if shard is None:
                return self._door_ack("join", None, "no live shards")
            return await self._submit(shard, "join", None, None, deadline_ms)
        try:
            owner = self.shard_map.owner(node_id)
        except ShardError as exc:
            return self._door_ack("join", node_id, str(exc))
        if attach_hint is None:
            return await self._submit(owner, "join", node_id, None, deadline_ms)
        try:
            hint_owner = self.shard_map.owner(attach_hint)
        except ShardError:
            return self._door_ack(
                "join", node_id, f"attach point {attach_hint} does not exist"
            )
        if hint_owner == owner:
            return await self._submit(
                owner, "join", node_id, attach_hint, deadline_ms
            )
        return await self._handoff(
            node_id, attach_hint, owner, hint_owner, deadline_ms
        )

    async def leave(
        self, node_id: NodeId, *, deadline_ms: float | None = None
    ) -> Ack:
        if self._closing:
            raise GatewayClosed("router is draining; no new requests accepted")
        deadline_ms = deadline_ms if deadline_ms is not None else self.deadline_ms
        try:
            owner = self.shard_map.owner(node_id)
        except ShardError as exc:
            return self._door_ack("leave", node_id, str(exc))
        return await self._submit(owner, "leave", node_id, None, deadline_ms)

    def _next_live_shard(self) -> int | None:
        live = self._live_shards()
        if not live:
            return None
        self._rr += 1
        return live[self._rr % len(live)]

    def _door_ack(self, kind: str, node: NodeId | None, reason: str) -> Ack:
        self.metrics.record_ack(0.0, ok=False)
        return Ack(False, kind, node, reason, 0.0, 0)

    def _submit(
        self,
        shard: int,
        kind: str,
        node: NodeId | None,
        attach_hint: NodeId | None,
        deadline_ms: float | None,
        *,
        rid: int | None = None,
        commit: bool = False,
        parent: "_trace.Span | None" = None,
    ) -> asyncio.Future:
        if not self.shard_is_live(shard):
            future = self._loop.create_future()
            future.set_result(
                self._door_ack(kind, node, f"shard {shard} unavailable")
            )
            return future
        rid = next(self._rids) if rid is None else rid
        now = self._clock()
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
        future = self._loop.create_future()
        rec = _trace.current()
        span: "_trace.Span | None" = None
        trace: tuple[str, str] | None = None
        if rec.enabled:
            # Explicit start/finish, never the ambient stack: the event
            # loop interleaves many requests on one thread.
            if parent is not None:
                span = rec.start(
                    "router.handoff.commit",
                    trace_id=parent.trace_id,
                    parent_id=parent.span_id,
                    shard=shard,
                )
            else:
                span = rec.start(
                    "router.request", kind=kind, node=node, shard=shard
                )
            trace = (span.trace_id, span.span_id)
        self._pending[rid] = _Pending(
            future,
            shard,
            kind,
            node,
            now,
            now + deadline_s if deadline_s is not None else None,
            span,
        )
        self._post(
            shard, (rid, kind, node, attach_hint, deadline_s, commit, trace)
        )
        return future

    def _finish_pending_span(self, pending: _Pending, ack: Ack) -> None:
        sp = pending.span
        if sp is not None:
            pending.span = None
            sp.set(ok=ack.ok, reason=ack.reason)
            _trace.current().finish(sp)

    def _post(self, shard: int, req: tuple) -> None:
        """Coalesce sends: every request posted within one loop tick
        travels as a single pipe message."""
        self._outbox[shard].append(req)
        if shard not in self._outbox_scheduled:
            self._outbox_scheduled.add(shard)
            self._loop.call_soon(self._flush_outbox, shard)

    def _flush_outbox(self, shard: int) -> None:
        self._outbox_scheduled.discard(shard)
        batch = self._outbox[shard]
        if not batch or not self.shard_is_live(shard):
            self._outbox[shard] = []
            return
        self._outbox[shard] = []
        try:
            self.handles[shard].send((MSG_REQUESTS, batch))
        except (BrokenPipeError, OSError):
            self._mark_down(shard, "pipe closed")

    def _resolve_ack(self, ack: dict) -> None:
        pending = self._pending.pop(ack["rid"], None)
        if pending is None or pending.future.done():
            return  # already answered (deadline sweep / shard-down)
        latency = self._clock() - pending.submitted_at
        self.metrics.record_ack(latency, ok=ack["ok"])
        if ack["ok"] and ack["node"] is not None and pending.kind == "join":
            self.net.add(ack["node"])
        if ack["ok"] and pending.kind == "leave" and pending.node is not None:
            self.net.discard(pending.node)
        resolved = Ack(
            ack["ok"],
            ack["kind"],
            ack["node"],
            ack["reason"],
            latency,
            ack["batch_size"],
        )
        pending.future.set_result(resolved)
        self._finish_pending_span(pending, resolved)

    async def _sweep_deadlines(self) -> None:
        """Backstop: a request whose deadline passed is answered here
        even if its shard never speaks again (the acceptance bar is
        *zero hung futures*, under faults included).  Control futures
        are swept too: a shard that is alive but silent (wedged worker,
        stalled pipe) would otherwise hang a handoff at its ``reserve``
        or ``pin`` await forever -- the exact mid-handoff hole the
        async-safety static rule polices."""
        while True:
            await asyncio.sleep(self.sweep_interval_s)
            now = self._clock()
            expired = [
                rid
                for rid, p in self._pending.items()
                if p.deadline_at is not None and p.deadline_at <= now
            ]
            for rid in expired:
                pending = self._pending.pop(rid)
                if pending.future.done():
                    continue
                self.metrics.record_timeout()
                self.metrics.record_ack(now - pending.submitted_at, ok=False)
                ack = Ack(
                    False,
                    pending.kind,
                    pending.node,
                    DEADLINE_REASON,
                    now - pending.submitted_at,
                    0,
                )
                pending.future.set_result(ack)
                self._finish_pending_span(pending, ack)
            expired_ctl = [
                rid
                for rid, c in self._pending_ctl.items()
                if c.deadline_at <= now
            ]
            for rid in expired_ctl:
                entry = self._pending_ctl.pop(rid)
                if not entry.future.done():
                    entry.future.set_result(None)

    # ------------------------------------------------------------------
    # two-phase handoff
    # ------------------------------------------------------------------
    async def _handoff(
        self,
        node: NodeId,
        hint: NodeId,
        owner: int,
        hint_owner: int,
        deadline_ms: float | None,
    ) -> Ack:
        """reserve(owner) -> pin(hint owner) -> commit(owner); each
        refusal or expiry unwinds what the previous phase acquired.  See
        :mod:`repro.service.shard` for why the committed attach point is
        a local sample (the hint is a liveness precondition, not an
        edge: DEX drops the adversarial attachment edge after healing,
        Algorithm 4.2 line 3)."""
        rec = _trace.current()
        if not rec.enabled:
            return await self._handoff_impl(
                node, hint, owner, hint_owner, deadline_ms, None
            )
        root = rec.start(
            "router.request",
            kind="join",
            node=node,
            shard=owner,
            handoff=True,
        )
        try:
            ack = await self._handoff_impl(
                node, hint, owner, hint_owner, deadline_ms, root
            )
            root.set(ok=ack.ok, reason=ack.reason)
            return ack
        finally:
            rec.finish(root)

    async def _handoff_phase(
        self,
        root: "_trace.Span | None",
        phase: str,
        shard: int,
        op: str,
        **args: Any,
    ) -> dict | None:
        """One traced handoff control leg: a ``router.handoff.<phase>``
        span (explicit parentage -- async code never uses the ambient
        stack) whose ids travel to the shard in ``args['trace']``."""
        rec = _trace.current()
        if root is None or not rec.enabled:
            return await self._control(shard, op, **args)
        sp = rec.start(
            f"router.handoff.{phase}",
            trace_id=root.trace_id,
            parent_id=root.span_id,
            shard=shard,
        )
        args["trace"] = (root.trace_id, sp.span_id)
        try:
            return await self._control(shard, op, **args)
        finally:
            rec.finish(sp)

    async def _handoff_impl(
        self,
        node: NodeId,
        hint: NodeId,
        owner: int,
        hint_owner: int,
        deadline_ms: float | None,
        root: "_trace.Span | None",
    ) -> Ack:
        self.handoffs_attempted += 1
        started_at = self._clock()
        deadline_at = (
            started_at + deadline_ms / 1e3 if deadline_ms is not None else None
        )
        rid = next(self._rids)
        reserve = await self._handoff_phase(
            root,
            "reserve",
            owner,
            "reserve",
            rid=rid,
            node=node,
            ttl_s=self.handoff_ttl_s,
            deadline_at=self._phase_deadline(deadline_at),
        )
        if reserve is None:
            if self._handoff_expired(deadline_at):
                # the reserve may have landed server-side after all;
                # fire-and-forget the unwind (the TTL backstops it)
                self._control(owner, "release", rid=rid, node=node)
                return self._expire_handoff(node, started_at)
            self.handoffs_rejected += 1
            return self._door_ack("join", node, f"shard {owner} unavailable")
        if not reserve["ok"]:
            self.handoffs_rejected += 1
            return self._door_ack("join", node, reserve["reason"])
        if self._handoff_expired(deadline_at):
            await self._control(owner, "release", rid=rid, node=node)
            return self._expire_handoff(node, started_at)
        pin = await self._handoff_phase(
            root,
            "pin",
            hint_owner,
            "pin",
            rid=rid,
            node=hint,
            ttl_s=self.handoff_ttl_s,
            deadline_at=self._phase_deadline(deadline_at),
        )
        if pin is None or not pin["ok"]:
            await self._control(owner, "release", rid=rid, node=node)
            if pin is None and self._handoff_expired(deadline_at):
                return self._expire_handoff(node, started_at)
            self.handoffs_rejected += 1
            reason = (
                pin["reason"]
                if pin is not None
                else f"shard {hint_owner} unavailable"
            )
            return self._door_ack("join", node, reason)
        if self._handoff_expired(deadline_at):
            await self._control(owner, "release", rid=rid, node=node)
            await self._control(hint_owner, "unpin", rid=rid, node=hint)
            return self._expire_handoff(node, started_at)
        remaining_ms = (
            max(0.0, (deadline_at - self._clock()) * 1e3)
            if deadline_at is not None
            else None
        )
        ack = await self._submit(
            owner,
            "join",
            node,
            None,
            remaining_ms,
            rid=rid,
            commit=True,
            parent=root,
        )
        await self._control(hint_owner, "unpin", rid=rid, node=hint)
        if ack.ok:
            self.handoffs_committed += 1
        elif ack.reason == DEADLINE_REASON:
            self.handoffs_expired += 1
        else:
            self.handoffs_rejected += 1
        return ack

    def _handoff_expired(self, deadline_at: float | None) -> bool:
        return deadline_at is not None and self._clock() >= deadline_at

    def _phase_deadline(self, deadline_at: float | None) -> float:
        """The answer bound of one handoff phase: the handoff TTL,
        tightened to the client's remaining budget when that is
        sooner."""
        ttl_at = self._clock() + self.handoff_ttl_s
        return ttl_at if deadline_at is None else min(ttl_at, deadline_at)

    def _expire_handoff(self, node: NodeId, started_at: float) -> Ack:
        self.handoffs_expired += 1
        self.metrics.record_timeout()
        latency = self._clock() - started_at
        self.metrics.record_ack(latency, ok=False)
        return Ack(False, "join", node, DEADLINE_REASON, latency, 0)

    def _control(
        self,
        shard: int,
        op: str,
        *,
        deadline_at: float | None = None,
        **args: Any,
    ) -> asyncio.Future:
        """Send one control verb; resolves with the reply dict, or
        ``None`` when the shard is (or goes) down *or never answers* --
        control callers always get an answer.  The default deadline is
        the handoff TTL for handoff phases (a later reply refers to
        server-side state that has already expired) and
        ``ctl_timeout_s`` for operator verbs; pass ``deadline_at`` to
        tighten it (e.g. to a client's remaining budget)."""
        future = self._loop.create_future()
        if not self.shard_is_live(shard):
            future.set_result(None)
            return future
        if deadline_at is None:
            budget = (
                self.handoff_ttl_s
                if op in _HANDOFF_VERBS
                else self.ctl_timeout_s
            )
            deadline_at = self._clock() + budget
        rid = args.get("rid")
        if rid is None:
            rid = next(self._rids)
            args["rid"] = rid
        self._pending_ctl[rid] = _PendingCtl(future, shard, deadline_at)
        self._flush_outbox(shard)  # keep request/control ordering
        try:
            self.handles[shard].send((MSG_CONTROL, (op, args)))
        except (BrokenPipeError, OSError):
            self._pending_ctl.pop(rid, None)
            self._mark_down(shard, "pipe closed")
            if not future.done():
                future.set_result(None)
        return future

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    async def reset_metrics(self) -> None:
        """Re-anchor the router's and every live shard's elapsed/window
        clocks at *now*.  Benchmarks call this after a warmup phase so
        steady-state events/s excludes cold-cache CSR rebuilds."""
        waits = [
            self._control(index, "reset-metrics")
            for index in self._live_shards()
        ]
        for wait in waits:
            await wait
        self.metrics.reset()

    def publish_registry(self):
        """Sync router-side counters -- end-to-end service metrics, the
        handoff ledger, rid bookkeeping -- into the registry and return
        it."""
        registry = self.metrics.publish_registry()
        for name, value in self.handoff_stats().items():
            registry.gauge(
                f"dex.handoffs.{name}", f"two-phase handoff ledger: {name}"
            ).set(value)
        registry.gauge(
            "dex.router.pending_rids", "rid-correlated requests in flight"
        ).set(len(self._pending))
        registry.gauge(
            "dex.router.pending_ctl", "control verbs awaiting replies"
        ).set(len(self._pending_ctl))
        registry.gauge(
            "dex.router.down_shards", "shards out of rotation"
        ).set(len(self._down))
        return registry

    def handoff_stats(self) -> dict:
        return {
            "attempted": self.handoffs_attempted,
            "committed": self.handoffs_committed,
            "rejected": self.handoffs_rejected,
            "expired": self.handoffs_expired,
            "in_flight": self.handoffs_attempted
            - self.handoffs_committed
            - self.handoffs_rejected
            - self.handoffs_expired,
            "shard_failures": self.shard_failures,
        }

    async def stats(self) -> dict:
        """Router end-to-end snapshot + per-shard worker snapshots +
        the cross-shard rollup (counters summed, quantiles upper-bounded
        by the worst shard)."""
        per_shard = []
        for index in self._live_shards():
            reply = await self._control(index, "stats")
            if reply is not None and reply.get("ok"):
                per_shard.append(reply["stats"])
        return {
            "router": self.metrics.snapshot(),
            "per_shard": per_shard,
            "rollup": aggregate_snapshots(per_shard) if per_shard else None,
            "handoffs": self.handoff_stats(),
            "down_shards": dict(self._down),
        }

    async def cluster_audit(self, include_nodes: bool = True) -> dict:
        """The differential acceptance check, cluster-wide: every live
        shard passes its local I1-I8 + coordinator oracle, every live id
        is inside its owner's region (hence owned by *exactly one*
        shard), node sets are pairwise disjoint, no reserved id is live
        anywhere, and the handoff ledger balances (nothing duplicated,
        nothing lost)."""
        errors: list[str] = []
        rows = []
        for index in self._live_shards():
            reply = await self._control(
                index, "audit", include_nodes=include_nodes
            )
            if reply is None or not reply.get("ok"):
                errors.append(f"shard {index} unreachable during audit")
                continue
            rows.append(reply["audit"])
        for row in rows:
            if not row["invariants_ok"]:
                errors.append(f"shard {row['shard']}: {row['errors']}")
        if include_nodes:
            seen: dict[NodeId, int] = {}
            for row in rows:
                for u in row.get("nodes", []):
                    if u in seen:
                        errors.append(
                            f"id {u} owned by both shard {seen[u]} "
                            f"and shard {row['shard']}"
                        )
                    seen[u] = row["shard"]
                    if self.shard_map.owner(u) != row["shard"]:
                        errors.append(
                            f"id {u} lives on shard {row['shard']} but is "
                            f"owned by shard {self.shard_map.owner(u)}"
                        )
                for r in row.get("reservations", []):
                    if r in seen and seen[r] != row["shard"]:
                        errors.append(
                            f"reserved id {r} is already live on shard {seen[r]}"
                        )
        ledger = self.handoff_stats()
        if ledger["in_flight"] < 0:
            errors.append(f"handoff ledger overdrawn: {ledger}")
        return {
            "ok": not errors,
            "errors": errors,
            "shards": rows,
            "total_nodes": sum(row["size"] for row in rows),
            "handoffs": ledger,
        }


class _ClusterView:
    """The ``gateway.net``-shaped membership view the load generators
    sample from: bootstrap ids absorbed at start, then maintained from
    acks.  Approximate by design (the shards own the truth); the
    generators only need a plausible victim/hint population."""

    def __init__(self) -> None:
        self._ids: set[NodeId] = set()

    def absorb(self, ids: Iterable[NodeId]) -> None:
        self._ids.update(ids)

    def add(self, node: NodeId) -> None:
        self._ids.add(node)

    def discard(self, node: NodeId) -> None:
        self._ids.discard(node)

    def nodes(self) -> list[NodeId]:
        return sorted(self._ids)

    @property
    def size(self) -> int:
        return len(self._ids)


def make_worker_cfgs(
    total_n: int,
    shards: int,
    *,
    seed: int = 0,
    max_batch: int = 64,
    window_ms: float = 2.0,
    checkpoint_root: str | Path | None = None,
    checkpoint_every: int = 32,
    checkpoint_keep: int = 3,
    config_overrides: dict | None = None,
) -> list[dict]:
    """Split ``total_n`` bootstrap nodes across ``shards`` worker
    configs (remainder to the low shards), each with its own seed
    stream, id region and checkpoint directory."""
    if shards < 1:
        raise ShardError(f"need at least one shard, got {shards}")
    base, rem = divmod(total_n, shards)
    if base + (1 if rem else 0) < 3 and base < 3:
        raise ShardError(
            f"{total_n} nodes over {shards} shards leaves fewer than the "
            "3-node minimum per shard"
        )
    cfgs = []
    for index in range(shards):
        n_local = base + (1 if index < rem else 0)
        if n_local < 3:
            raise ShardError(
                f"{total_n} nodes over {shards} shards leaves shard {index} "
                f"with {n_local} < 3 nodes"
            )
        cfgs.append(
            {
                "index": index,
                "shards": shards,
                "n_local": n_local,
                "seed": seed + 1000 * index,
                "max_batch": max_batch,
                "window_ms": window_ms,
                "checkpoint_dir": (
                    str(Path(checkpoint_root) / f"shard-{index}")
                    if checkpoint_root is not None
                    else None
                ),
                "checkpoint_every": checkpoint_every,
                "checkpoint_keep": checkpoint_keep,
                "config_overrides": config_overrides or {},
            }
        )
    return cfgs


async def start_cluster(
    total_n: int,
    shards: int,
    *,
    seed: int = 0,
    max_batch: int = 64,
    window_ms: float = 2.0,
    checkpoint_root: str | Path | None = None,
    checkpoint_every: int = 32,
    deadline_ms: float | None = None,
    handoff_ttl_s: float = 2.0,
    config_overrides: dict | None = None,
) -> ShardRouter:
    """Spawn ``shards`` worker processes covering ``total_n`` bootstrap
    nodes and return a started router over them."""
    cfgs = make_worker_cfgs(
        total_n,
        shards,
        seed=seed,
        max_batch=max_batch,
        window_ms=window_ms,
        checkpoint_root=checkpoint_root,
        checkpoint_every=checkpoint_every,
        config_overrides=config_overrides,
    )
    handles = [ProcessShardHandle(cfg["index"], cfg) for cfg in cfgs]
    router = ShardRouter(
        handles,
        shard_map=ShardMap(shards),
        cfgs=cfgs,
        deadline_ms=deadline_ms,
        handoff_ttl_s=handoff_ttl_s,
    )
    await router.start()
    return router
