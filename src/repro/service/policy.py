"""Admission/batching policies: closed-loop overload control for the
membership gateway.

PR 5's backpressure is a fixed-size queue with reject-at-the-door and a
static ``batch_window_ms`` -- under the adversarial regime of Xheal
(repeated attack faster than repair, arXiv:1104.0882) that degrades as
*unbounded ack latency*: the queue stays pinned at its limit and every
admitted request waits a full queue-drain behind it.  The policies here
make both knobs adaptive, and turn saturation into **controlled
shedding** with bounded latency for the requests that are served:

* :class:`FixedPolicy` -- PR 5 behaviour, the baseline every frontier
  sweep compares against.
* :class:`AdaptiveWindowPolicy` -- widens ``batch_window_ms`` as queue
  depth / heal utilization grow (bigger waves amortize per-flush
  overhead when backlogged) and narrows it toward a floor when idle
  (a lone request shouldn't wait a saturation-tuned window).
* :class:`ShedOldestPolicy` -- drops the *oldest* queued requests with a
  rejected :class:`~repro.service.gateway.Ack` whenever depth crosses a
  high-water mark.  Oldest-first is deliberate: under sustained
  overload the oldest request has already waited longest and is the
  most likely to be past its caller's patience; shedding it bounds the
  queueing delay of everything still admitted to
  ``high_water / heal_rate``.
* :class:`DegradeToRejectPolicy` -- flips to at-the-door rejection once
  saturation is *sustained* (depth above high water for
  ``sustain_flushes`` consecutive flushes) and recovers when the queue
  drains below low water.  Requests already queued still heal; only
  new arrivals are refused while degraded.

The gateway consults its policy at four points, all synchronous and on
the event loop (policies are per-gateway state, never shared):

* ``admit(depth)`` at the door, *in addition to* the hard
  ``queue_limit`` (a policy can only be stricter, never admit past the
  limit);
* ``window_s()`` before each batch-window wait;
* ``shed_count(depth)`` after every enqueue and before every flush --
  how many of the oldest queued requests to answer-and-drop right now;
* ``observe_flush(...)`` after every flush, with the post-flush queue
  depth, the flush size, the heal wall-clock and the elapsed interval
  since the previous flush -- the closed-loop feedback input.

Per-request deadlines are orthogonal to the policy and live in the
gateway itself (:class:`~repro.service.gateway.MembershipGateway`'s
``deadline_ms``): a queued request whose deadline passes is answered
with a rejected ack, never healed late and never left hanging.
"""

from __future__ import annotations

from repro.errors import PolicyError


class AdmissionPolicy:
    """Base policy: admit while the queue has room, fixed window, no
    shedding.  Subclasses override the hooks they care about and keep
    per-gateway mutable state (a policy instance must not be shared
    between gateways -- :func:`make_policy` builds a fresh one from a
    name for exactly this reason)."""

    name = "fixed"

    def __init__(self) -> None:
        self.base_window_s = 0.0
        self.max_batch = 1
        self.queue_limit = 1

    def bind(self, *, base_window_s: float, max_batch: int, queue_limit: int) -> None:
        """Called once by the owning gateway with its static tuning."""
        self.base_window_s = base_window_s
        self.max_batch = max_batch
        self.queue_limit = queue_limit

    # ------------------------------------------------------------------
    # the four hooks
    # ------------------------------------------------------------------
    def admit(self, depth: int) -> bool:
        """Whether a request arriving at queue depth ``depth`` may
        enqueue.  The gateway enforces ``depth < queue_limit`` on top of
        this, so a policy can only tighten admission."""
        return depth < self.queue_limit

    def window_s(self) -> float:
        """The batch window to use for the next collect wait."""
        return self.base_window_s

    def shed_count(self, depth: int) -> int:
        """How many of the *oldest* queued requests to shed right now."""
        return 0

    def observe_flush(
        self, *, depth: int, batch_size: int, heal_s: float, interval_s: float
    ) -> None:
        """Closed-loop feedback after every flush: ``depth`` is the
        post-flush queue depth, ``interval_s`` the wall-clock since the
        previous flush ended (so ``heal_s / interval_s`` is the heal
        utilization of that interval)."""

    def describe(self) -> dict:
        """Small JSON-able state summary for benchmark rows."""
        return {"policy": self.name}


class FixedPolicy(AdmissionPolicy):
    """PR 5 behaviour: static window, reject-at-the-door only when the
    queue is full.  The frontier baseline."""

    name = "fixed"


class AdaptiveWindowPolicy(AdmissionPolicy):
    """Scale the batch window from observed queue depth and heal
    utilization.

    The window only matters while the gatherable batch is *smaller*
    than ``max_batch`` (a full batch flushes immediately), so the
    adaptation targets the two regimes where a static window is wrong:
    a busy-but-not-saturated gateway wants a *wider* window (fill the
    wave, amortize per-flush overhead), an idle one wants a *narrower*
    window (a lone request should not wait a saturation-tuned 2 ms).
    The scale moves multiplicatively per flush and is clamped to
    ``[floor_scale, cap_scale]`` times the configured base window.
    """

    name = "adaptive-window"

    def __init__(
        self,
        *,
        widen: float = 1.5,
        narrow: float = 0.6,
        cap_scale: float = 8.0,
        floor_scale: float = 0.125,
        high_utilization: float = 0.75,
        low_utilization: float = 0.25,
    ) -> None:
        super().__init__()
        if not widen > 1.0:
            raise PolicyError(f"widen must be > 1, got {widen}")
        if not 0.0 < narrow < 1.0:
            raise PolicyError(f"narrow must be in (0, 1), got {narrow}")
        if not floor_scale <= 1.0 <= cap_scale:
            raise PolicyError(
                f"need floor_scale <= 1 <= cap_scale, got "
                f"[{floor_scale}, {cap_scale}]"
            )
        self.widen = widen
        self.narrow = narrow
        self.cap_scale = cap_scale
        self.floor_scale = floor_scale
        self.high_utilization = high_utilization
        self.low_utilization = low_utilization
        self._scale = 1.0

    def window_s(self) -> float:
        return self.base_window_s * self._scale

    def observe_flush(
        self, *, depth: int, batch_size: int, heal_s: float, interval_s: float
    ) -> None:
        utilization = heal_s / interval_s if interval_s > 0 else 1.0
        backlogged = depth >= max(1, self.max_batch // 2)
        idle = depth <= max(1, self.max_batch // 8)
        if backlogged or utilization >= self.high_utilization:
            self._scale = min(self._scale * self.widen, self.cap_scale)
        elif idle and utilization <= self.low_utilization:
            self._scale = max(self._scale * self.narrow, self.floor_scale)

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "window_scale": round(self._scale, 4),
            "window_ms": round(self.window_s() * 1e3, 4),
        }


class ShedOldestPolicy(AdmissionPolicy):
    """Bound queueing delay by dropping the oldest queued requests once
    depth crosses ``high_water`` (default ``queue_limit / 8``, never
    below one full batch).  Every shed request is *answered* with a
    rejected ack -- controlled shedding, not silent dropping -- and the
    survivors' queueing delay is bounded by ``high_water`` service
    times instead of ``queue_limit``."""

    name = "shed-oldest"

    def __init__(
        self,
        *,
        high_water: int | None = None,
        high_water_fraction: float = 0.125,
    ) -> None:
        super().__init__()
        if high_water is not None and high_water < 1:
            raise PolicyError(f"high_water must be >= 1, got {high_water}")
        if not 0.0 < high_water_fraction <= 1.0:
            raise PolicyError(
                f"high_water_fraction must be in (0, 1], got {high_water_fraction}"
            )
        self._explicit_high_water = high_water
        self.high_water_fraction = high_water_fraction
        self.high_water = high_water or 1
        self.shed_total = 0

    def bind(self, *, base_window_s: float, max_batch: int, queue_limit: int) -> None:
        super().bind(
            base_window_s=base_window_s,
            max_batch=max_batch,
            queue_limit=queue_limit,
        )
        if self._explicit_high_water is not None:
            self.high_water = min(self._explicit_high_water, queue_limit)
        else:
            self.high_water = min(
                queue_limit,
                max(max_batch, int(queue_limit * self.high_water_fraction), 1),
            )

    def shed_count(self, depth: int) -> int:
        excess = depth - self.high_water
        if excess > 0:
            self.shed_total += excess
            return excess
        return 0

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "high_water": self.high_water,
            "shed_total": self.shed_total,
        }


class DegradeToRejectPolicy(AdmissionPolicy):
    """Flip to at-the-door rejection under *sustained* saturation.

    A transient burst (depth spikes once, drains next flush) must not
    trip the breaker, so degradation requires depth at or above
    ``high_water`` for ``sustain_flushes`` consecutive flush
    observations.  While degraded, every new arrival is answered with a
    door rejection (queued requests still heal); the first flush that
    observes depth at or below ``low_water`` closes the episode and
    admission recovers.  ``flips`` counts degrade episodes for the
    benchmark row."""

    name = "degrade-to-reject"

    def __init__(
        self,
        *,
        high_water_fraction: float = 0.75,
        low_water_fraction: float = 0.25,
        sustain_flushes: int = 3,
    ) -> None:
        super().__init__()
        if not 0.0 < low_water_fraction < high_water_fraction <= 1.0:
            raise PolicyError(
                "need 0 < low_water_fraction < high_water_fraction <= 1, got "
                f"[{low_water_fraction}, {high_water_fraction}]"
            )
        if sustain_flushes < 1:
            raise PolicyError(f"sustain_flushes must be >= 1, got {sustain_flushes}")
        self.high_water_fraction = high_water_fraction
        self.low_water_fraction = low_water_fraction
        self.sustain_flushes = sustain_flushes
        self.high_water = 1
        self.low_water = 0
        self.degraded = False
        self.flips = 0
        self._sustained = 0

    def bind(self, *, base_window_s: float, max_batch: int, queue_limit: int) -> None:
        super().bind(
            base_window_s=base_window_s,
            max_batch=max_batch,
            queue_limit=queue_limit,
        )
        self.high_water = max(1, int(queue_limit * self.high_water_fraction))
        self.low_water = int(queue_limit * self.low_water_fraction)

    def admit(self, depth: int) -> bool:
        return not self.degraded and depth < self.queue_limit

    def observe_flush(
        self, *, depth: int, batch_size: int, heal_s: float, interval_s: float
    ) -> None:
        if depth >= self.high_water:
            self._sustained += 1
            if not self.degraded and self._sustained >= self.sustain_flushes:
                self.degraded = True
                self.flips += 1
        elif depth <= self.low_water:
            self._sustained = 0
            self.degraded = False
        elif not self.degraded:
            self._sustained = 0

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "degraded": self.degraded,
            "flips": self.flips,
            "high_water": self.high_water,
            "low_water": self.low_water,
        }


#: name -> class; the CLI's ``--policy`` choices
POLICIES: dict[str, type[AdmissionPolicy]] = {
    FixedPolicy.name: FixedPolicy,
    AdaptiveWindowPolicy.name: AdaptiveWindowPolicy,
    ShedOldestPolicy.name: ShedOldestPolicy,
    DegradeToRejectPolicy.name: DegradeToRejectPolicy,
}


def make_policy(spec: "str | AdmissionPolicy") -> AdmissionPolicy:
    """A fresh policy instance from a registry name (policies are
    stateful, so a name always builds a new one), or the given instance
    verbatim (caller owns not sharing it between gateways)."""
    if isinstance(spec, AdmissionPolicy):
        return spec
    try:
        return POLICIES[spec]()
    except KeyError:
        raise PolicyError(
            f"unknown admission policy {spec!r}; known: {sorted(POLICIES)}"
        ) from None
