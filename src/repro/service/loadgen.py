"""Client-side load generators for the membership gateway.

Three traffic shapes, all driving real concurrent clients (one
coroutine per in-flight request) against a
:class:`~repro.service.gateway.MembershipGateway`:

* :func:`poisson_load` -- **open loop**: arrivals follow an exponential
  inter-arrival clock at ``rate_hz`` regardless of how fast the gateway
  answers, the standard model for independent users.  Ack latency under
  an open loop is the honest number -- a slow gateway builds queue and
  the percentiles show it.
* :func:`flash_crowd_load` -- a ``surge`` of simultaneous joins at t=0
  (the service-layer twin of the `flash-crowd` campaign scenario),
  followed by open-loop mixed churn.
* :func:`saturating_load` -- **closed loop**: ``clients`` workers each
  keep exactly one request in flight, back to back.  This measures
  sustained capacity (events/sec at full pressure) -- the number the
  soak benchmark compares micro-batched vs. per-request gateways on.

Every generator takes an optional :class:`RetryPolicy`: real clients do
not give up on the first backpressure rejection, they back off and try
again, and a shedding server only sees its true offered load when the
fleet models that.  Retries use capped jittered exponential backoff and
fire only on *load-related* rejections (backpressure, degraded
admission, shed) -- an engine rejection ("stale attach hint", "victim
would disconnect") is a fact about the request, not about load, and
retrying it would just repeat the answer.

:class:`LoadStats` reports **goodput** (healed requests) separately
from raw completion throughput: under saturation most completions may
be door rejections answered in microseconds, so counting them as
"sustained events/s" would overstate served load by the shed rate.

Leave targets come from a shared :class:`Population` tracking ids the
generator believes are alive (bootstrap members plus its own healed
joins).  The view is deliberately optimistic -- concurrent leaves race,
and a stale victim exercises exactly the per-request rejection path the
partial-batch engine exists for.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.gateway import Ack, MembershipGateway

#: rejection-reason prefixes a retrying client treats as transient
#: load shedding (worth backing off and retrying) rather than a verdict
#: about the request itself
RETRYABLE_PREFIXES = ("backpressure", "shed")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped jittered exponential backoff for load-related rejections.

    Attempt ``k`` (1-based) sleeps ``min(base_ms * 2**(k-1), cap_ms)``
    scaled by a uniform jitter in ``[1 - jitter, 1]`` -- full
    synchronized retry waves are exactly the thundering herd a shedding
    server is trying to spread out."""

    max_retries: int = 4
    base_ms: float = 2.0
    cap_ms: float = 50.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_ms <= 0 or self.cap_ms < self.base_ms:
            raise ValueError(
                f"need 0 < base_ms <= cap_ms, got [{self.base_ms}, {self.cap_ms}]"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        raw_ms = min(self.base_ms * 2 ** (attempt - 1), self.cap_ms)
        return raw_ms * (1.0 - self.jitter * rng.random()) / 1e3

    @staticmethod
    def retryable(reason: str | None) -> bool:
        return reason is not None and reason.startswith(RETRYABLE_PREFIXES)


@dataclass
class LoadStats:
    """What one generator run offered and what came back."""

    offered: int = 0
    completed: int = 0
    #: healed requests -- the goodput numerator (a completion can also
    #: be a rejection answered at the door in microseconds)
    ok: int = 0
    rejected: int = 0
    backpressure: int = 0
    shed: int = 0
    deadline_timeouts: int = 0
    #: retry attempts made by clients (not counted in ``offered``: a
    #: retried request is the same logical request)
    retries: int = 0
    #: wall-clock of the generator run, set once on return
    elapsed_s: float = 0.0
    #: rejection reason -> count (backpressure included)
    reasons: dict[str, int] = field(default_factory=dict)

    def record(self, ack: "Ack") -> None:
        self.completed += 1
        if ack.ok:
            self.ok += 1
            return
        self.rejected += 1
        reason = ack.reason or "unknown"
        self.reasons[reason] = self.reasons.get(reason, 0) + 1
        if reason.startswith("backpressure"):
            self.backpressure += 1
        elif reason.startswith("shed"):
            self.shed += 1
        elif reason.startswith("deadline"):
            self.deadline_timeouts += 1

    def merge(self, other: "LoadStats") -> None:
        self.offered += other.offered
        self.completed += other.completed
        self.ok += other.ok
        self.rejected += other.rejected
        self.backpressure += other.backpressure
        self.shed += other.shed
        self.deadline_timeouts += other.deadline_timeouts
        self.retries += other.retries
        for reason, count in other.reasons.items():
            self.reasons[reason] = self.reasons.get(reason, 0) + count

    @property
    def completed_per_s(self) -> float:
        """Raw completion throughput: every answered request per second,
        door rejections included."""
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def goodput_per_s(self) -> float:
        """Healed requests per second -- the served-load number."""
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0


class Population:
    """The generator's optimistic view of live node ids: uniform victim
    sampling in O(1) via swap-remove over a list + index map."""

    def __init__(self, ids: Iterable[NodeId], rng: random.Random) -> None:
        self._ids = list(ids)
        self._index = {node: i for i, node in enumerate(self._ids)}
        self._rng = rng

    def __len__(self) -> int:
        return len(self._ids)

    def sample(self) -> NodeId | None:
        if not self._ids:
            return None
        return self._ids[self._rng.randrange(len(self._ids))]

    def add(self, node: NodeId | None) -> None:
        if node is not None and node not in self._index:
            self._index[node] = len(self._ids)
            self._ids.append(node)

    def discard(self, node: NodeId) -> None:
        i = self._index.pop(node, None)
        if i is None:
            return
        last = self._ids.pop()
        if i < len(self._ids):
            self._ids[i] = last
            self._index[last] = i


async def _client(
    gateway: "MembershipGateway",
    kind: str,
    victim: NodeId | None,
    population: Population,
    stats: LoadStats,
    retry: RetryPolicy | None = None,
    rng: random.Random | None = None,
) -> None:
    attempt = 0
    while True:
        if kind == "join":
            ack = await gateway.join()
            if ack.ok:
                population.add(ack.node)
        else:
            ack = await gateway.leave(victim)
            if ack.ok:
                population.discard(victim)
        if (
            ack.ok
            or retry is None
            or attempt >= retry.max_retries
            or not RetryPolicy.retryable(ack.reason)
        ):
            stats.record(ack)
            return
        attempt += 1
        stats.retries += 1
        gateway.metrics.record_retry()
        await asyncio.sleep(retry.backoff_s(attempt, rng or random))


def _pick(
    rng: random.Random, join_fraction: float, population: Population
) -> tuple[str, object]:
    if rng.random() < join_fraction or not len(population):
        return "join", None
    return "leave", population.sample()


async def poisson_load(
    gateway: "MembershipGateway",
    *,
    rate_hz: float,
    duration_s: float,
    join_fraction: float = 0.6,
    seed: int = 0,
    retry: RetryPolicy | None = None,
) -> LoadStats:
    """Open-loop Poisson arrivals at ``rate_hz`` for ``duration_s``
    seconds; returns the aggregated :class:`LoadStats` once every
    spawned client resolved.

    The arrival clock is absolute: the loop sleeps until the next
    scheduled arrival instant and then spawns *every* arrival already
    due, so the offered count tracks ``rate_hz * duration_s`` even when
    the event loop lags under load -- an open-loop generator whose
    offered rate silently sagged with gateway pressure would be a
    closed loop in disguise."""
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    rng = random.Random(seed)
    stats = LoadStats()
    population = Population(gateway.net.nodes(), rng)
    loop = asyncio.get_running_loop()
    started = loop.time()
    deadline = started + duration_s
    clients: list[asyncio.Task] = []

    def spawn() -> None:
        kind, victim = _pick(rng, join_fraction, population)
        stats.offered += 1
        clients.append(
            asyncio.ensure_future(
                _client(gateway, kind, victim, population, stats, retry, rng)
            )
        )

    next_at = started + rng.expovariate(rate_hz)
    while next_at < deadline:
        delay = next_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        else:
            # Lagging behind the arrival clock: yield so the batcher
            # and resolving clients run between spawn bursts.
            await asyncio.sleep(0)
        now = loop.time()
        while next_at < deadline and next_at <= now:
            spawn()
            next_at += rng.expovariate(rate_hz)
    if clients:
        await asyncio.gather(*clients)
    stats.elapsed_s = loop.time() - started
    return stats


async def flash_crowd_load(
    gateway: "MembershipGateway",
    *,
    surge: int,
    rate_hz: float,
    duration_s: float,
    join_fraction: float = 0.5,
    seed: int = 0,
    retry: RetryPolicy | None = None,
) -> LoadStats:
    """A ``surge`` of simultaneous join requests (all in flight before
    the first flush can complete), then open-loop mixed churn for the
    remaining ``duration_s``."""
    rng = random.Random(seed)
    stats = LoadStats()
    population = Population(gateway.net.nodes(), rng)
    loop = asyncio.get_running_loop()
    started = loop.time()
    surge_clients = [
        asyncio.ensure_future(
            _client(gateway, "join", None, population, stats, retry, rng)
        )
        for _ in range(surge)
    ]
    stats.offered += surge
    steady = await poisson_load(
        gateway,
        rate_hz=rate_hz,
        duration_s=duration_s,
        join_fraction=join_fraction,
        seed=seed + 1,
        retry=retry,
    )
    if surge_clients:
        await asyncio.gather(*surge_clients)
    stats.merge(steady)
    stats.elapsed_s = loop.time() - started
    return stats


async def saturating_load(
    gateway: "MembershipGateway",
    *,
    duration_s: float,
    clients: int = 256,
    join_fraction: float = 0.5,
    seed: int = 0,
    retry: RetryPolicy | None = None,
) -> LoadStats:
    """Closed-loop saturation: ``clients`` workers each keep one request
    in flight back to back until the deadline.  Sustained completed
    events/sec under this load is the gateway's capacity."""
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    rng = random.Random(seed)
    stats = LoadStats()
    population = Population(gateway.net.nodes(), rng)
    loop = asyncio.get_running_loop()
    started = loop.time()
    deadline = started + duration_s

    async def worker() -> None:
        while loop.time() < deadline:
            kind, victim = _pick(rng, join_fraction, population)
            stats.offered += 1
            await _client(gateway, kind, victim, population, stats, retry, rng)
            # A door rejection resolves its future synchronously, so a
            # worker whose every attempt is rejected would otherwise spin
            # without suspending and starve the batcher off the loop.
            await asyncio.sleep(0)

    await asyncio.gather(*(worker() for _ in range(clients)))
    stats.elapsed_s = loop.time() - started
    return stats
