"""Client-side load generators for the membership gateway.

Three traffic shapes, all driving real concurrent clients (one
coroutine per in-flight request) against a
:class:`~repro.service.gateway.MembershipGateway`:

* :func:`poisson_load` -- **open loop**: arrivals follow an exponential
  inter-arrival clock at ``rate_hz`` regardless of how fast the gateway
  answers, the standard model for independent users.  Ack latency under
  an open loop is the honest number -- a slow gateway builds queue and
  the percentiles show it.
* :func:`flash_crowd_load` -- a ``surge`` of simultaneous joins at t=0
  (the service-layer twin of the `flash-crowd` campaign scenario),
  followed by open-loop mixed churn.
* :func:`saturating_load` -- **closed loop**: ``clients`` workers each
  keep exactly one request in flight, back to back.  This measures
  sustained capacity (events/sec at full pressure) -- the number the
  soak benchmark compares micro-batched vs. per-request gateways on.

Leave targets come from a shared :class:`Population` tracking ids the
generator believes are alive (bootstrap members plus its own healed
joins).  The view is deliberately optimistic -- concurrent leaves race,
and a stale victim exercises exactly the per-request rejection path the
partial-batch engine exists for.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.gateway import Ack, MembershipGateway


@dataclass
class LoadStats:
    """What one generator run offered and what came back."""

    offered: int = 0
    completed: int = 0
    ok: int = 0
    rejected: int = 0
    backpressure: int = 0
    #: rejection reason -> count (backpressure included)
    reasons: dict[str, int] = field(default_factory=dict)

    def record(self, ack: "Ack") -> None:
        from repro.service.gateway import MembershipGateway

        self.completed += 1
        if ack.ok:
            self.ok += 1
            return
        self.rejected += 1
        reason = ack.reason or "unknown"
        self.reasons[reason] = self.reasons.get(reason, 0) + 1
        if reason == MembershipGateway.BACKPRESSURE_REASON:
            self.backpressure += 1


class Population:
    """The generator's optimistic view of live node ids: uniform victim
    sampling in O(1) via swap-remove over a list + index map."""

    def __init__(self, ids, rng: random.Random) -> None:
        self._ids = list(ids)
        self._index = {node: i for i, node in enumerate(self._ids)}
        self._rng = rng

    def __len__(self) -> int:
        return len(self._ids)

    def sample(self):
        if not self._ids:
            return None
        return self._ids[self._rng.randrange(len(self._ids))]

    def add(self, node) -> None:
        if node is not None and node not in self._index:
            self._index[node] = len(self._ids)
            self._ids.append(node)

    def discard(self, node) -> None:
        i = self._index.pop(node, None)
        if i is None:
            return
        last = self._ids.pop()
        if i < len(self._ids):
            self._ids[i] = last
            self._index[last] = i


async def _client(
    gateway: "MembershipGateway",
    kind: str,
    victim,
    population: Population,
    stats: LoadStats,
) -> None:
    if kind == "join":
        ack = await gateway.join()
        if ack.ok:
            population.add(ack.node)
    else:
        ack = await gateway.leave(victim)
        if ack.ok:
            population.discard(victim)
    stats.record(ack)


def _pick(
    rng: random.Random, join_fraction: float, population: Population
) -> tuple[str, object]:
    if rng.random() < join_fraction or not len(population):
        return "join", None
    return "leave", population.sample()


async def poisson_load(
    gateway: "MembershipGateway",
    *,
    rate_hz: float,
    duration_s: float,
    join_fraction: float = 0.6,
    seed: int = 0,
) -> LoadStats:
    """Open-loop Poisson arrivals at ``rate_hz`` for ``duration_s``
    seconds; returns the aggregated :class:`LoadStats` once every
    spawned client resolved."""
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    rng = random.Random(seed)
    stats = LoadStats()
    population = Population(gateway.net.nodes(), rng)
    loop = asyncio.get_running_loop()
    deadline = loop.time() + duration_s
    clients: list[asyncio.Task] = []
    while True:
        delay = rng.expovariate(rate_hz)
        now = loop.time()
        if now + delay >= deadline:
            break
        await asyncio.sleep(delay)
        kind, victim = _pick(rng, join_fraction, population)
        stats.offered += 1
        clients.append(
            asyncio.ensure_future(
                _client(gateway, kind, victim, population, stats)
            )
        )
    if clients:
        await asyncio.gather(*clients)
    return stats


async def flash_crowd_load(
    gateway: "MembershipGateway",
    *,
    surge: int,
    rate_hz: float,
    duration_s: float,
    join_fraction: float = 0.5,
    seed: int = 0,
) -> LoadStats:
    """A ``surge`` of simultaneous join requests (all in flight before
    the first flush can complete), then open-loop mixed churn for the
    remaining ``duration_s``."""
    rng = random.Random(seed)
    stats = LoadStats()
    population = Population(gateway.net.nodes(), rng)
    surge_clients = [
        asyncio.ensure_future(
            _client(gateway, "join", None, population, stats)
        )
        for _ in range(surge)
    ]
    stats.offered += surge
    steady = await poisson_load(
        gateway,
        rate_hz=rate_hz,
        duration_s=duration_s,
        join_fraction=join_fraction,
        seed=seed + 1,
    )
    if surge_clients:
        await asyncio.gather(*surge_clients)
    stats.offered += steady.offered
    stats.completed += steady.completed
    stats.ok += steady.ok
    stats.rejected += steady.rejected
    stats.backpressure += steady.backpressure
    for reason, count in steady.reasons.items():
        stats.reasons[reason] = stats.reasons.get(reason, 0) + count
    return stats


async def saturating_load(
    gateway: "MembershipGateway",
    *,
    duration_s: float,
    clients: int = 256,
    join_fraction: float = 0.5,
    seed: int = 0,
) -> LoadStats:
    """Closed-loop saturation: ``clients`` workers each keep one request
    in flight back to back until the deadline.  Sustained completed
    events/sec under this load is the gateway's capacity."""
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    rng = random.Random(seed)
    stats = LoadStats()
    population = Population(gateway.net.nodes(), rng)
    loop = asyncio.get_running_loop()
    deadline = loop.time() + duration_s

    async def worker() -> None:
        while loop.time() < deadline:
            kind, victim = _pick(rng, join_fraction, population)
            stats.offered += 1
            await _client(gateway, kind, victim, population, stats)

    await asyncio.gather(*(worker() for _ in range(clients)))
    return stats
