"""repro -- a full reproduction of *DEX: Self-Healing Expanders*
(Pandurangan, Robinson, Trehan; IPDPS 2014 / Distributed Computing 2016).

Quickstart::

    from repro import DexNetwork, DexConfig

    net = DexNetwork.bootstrap(64, DexConfig(seed=1))
    for _ in range(200):
        net.insert()                 # adversarial join
    report = net.delete(net.random_node())  # adversarial leave
    print(report.summary_line())
    assert net.spectral_gap() > 0.01         # always an expander
    assert net.max_degree() <= 3 * 4 * 8     # always constant degree

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.core.events import StepReport
from repro.core.multi import (
    BatchOutcome,
    BatchRejection,
    delete_batch,
    delete_batch_partial,
    insert_batch,
    insert_batch_partial,
)
from repro.dht.dht import DexDHT
from repro.virtual.pcycle import PCycle
from repro.analysis.spectral import spectral_gap, second_eigenvalue
from repro.types import Layer, RecoveryType, StepKind

__version__ = "1.0.0"

__all__ = [
    "DexNetwork",
    "DexConfig",
    "DexDHT",
    "StepReport",
    "PCycle",
    "insert_batch",
    "delete_batch",
    "spectral_gap",
    "second_eigenvalue",
    "Layer",
    "RecoveryType",
    "StepKind",
    "__version__",
]
