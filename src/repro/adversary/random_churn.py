"""Oblivious churn strategies: random joins/leaves in various mixes.

These model the baseline P2P churn the paper's related work (Law-Siu,
Gkantsidis et al., Pandurangan et al.) evaluates against; the *adaptive*
attacks live in :mod:`repro.adversary.adaptive`.
"""

from __future__ import annotations

import random

from repro.adversary.base import ChurnAction, NetworkView, pick_random_node


class RandomChurn:
    """Insert with probability ``p_insert``, else delete a random node."""

    def __init__(self, p_insert: float = 0.5, seed: int = 0, min_size: int = 8):
        if not 0.0 <= p_insert <= 1.0:
            raise ValueError(f"p_insert must be in [0, 1], got {p_insert}")
        self.p_insert = p_insert
        self.rng = random.Random(seed)
        self.min_size = min_size

    def next_action(self, view: NetworkView) -> ChurnAction:
        if view.size <= self.min_size or self.rng.random() < self.p_insert:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))


class InsertOnly:
    """Pure join workload -- drives |Spare| to the inflation trigger."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def next_action(self, view: NetworkView) -> ChurnAction:
        return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))


class DeleteOnly:
    """Pure leave workload -- drives loads up to the deflation trigger.
    Below ``min_size`` it inserts instead (the model forbids shrinking
    the network to nothing)."""

    def __init__(self, seed: int = 0, min_size: int = 8):
        self.rng = random.Random(seed)
        self.min_size = min_size

    def next_action(self, view: NetworkView) -> ChurnAction:
        if view.size <= self.min_size:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))


class OscillatingChurn:
    """Grow by ``burst`` joins, shrink by ``burst`` leaves, repeat --
    stresses repeated inflation/deflation crossings."""

    def __init__(self, burst: int = 64, seed: int = 0, min_size: int = 8):
        self.burst = burst
        self.rng = random.Random(seed)
        self.min_size = min_size
        self._phase_insert = True
        self._left = burst

    def next_action(self, view: NetworkView) -> ChurnAction:
        if self._left <= 0:
            self._phase_insert = not self._phase_insert
            self._left = self.burst
        self._left -= 1
        if not self._phase_insert and view.size <= self.min_size:
            self._phase_insert = True
            self._left = self.burst
        if self._phase_insert:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))
