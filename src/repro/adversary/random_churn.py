"""Oblivious churn strategies: random joins/leaves in various mixes.

These model the baseline P2P churn the paper's related work (Law-Siu,
Gkantsidis et al., Pandurangan et al.) evaluates against; the *adaptive*
attacks live in :mod:`repro.adversary.adaptive`.
"""

from __future__ import annotations

import random

from repro.adversary.base import (
    ChurnAction,
    NetworkView,
    draw_delete_actions,
    draw_insert_actions,
    pick_random_node,
)


class RandomChurn:
    """Insert with probability ``p_insert``, else delete a random node."""

    def __init__(self, p_insert: float = 0.5, seed: int = 0, min_size: int = 8):
        if not 0.0 <= p_insert <= 1.0:
            raise ValueError(f"p_insert must be in [0, 1], got {p_insert}")
        self.p_insert = p_insert
        self.rng = random.Random(seed)
        self.min_size = min_size

    def next_action(self, view: NetworkView) -> ChurnAction:
        if view.size <= self.min_size or self.rng.random() < self.p_insert:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))

    def next_batch(
        self, view: NetworkView, max_batch: int
    ) -> list[ChurnAction]:
        """One coin per slot (tracking the batch's own net size change so
        a delete streak cannot overshoot ``min_size``), grouped into an
        insert run and a delete run."""
        inserts = deletes = 0
        size = view.size
        for _ in range(max_batch):
            if size <= self.min_size or self.rng.random() < self.p_insert:
                inserts += 1
                size += 1
            else:
                deletes += 1
                size -= 1
        return draw_insert_actions(view, self.rng, inserts) + draw_delete_actions(
            view, self.rng, deletes
        )


class InsertOnly:
    """Pure join workload -- drives |Spare| to the inflation trigger."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def next_action(self, view: NetworkView) -> ChurnAction:
        return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))


class DeleteOnly:
    """Pure leave workload -- drives loads up to the deflation trigger.
    Below ``min_size`` it inserts instead (the model forbids shrinking
    the network to nothing)."""

    def __init__(self, seed: int = 0, min_size: int = 8):
        self.rng = random.Random(seed)
        self.min_size = min_size

    def next_action(self, view: NetworkView) -> ChurnAction:
        if view.size <= self.min_size:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))


class OscillatingChurn:
    """Grow by ``burst`` joins, shrink by ``burst`` leaves, repeat --
    stresses repeated inflation/deflation crossings."""

    def __init__(self, burst: int = 64, seed: int = 0, min_size: int = 8):
        self.burst = burst
        self.rng = random.Random(seed)
        self.min_size = min_size
        self._phase_insert = True
        self._left = burst

    def next_action(self, view: NetworkView) -> ChurnAction:
        if self._left <= 0:
            self._phase_insert = not self._phase_insert
            self._left = self.burst
        self._left -= 1
        if not self._phase_insert and view.size <= self.min_size:
            self._phase_insert = True
            self._left = self.burst
        if self._phase_insert:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))

    def next_batch(
        self, view: NetworkView, max_batch: int
    ) -> list[ChurnAction]:
        """A burst *is* a batch: emit the remainder of the current phase
        (capped at ``max_batch``), flipping phases exactly as the
        single-action stream does."""
        if self._left <= 0:
            self._phase_insert = not self._phase_insert
            self._left = self.burst
        if not self._phase_insert and view.size <= self.min_size:
            self._phase_insert = True
            self._left = self.burst
        count = min(max_batch, self._left)
        if not self._phase_insert:
            # Never schedule below min_size: the whole batch lands at once.
            count = min(count, max(view.size - self.min_size, 0))
            if count == 0:
                self._phase_insert = True
                self._left = self.burst
        if self._phase_insert:
            actions = draw_insert_actions(view, self.rng, min(max_batch, self._left))
        else:
            actions = draw_delete_actions(view, self.rng, count)
        self._left -= len(actions)
        return actions
