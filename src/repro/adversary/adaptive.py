"""Adaptive attacks: strategies that exploit full knowledge of the
current state -- the adversary class DEX is designed to survive
(Theorem 1) and against which probabilistic constructions degrade
(Section 1, Table 1).

Victim selection is O(n): the former ``max(sorted(nodes), key=...)``
idiom paid an O(n log n) sort *per action* purely for deterministic
tie-breaking; the same stream now comes from a single ``max``/``min``
over ``(score, id)`` keys (ties resolve to the smallest id, exactly the
order the sorted scan produced).
"""

from __future__ import annotations

import random

from repro.adversary.base import ChurnAction, NetworkView, pick_random_node
from repro.types import NodeId

#: Multiplier of a splitmix-style integer mix; see :func:`_keyed_pick`.
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def _keyed_pick(members, tag: int) -> NodeId:
    """Near-uniform member pick without sorting: one rng draw (``tag``)
    keys an integer mix, and the member minimizing the mixed value wins.
    O(n), independent of the container's iteration order (so stable
    across runs for a fixed seed, which a ``rng.choice(list(set))``
    never is), and a fresh tag per call re-randomizes the winner."""
    return min(members, key=lambda u: (((u ^ tag) * _MIX) & _MASK, u))


class DegreeAttack:
    """Always delete a maximum-degree node (and occasionally insert to
    keep the size up).  Against overlays without load rebalancing this
    concentrates damage; DEX's walks re-spread the load every step."""

    def __init__(self, seed: int = 0, insert_every: int = 2, min_size: int = 8):
        self.rng = random.Random(seed)
        self.insert_every = insert_every
        self.min_size = min_size
        self._tick = 0

    def next_action(self, view: NetworkView) -> ChurnAction:
        self._tick += 1
        if view.size <= self.min_size or (
            self.insert_every and self._tick % self.insert_every == 0
        ):
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        degree_of = getattr(view, "degree_of", None)
        if degree_of is None:
            victim = pick_random_node(view, self.rng)
        else:
            # Highest degree, smallest id on ties -- one O(n) pass.
            victim = max(view.nodes(), key=lambda u: (degree_of(u), -u))
        return ChurnAction("delete", node=victim)


class CoordinatorAttack:
    """Delete the coordinator (the host of vertex 0) whenever possible --
    the paper's global-knowledge strawman dies on this (Omega(n) state
    transfer, Section 3); DEX pays O(1) because neighbors replicate the
    coordinator's O(log n)-bit state."""

    #: The whole attack is "kill whoever hosts vertex 0 *now*", so a
    #: batch decided against a stale view is meaningless; the campaign
    #: driver feeds this strategy one healed step at a time.
    adaptive_within_batch = True

    def __init__(self, seed: int = 0, insert_every: int = 2, min_size: int = 8):
        self.rng = random.Random(seed)
        self.insert_every = insert_every
        self.min_size = min_size
        self._tick = 0

    def next_action(self, view: NetworkView) -> ChurnAction:
        self._tick += 1
        if view.size <= self.min_size or (
            self.insert_every and self._tick % self.insert_every == 0
        ):
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        coordinator = getattr(view, "coordinator", None)
        victim = coordinator.node if coordinator is not None else None
        if victim is None:
            victim = pick_random_node(view, self.rng)
        return ChurnAction("delete", node=victim)


class SpareDepleter:
    """Insert while deleting precisely the Spare nodes, starving the
    walk's target set as fast as possible and forcing early type-2."""

    #: Spare membership changes with every healed step; deciding a whole
    #: batch against a stale Spare snapshot would mostly miss.
    adaptive_within_batch = True

    def __init__(self, seed: int = 0, min_size: int = 8):
        self.rng = random.Random(seed)
        self.min_size = min_size
        self._toggle = False

    def next_action(self, view: NetworkView) -> ChurnAction:
        self._toggle = not self._toggle
        overlay = getattr(view, "overlay", None)
        if self._toggle or view.size <= self.min_size or overlay is None:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        spare = overlay.old.spare
        if spare:
            # O(n) keyed pick replaces sorting the Spare set every step
            # just to index it reproducibly.
            victim = _keyed_pick(spare, self.rng.getrandbits(64))
            return ChurnAction("delete", node=victim)
        return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))


class LowLoadAttack:
    """Delete the lowest-load nodes first: concentrates virtual vertices
    on the survivors, racing toward the 4*zeta bound and deflation."""

    def __init__(self, seed: int = 0, min_size: int = 8):
        self.rng = random.Random(seed)
        self.min_size = min_size

    def next_action(self, view: NetworkView) -> ChurnAction:
        if view.size <= self.min_size:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        load_of = getattr(view, "load_of", None)
        if load_of is None:
            return ChurnAction("delete", node=pick_random_node(view, self.rng))
        # Lowest load, smallest id on ties -- one O(n) pass.
        victim = min(view.nodes(), key=lambda u: (load_of(u), u))
        return ChurnAction("delete", node=victim)
