"""Adversary interface.

The paper's adversary is *adaptive*: it sees the entire network state,
the algorithm, and all past random choices, and then inserts or deletes
one node (Section 2).  A strategy here receives a :class:`NetworkView`
(full read access to the live overlay -- by design, nothing is hidden)
and returns a :class:`ChurnAction`.  The only thing the adversary does
not see is the fresh randomness the healing algorithm will draw *during*
the step it just triggered -- exactly the paper's model, and the reason
randomized rebalancing defeats it.

Section 5 extends the model to *batched* churn: the adversary submits up
to ``eps * n`` joins/leaves at once, all decided against the pre-step
state.  :class:`BatchAdversary` is that protocol (``next_batch``), and
:func:`as_batch_adversary` adapts any single-action strategy to it: the
adapter keeps calling ``next_action`` against the (unchanging) pre-step
view and closes the batch at the first action that *requires* seeing a
healed network -- a repeated delete victim, an insert re-using a
scheduled id, an over-subscribed attach point, or a change of action
kind.  Strategies whose whole point is reacting to each healed step
(e.g. the coordinator attack) declare ``adaptive_within_batch = True``
and are fed through one action at a time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import TraceExhausted
from repro.types import NodeId

#: Section 5's O(1) attach fan-out bound (mirrors
#: ``repro.core.multi.MAX_ATTACH_PER_NODE``; kept literal so the
#: adversary package does not import the healing engine).
MAX_ATTACH_PER_NODE = 4


@dataclass(frozen=True)
class ChurnAction:
    """One adversarial step."""

    kind: str  # "insert" | "delete"
    node: NodeId | None = None  # insert: optional id; delete: victim
    attach_to: NodeId | None = None  # insert only


class NetworkView(Protocol):
    """What a strategy can inspect (DexNetwork satisfies this; baseline
    overlays provide the same surface through the harness adapter)."""

    @property
    def size(self) -> int: ...

    def nodes(self): ...

    def max_degree(self) -> int: ...


class Adversary(Protocol):
    """A churn strategy."""

    def next_action(self, view: "NetworkView") -> ChurnAction: ...


@runtime_checkable
class BatchAdversary(Protocol):
    """A strategy that emits whole Section 5 batches.

    ``next_batch`` returns up to ``max_batch`` actions, all decided
    against ``view`` (the pre-step state); an empty list ends the run.
    Scripted strategies may raise :class:`~repro.errors.TraceExhausted`
    instead -- the campaign driver treats both the same way.
    """

    def next_batch(
        self, view: "NetworkView", max_batch: int
    ) -> list[ChurnAction]: ...


class SingleStepBatchAdapter:
    """Wrap a single-action :class:`Adversary` into the batch protocol.

    The batch is grown by replaying ``next_action`` against the frozen
    pre-step view, so it contains exactly the actions the strategy
    would take if the network healed nothing in between -- the Section 5
    semantics.  The batch closes early at the first action that only
    makes sense against a healed state (see module docstring).  A
    kind change or a saturated attach point is buffered and leads the
    next batch (nothing is lost); a *duplicate* -- the same delete
    victim or insert id again -- is discarded: against a frozen view a
    repeat is an artifact of the view not changing (a deterministic
    strategy re-deciding), and replaying it after the batch heals would
    target a node that no longer exists.
    """

    def __init__(self, adversary: Adversary):
        self.adversary = adversary
        self._pushback: ChurnAction | None = None
        self._exhausted = False

    def next_batch(
        self, view: NetworkView, max_batch: int
    ) -> list[ChurnAction]:
        if self._exhausted and self._pushback is None:
            return []
        if getattr(self.adversary, "adaptive_within_batch", False):
            max_batch = 1
        batch: list[ChurnAction] = []
        victims: set[NodeId] = set()
        new_ids: set[NodeId] = set()
        fanout: dict[NodeId, int] = {}
        while len(batch) < max_batch:
            if self._pushback is not None:
                action, self._pushback = self._pushback, None
            else:
                try:
                    action = self.adversary.next_action(view)
                except TraceExhausted:
                    self._exhausted = True
                    break
            if batch and self._is_duplicate(action, victims, new_ids):
                break  # discard: a frozen-view re-decision, stale once healed
            if batch and not self._compatible(action, batch[0].kind, fanout):
                self._pushback = action
                break
            batch.append(action)
            if action.kind == "delete":
                victims.add(action.node)
            else:
                if action.node is not None:
                    new_ids.add(action.node)
                if action.attach_to is not None:
                    fanout[action.attach_to] = fanout.get(action.attach_to, 0) + 1
        return batch

    @staticmethod
    def _is_duplicate(
        action: ChurnAction, victims: set[NodeId], new_ids: set[NodeId]
    ) -> bool:
        if action.kind == "delete":
            return action.node in victims
        return action.node is not None and action.node in new_ids

    @staticmethod
    def _compatible(
        action: ChurnAction, kind: str, fanout: dict[NodeId, int]
    ) -> bool:
        if action.kind != kind:
            return False
        return not (
            action.kind == "insert"
            and action.attach_to is not None
            and fanout.get(action.attach_to, 0) >= MAX_ATTACH_PER_NODE
        )


def as_batch_adversary(adversary) -> BatchAdversary:
    """Return ``adversary`` itself if it already speaks the batch
    protocol, else wrap it in :class:`SingleStepBatchAdapter`."""
    if callable(getattr(adversary, "next_batch", None)):
        return adversary
    return SingleStepBatchAdapter(adversary)


def draw_insert_actions(
    view: NetworkView, rng: random.Random, count: int
) -> list[ChurnAction]:
    """``count`` insert actions with attach points drawn uniformly,
    re-drawn so no host exceeds the Section 5 O(1) attach fan-out within
    the batch (mirrors the batch engine's validation, so a well-formed
    surge never bounces off ``insert_batch``)."""
    fanout: dict[NodeId, int] = {}
    actions: list[ChurnAction] = []
    for _ in range(count):
        host = pick_random_node(view, rng)
        attempts = 0
        while fanout.get(host, 0) >= MAX_ATTACH_PER_NODE:
            host = pick_random_node(view, rng)
            attempts += 1
            if attempts >= 8 * MAX_ATTACH_PER_NODE:
                # Tiny network saturated with attachments: emit a short
                # batch rather than spin.
                return actions
        fanout[host] = fanout.get(host, 0) + 1
        actions.append(ChurnAction("insert", attach_to=host))
    return actions


def draw_delete_actions(
    view: NetworkView, rng: random.Random, count: int
) -> list[ChurnAction]:
    """``count`` *distinct* uniformly drawn victims (the batch engine
    rejects duplicate deletions)."""
    victims: set[NodeId] = set()
    attempts = 0
    limit = 16 * max(count, 1)
    while len(victims) < count and attempts < limit:
        victims.add(pick_random_node(view, rng))
        attempts += 1
    return [ChurnAction("delete", node=u) for u in sorted(victims)]


#: ``nodes()`` containers whose iteration order is already deterministic
#: across runs and platforms (insertion order), so indexing them needs
#: no sort.
_ORDERED_NODE_CONTAINERS = (type({}.keys()), dict, list, tuple)


def pick_random_node(view: NetworkView, rng: random.Random) -> NodeId:
    """Uniform node pick.  DEX networks expose an O(1) sampler backed by
    the topology's live-node array.  Overlays whose ``nodes()`` is an
    insertion-ordered container (dict views, lists) index it directly in
    O(n) -- the former unconditional ``sorted`` paid O(n log n) for an
    order those containers already guarantee.  Unordered containers
    (e.g. the set-backed flooding/global-knowledge baselines) still sort,
    because set iteration order is an implementation detail that would
    break seed reproducibility across platforms."""
    sampler = getattr(view, "sample_node", None)
    if sampler is not None:
        return sampler(rng)
    nodes = view.nodes()
    pool = (
        list(nodes)
        if isinstance(nodes, _ORDERED_NODE_CONTAINERS)
        else sorted(nodes)
    )
    return pool[rng.randrange(len(pool))]
