"""Adversary interface.

The paper's adversary is *adaptive*: it sees the entire network state,
the algorithm, and all past random choices, and then inserts or deletes
one node (Section 2).  A strategy here receives a :class:`NetworkView`
(full read access to the live overlay -- by design, nothing is hidden)
and returns a :class:`ChurnAction`.  The only thing the adversary does
not see is the fresh randomness the healing algorithm will draw *during*
the step it just triggered -- exactly the paper's model, and the reason
randomized rebalancing defeats it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.types import NodeId


@dataclass(frozen=True)
class ChurnAction:
    """One adversarial step."""

    kind: str  # "insert" | "delete"
    node: NodeId | None = None  # insert: optional id; delete: victim
    attach_to: NodeId | None = None  # insert only


class NetworkView(Protocol):
    """What a strategy can inspect (DexNetwork satisfies this; baseline
    overlays provide the same surface through the harness adapter)."""

    @property
    def size(self) -> int: ...

    def nodes(self): ...

    def max_degree(self) -> int: ...


class Adversary(Protocol):
    """A churn strategy."""

    def next_action(self, view: "NetworkView") -> ChurnAction: ...


def pick_random_node(view: NetworkView, rng: random.Random) -> NodeId:
    """Uniform node pick.  DEX networks expose an O(1) sampler backed by
    the topology's live-node array; baseline overlays without one fall
    back to the O(n log n) sorted scan."""
    sampler = getattr(view, "sample_node", None)
    if sampler is not None:
        return sampler(rng)
    nodes = sorted(view.nodes())
    return nodes[rng.randrange(len(nodes))]
