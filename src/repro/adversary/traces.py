"""Churn traces: scripted workloads modeling real P2P dynamics.

``FlashCrowd`` models a sudden popularity spike (a burst of joins
followed by steady mixed churn); ``MassLeave`` a correlated departure
(e.g. a region going offline).  ``TraceAdversary`` replays an arbitrary
scripted list of actions, used by the batch benchmarks.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from repro.adversary.base import ChurnAction, NetworkView, pick_random_node


class FlashCrowd:
    """``surge`` joins, then mixed churn with slight insert bias."""

    def __init__(self, surge: int = 200, seed: int = 0, min_size: int = 8):
        self.surge = surge
        self.rng = random.Random(seed)
        self.min_size = min_size
        self._joined = 0

    def next_action(self, view: NetworkView) -> ChurnAction:
        if self._joined < self.surge:
            self._joined += 1
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        if view.size <= self.min_size or self.rng.random() < 0.55:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))


class MassLeave:
    """A fraction ``fraction`` of the initial population leaves back to
    back, then steady mixed churn."""

    def __init__(self, fraction: float = 0.6, seed: int = 0, min_size: int = 8):
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        self.fraction = fraction
        self.rng = random.Random(seed)
        self.min_size = min_size
        self._target: int | None = None

    def next_action(self, view: NetworkView) -> ChurnAction:
        if self._target is None:
            self._target = max(self.min_size, int(view.size * (1 - self.fraction)))
        if view.size > self._target:
            return ChurnAction("delete", node=pick_random_node(view, self.rng))
        if view.size <= self.min_size or self.rng.random() < 0.5:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))


class TraceAdversary:
    """Replays a scripted iterable of ("insert"|"delete") kinds, choosing
    concrete nodes uniformly."""

    def __init__(self, kinds: Iterable[str], seed: int = 0):
        self._kinds: Iterator[str] = iter(list(kinds))
        self.rng = random.Random(seed)

    def next_action(self, view: NetworkView) -> ChurnAction:
        kind = next(self._kinds)
        if kind == "insert":
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        if kind == "delete":
            return ChurnAction("delete", node=pick_random_node(view, self.rng))
        raise ValueError(f"unknown trace action {kind!r}")
