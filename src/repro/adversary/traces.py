"""Churn traces: scripted workloads modeling real P2P dynamics.

``FlashCrowd`` models a sudden popularity spike (a burst of joins
followed by steady mixed churn); ``MassLeave`` a correlated departure
(e.g. a region going offline).  ``TraceAdversary`` replays an arbitrary
scripted list of actions, used by the batch benchmarks.

All three speak the Section 5 batch protocol natively (``next_batch``):
a flash crowd's surge and a mass leave's departure wave *are* batches,
so the campaign driver heals them through the batch-parallel engine
instead of one token walk per node.  Exhausted scripts raise
:class:`~repro.errors.TraceExhausted` (never a bare ``StopIteration``,
which PEP 479 would turn into a ``RuntimeError`` inside generator
contexts); the runner ends the run cleanly.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from repro.adversary.base import (
    ChurnAction,
    NetworkView,
    draw_delete_actions,
    draw_insert_actions,
    pick_random_node,
)
from repro.errors import TraceExhausted


class FlashCrowd:
    """``surge`` joins, then mixed churn with slight insert bias."""

    def __init__(self, surge: int = 200, seed: int = 0, min_size: int = 8):
        self.surge = surge
        self.rng = random.Random(seed)
        self.min_size = min_size
        self._joined = 0

    def next_action(self, view: NetworkView) -> ChurnAction:
        if self._joined < self.surge:
            self._joined += 1
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        if view.size <= self.min_size or self.rng.random() < 0.55:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))

    def next_batch(
        self, view: NetworkView, max_batch: int
    ) -> list[ChurnAction]:
        """The surge arrives in whole batches; the steady phase flips
        one biased coin per slot and groups the outcomes into an
        insert run followed by a delete run (a batch is unordered in the
        Section 5 model, and same-kind runs are what the batch engine
        heals in one wave)."""
        if self._joined < self.surge:
            count = min(max_batch, self.surge - self._joined)
            actions = draw_insert_actions(view, self.rng, count)
            self._joined += len(actions)
            return actions
        inserts = deletes = 0
        size = view.size  # track the net effect of this batch's actions
        for _ in range(max_batch):
            if size <= self.min_size or self.rng.random() < 0.55:
                inserts += 1
                size += 1
            else:
                deletes += 1
                size -= 1
        return draw_insert_actions(view, self.rng, inserts) + draw_delete_actions(
            view, self.rng, deletes
        )


class MassLeave:
    """A fraction ``fraction`` of the initial population leaves back to
    back, then steady mixed churn.  The departure phase *latches*: the
    exodus is a fixed budget of deletions sized at first contact
    (``fraction`` of the initial population), and once issued it is
    spent -- steady-phase growth never re-triggers it.  (The pre-latch
    code compared the live size against the target every step, so any
    churn that pushed the size back above target re-entered the
    mass-delete phase and the documented steady phase was unreachable.)
    """

    def __init__(self, fraction: float = 0.6, seed: int = 0, min_size: int = 8):
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        self.fraction = fraction
        self.rng = random.Random(seed)
        self.min_size = min_size
        self._to_depart: int | None = None  # departure budget; 0 = latched

    def _departures_remaining(self, view: NetworkView) -> int:
        if self._to_depart is None:
            target = max(self.min_size, int(view.size * (1 - self.fraction)))
            self._to_depart = max(0, view.size - target)
        # Skipped deletions elsewhere must never let the budget push the
        # live network below min_size.
        return min(self._to_depart, max(0, view.size - self.min_size))

    def next_action(self, view: NetworkView) -> ChurnAction:
        if self._departures_remaining(view) > 0:
            self._to_depart -= 1
            return ChurnAction("delete", node=pick_random_node(view, self.rng))
        if view.size <= self.min_size or self.rng.random() < 0.5:
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        return ChurnAction("delete", node=pick_random_node(view, self.rng))

    def next_batch(
        self, view: NetworkView, max_batch: int
    ) -> list[ChurnAction]:
        remaining = self._departures_remaining(view)
        if remaining > 0:
            wave = draw_delete_actions(
                view, self.rng, min(max_batch, remaining)
            )
            self._to_depart -= len(wave)
            return wave
        # Steady phase: one coin per slot, grouped into same-kind runs by
        # the driver; sizes are tracked so a delete-heavy batch cannot
        # overshoot min_size.
        inserts = deletes = 0
        size = view.size
        for _ in range(max_batch):
            if size <= self.min_size or self.rng.random() < 0.5:
                inserts += 1
                size += 1
            else:
                deletes += 1
                size -= 1
        return draw_insert_actions(view, self.rng, inserts) + draw_delete_actions(
            view, self.rng, deletes
        )


class TraceAdversary:
    """Replays a scripted iterable of ("insert"|"delete") kinds, choosing
    concrete nodes uniformly.  Raises
    :class:`~repro.errors.TraceExhausted` when the script runs out."""

    def __init__(self, kinds: Iterable[str], seed: int = 0):
        self._kinds: Iterator[str] = iter(list(kinds))
        self.rng = random.Random(seed)

    def _next_kind(self) -> str | None:
        return next(self._kinds, None)

    def next_action(self, view: NetworkView) -> ChurnAction:
        kind = self._next_kind()
        if kind is None:
            raise TraceExhausted("scripted trace exhausted")
        if kind == "insert":
            return ChurnAction("insert", attach_to=pick_random_node(view, self.rng))
        if kind == "delete":
            return ChurnAction("delete", node=pick_random_node(view, self.rng))
        raise ValueError(f"unknown trace action {kind!r}")

    def next_batch(
        self, view: NetworkView, max_batch: int
    ) -> list[ChurnAction]:
        """Consume the maximal same-kind run (capped at ``max_batch``) so
        scripted bursts heal as bursts.  An exhausted script returns the
        empty batch -- the driver's end-of-run signal."""
        kinds: list[str] = []
        while len(kinds) < max_batch:
            kind = self._next_kind()
            if kind is None:
                break
            if kind not in ("insert", "delete"):
                raise ValueError(f"unknown trace action {kind!r}")
            if kinds and kind != kinds[0]:
                # Push the run-breaking kind back for the next batch.
                self._kinds = _chain_one(kind, self._kinds)
                break
            kinds.append(kind)
        if not kinds:
            return []
        if kinds[0] == "insert":
            return draw_insert_actions(view, self.rng, len(kinds))
        return draw_delete_actions(view, self.rng, len(kinds))


def _chain_one(head: str, rest: Iterator[str]) -> Iterator[str]:
    yield head
    yield from rest
