"""Adversaries (Section 2): adaptive strategies with full read access to
the network state, deciding which node joins or leaves at every step."""

from repro.adversary.base import (
    Adversary,
    BatchAdversary,
    ChurnAction,
    NetworkView,
    SingleStepBatchAdapter,
    as_batch_adversary,
)
from repro.adversary.random_churn import (
    RandomChurn,
    InsertOnly,
    DeleteOnly,
    OscillatingChurn,
)
from repro.adversary.adaptive import (
    DegreeAttack,
    CoordinatorAttack,
    SpareDepleter,
    LowLoadAttack,
)
from repro.adversary.traces import FlashCrowd, MassLeave, TraceAdversary

__all__ = [
    "Adversary",
    "BatchAdversary",
    "ChurnAction",
    "NetworkView",
    "SingleStepBatchAdapter",
    "as_batch_adversary",
    "RandomChurn",
    "InsertOnly",
    "DeleteOnly",
    "OscillatingChurn",
    "DegreeAttack",
    "CoordinatorAttack",
    "SpareDepleter",
    "LowLoadAttack",
    "FlashCrowd",
    "MassLeave",
    "TraceAdversary",
]
