"""Adversaries (Section 2): adaptive strategies with full read access to
the network state, deciding which node joins or leaves at every step."""

from repro.adversary.base import Adversary, ChurnAction, NetworkView
from repro.adversary.random_churn import (
    RandomChurn,
    InsertOnly,
    DeleteOnly,
    OscillatingChurn,
)
from repro.adversary.adaptive import (
    DegreeAttack,
    CoordinatorAttack,
    SpareDepleter,
    LowLoadAttack,
)
from repro.adversary.traces import FlashCrowd, MassLeave, TraceAdversary

__all__ = [
    "Adversary",
    "ChurnAction",
    "NetworkView",
    "RandomChurn",
    "InsertOnly",
    "DeleteOnly",
    "OscillatingChurn",
    "DegreeAttack",
    "CoordinatorAttack",
    "SpareDepleter",
    "LowLoadAttack",
    "FlashCrowd",
    "MassLeave",
    "TraceAdversary",
]
