"""Exception hierarchy for the DEX reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration value is out of its legal range."""


class TopologyError(ReproError):
    """An operation referenced a node or edge that does not exist, or
    attempted an illegal mutation of the real network multigraph."""


class VirtualGraphError(ReproError):
    """An operation on the virtual p-cycle was malformed (bad prime,
    vertex out of range, ...)."""


class MappingError(ReproError):
    """The virtual-to-real mapping was asked to do something inconsistent
    (move a vertex that is not mapped, unmap the last vertex of a node,
    ...)."""


class InvariantViolation(ReproError):
    """A DEX invariant (I1-I9 in DESIGN.md) failed a runtime check."""


class RecoveryError(ReproError):
    """Self-healing could not complete within configured resource bounds
    (e.g. the type-1 retry budget was exhausted while the respective set
    was still above threshold)."""


class AdversaryError(ReproError):
    """The adversary attempted an action outside the model of Section 2
    (deleting below the minimum size, disconnecting deletions in batch
    mode, attaching too many nodes to one host, ...)."""


class TraceExhausted(ReproError):
    """A scripted adversary ran out of actions.  Not a failure: the
    churn runner catches it and ends the run cleanly with the steps
    actually executed (raising it instead of leaking ``StopIteration``
    keeps PEP 479 generator contexts from turning exhaustion into a
    ``RuntimeError``)."""


class ServiceError(ReproError):
    """The membership-service gateway could not accept or complete a
    request (distinct from :class:`AdversaryError`, which signals an
    *illegal* action: service errors are operational)."""


class GatewayClosed(ServiceError):
    """A request arrived after :meth:`MembershipGateway.close` -- the
    caller raced shutdown and must not expect an outcome."""


class GatewayOverloaded(ServiceError):
    """The gateway's bounded ingestion queue is full (backpressure).
    Raised only by the ``overload="raise"`` policy; the default policy
    resolves the caller with a rejected outcome instead, so a queue-full
    request is always *answered*, never dropped."""


class PolicyError(ServiceError):
    """An admission-policy specification was invalid: an unknown policy
    name, or a policy parameter outside its legal range (e.g. a shed
    high-water mark below one, watermark fractions out of order)."""


class ShardError(ServiceError):
    """A sharded-cluster operation failed at the protocol level: an id
    outside every shard's region, a malformed control message, or a
    router driven against a shard set it was not built over.  Per-request
    failures (dead shard, refused handoff, expired reservation) are
    *answered* as rejected acks, never raised -- this error signals
    misuse of the sharding layer itself."""


class SnapshotError(ReproError):
    """A checkpoint could not be written or a restore request could not
    be satisfied (no checkpoint available, a staggered type-2 recovery
    in flight at save time, ...)."""


class CorruptSnapshot(SnapshotError):
    """A snapshot directory failed verification on load: missing or
    truncated manifest, checksum mismatch, or internal inconsistency
    between the serialized arrays and the manifest aggregates.  Raised
    *before* any network state is built -- a corrupt checkpoint is
    skipped, never half-loaded."""


class DHTError(ReproError):
    """A DHT operation failed (lookup of a missing key is *not* an error;
    this signals protocol-level misuse)."""


class SimulationError(ReproError):
    """The synchronous engine detected a protocol violation (message to a
    non-neighbor, exceeding per-edge capacity, round overrun)."""
