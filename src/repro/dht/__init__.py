"""Distributed hash table on top of DEX (Section 4.4.4)."""

from repro.dht.hashing import hash_to_vertex
from repro.dht.dht import DexDHT, DHTStats

__all__ = ["hash_to_vertex", "DexDHT", "DHTStats"]
