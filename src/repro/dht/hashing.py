"""Key hashing for the DEX DHT.

Every node knows the current p-cycle size ``s`` (it is global knowledge),
so every node evaluates the same hash function ``h_s`` mapping keys
uniformly onto the vertex set ``Z_s`` (Section 4.4.4).  We use BLAKE2b,
which is deterministic across processes and platforms (unlike Python's
builtin ``hash``) and statistically uniform after the modulo for the
primes involved.
"""

from __future__ import annotations

import hashlib

from repro.types import Vertex


def hash_to_vertex(key: str, p: int) -> Vertex:
    """``h_s(key)``: a uniform vertex of ``Z_p`` for the current cycle."""
    if p < 2:
        raise ValueError(f"cycle size must be >= 2, got {p}")
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % p
