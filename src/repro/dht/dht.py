"""DHT on top of DEX (Section 4.4.4).

Keys hash to vertices of the current p-cycle; the item lives wherever its
vertex is simulated, and *moves with the vertex* when load balancing
reassigns it -- storage responsibility follows simulation responsibility,
exactly as the paper prescribes ("if z is transferred to some other node
w, storing (k, val) becomes the responsibility of w").

Requests are routed by *local routing*: the requester picks one of its
own vertices, computes the virtual shortest path to the target vertex
(every node knows the whole virtual graph), and forwards hop by hop --
O(log n) messages and rounds.

During a staggered type-2 recovery the cycle is being replaced, and the
migration scheme follows DESIGN.md substitution 5 (a concrete realization
of the paper's transfer-and-forward sketch):

* phase 1: items migrate *eagerly* per chunk -- when old vertex ``x`` is
  processed, every item whose new home's generating vertex is ``x``
  re-addresses to the new cycle (its new vertex is activating right now,
  and the old cycle is still fully routable).  A reverse index keyed by
  generating vertex makes this O(items-in-chunk) per step.
* lookups during phase 1 check locally whether the new home's generator
  is already processed and route to whichever cycle currently owns the
  key; during phase 2 all items are on the new cycle, which is complete.

Every operation therefore stays O(log n) messages/rounds, and invariant
I9 (every stored key retrievable under any churn) is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

from repro.dht.hashing import hash_to_vertex
from repro.errors import DHTError
from repro.net.metrics import CostLedger
from repro.net.routing import route_cost
from repro.types import Layer, NodeId, Vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork


@dataclass
class DHTStats:
    puts: int = 0
    gets: int = 0
    hits: int = 0
    migrated_items: int = 0
    total_messages: int = 0
    total_rounds: int = 0


@dataclass
class _Stores:
    primary: dict[Vertex, dict[str, Any]] = field(default_factory=dict)
    next: dict[Vertex, dict[str, Any]] = field(default_factory=dict)
    # keys awaiting migration, indexed by the old vertex that generates
    # their new home (phase-1 eager migration)
    pending_by_parent: dict[Vertex, list[str]] = field(default_factory=dict)


class DexDHT:
    """Insertion and lookup in O(log n) messages and rounds on DEX."""

    def __init__(self, dex: "DexNetwork"):
        self.dex = dex
        self.stats = DHTStats()
        self._stores = _Stores()
        self._indexed_for_op: object | None = None
        dex.attach_observer(self)

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, origin: NodeId | None = None) -> None:
        """Store ``(key, value)`` at the responsible vertex."""
        ledger = self._ledger()
        origin = origin if origin is not None else self.dex.random_node()
        layer, vertex = self._home_for(key)
        self._charge_route(origin, layer, vertex, ledger)
        store = self._store_of(layer)
        store.setdefault(vertex, {})[key] = value
        if layer is Layer.OLD and self.dex.staggered is not None:
            self._register_pending(key)
        self.stats.puts += 1
        self._absorb(ledger)

    def get(self, key: str, origin: NodeId | None = None) -> Any | None:
        """Retrieve the value for ``key`` (None if absent)."""
        ledger = self._ledger()
        origin = origin if origin is not None else self.dex.random_node()
        layer, vertex = self._home_for(key)
        self._charge_route(origin, layer, vertex, ledger)
        bucket = self._store_of(layer).get(vertex, {})
        self.stats.gets += 1
        if key in bucket:
            self.stats.hits += 1
            self._absorb(ledger)
            return bucket[key]
        # Transitional fallback (<= 2 routed queries, still O(log n)):
        # the item may not have migrated yet / may have migrated already.
        other = Layer.NEW if layer is Layer.OLD else Layer.OLD
        fallback = self._fallback_home(key, other)
        if fallback is not None:
            other_vertex, bucket2 = fallback
            self._charge_route(origin, other, other_vertex, ledger)
            if key in bucket2:
                self.stats.hits += 1
                self._absorb(ledger)
                return bucket2[key]
        self._absorb(ledger)
        return None

    def delete(self, key: str, origin: NodeId | None = None) -> bool:
        """Remove ``key``; returns True if it existed."""
        ledger = self._ledger()
        origin = origin if origin is not None else self.dex.random_node()
        removed = False
        for layer in (Layer.OLD, Layer.NEW):
            store = self._maybe_store(layer)
            if store is None:
                continue
            vertex = self._vertex_in(layer, key)
            if vertex is None:
                continue
            bucket = store.get(vertex)
            if bucket and key in bucket:
                self._charge_route(origin, layer, vertex, ledger)
                del bucket[key]
                removed = True
        self._absorb(ledger)
        return removed

    def responsible_node(self, key: str) -> NodeId:
        """The real node currently answering for ``key``."""
        layer, vertex = self._home_for(key)
        return self.dex.overlay.layer(layer).host_of(vertex)

    def item_count(self) -> int:
        return sum(len(b) for b in self._stores.primary.values()) + sum(
            len(b) for b in self._stores.next.values()
        )

    def keys(self) -> set[str]:
        out: set[str] = set()
        for store in (self._stores.primary, self._stores.next):
            for bucket in store.values():
                out.update(bucket)
        return out

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def _home_for(self, key: str) -> tuple[Layer, Vertex]:
        """Which (layer, vertex) currently owns ``key``."""
        op = self.dex.staggered
        if op is None:
            return Layer.OLD, hash_to_vertex(key, self.dex.p)
        new_home = hash_to_vertex(key, op.p_new)
        if op.phase == 2 or op.is_processed(op._parent(new_home)):
            return Layer.NEW, new_home
        return Layer.OLD, hash_to_vertex(key, op.p_old)

    def _vertex_in(self, layer: Layer, key: str) -> Vertex | None:
        if layer is Layer.OLD:
            return hash_to_vertex(key, self.dex.overlay.old.p)
        op = self.dex.staggered
        if op is None:
            return None
        return hash_to_vertex(key, op.p_new)

    def _fallback_home(
        self, key: str, layer: Layer
    ) -> tuple[Vertex, dict[str, Any]] | None:
        store = self._maybe_store(layer)
        if store is None:
            return None
        vertex = self._vertex_in(layer, key)
        if vertex is None:
            return None
        return vertex, store.get(vertex, {})

    def _store_of(self, layer: Layer) -> dict[Vertex, dict[str, Any]]:
        return self._stores.primary if layer is Layer.OLD else self._stores.next

    def _maybe_store(self, layer: Layer):
        if layer is Layer.NEW and self.dex.staggered is None:
            return None
        return self._store_of(layer)

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    def _ledger(self) -> CostLedger:
        return CostLedger()

    def _absorb(self, ledger: CostLedger) -> None:
        self.stats.total_messages += ledger.messages
        self.stats.total_rounds += ledger.rounds

    def _charge_route(
        self, origin: NodeId, layer: Layer, vertex: Vertex, ledger: CostLedger
    ) -> None:
        """Charge the O(log n) local-routing cost to reach ``vertex``.

        Routing always follows the cycle that is currently *complete*:
        the primary cycle in steady state and during phase 1, the new
        cycle during phase 2.  Targets living on the incomplete cycle are
        reached via their generating/generated counterpart plus one hop.
        """
        op = self.dex.staggered
        lm = self.dex.overlay.layer(layer)
        if lm.active_count == lm.p and lm.is_active(vertex):
            src = self._origin_vertex(origin, lm)
            if src is None:
                anchor = min(lm.host)  # one hop to a simulating neighbor
                ledger.charge_route(
                    1 + route_cost(lm.pcycle, lm.host_of, anchor, vertex)
                )
            else:
                ledger.charge_route(route_cost(lm.pcycle, lm.host_of, src, vertex))
            return
        if op is None:
            raise DHTError(f"vertex {vertex} unroutable outside a staggered op")
        if layer is Layer.NEW:
            # Phase 1: reach the new vertex via its generating old vertex.
            parent = op._parent(vertex)
            old = self.dex.overlay.old
            src = self._origin_vertex(origin, old)
            anchor = src if src is not None else min(old.host)
            extra = 1 if src is None else 0
            ledger.charge_route(
                extra + route_cost(old.pcycle, old.host_of, anchor, parent) + 1
            )
        else:
            # Phase 2: the old cycle is partially dismantled; reach the old
            # vertex's host via the new vertex it generated.
            image = op._parent_image(vertex)
            new = op.new
            src = self._origin_vertex(origin, new)
            anchor = src if src is not None else min(new.host)
            extra = 1 if src is None else 0
            ledger.charge_route(
                extra + route_cost(new.pcycle, new.host_of, anchor, image) + 1
            )

    @staticmethod
    def _origin_vertex(origin: NodeId, lm) -> Vertex | None:
        vertices = lm.vertices_of(origin)
        return min(vertices) if vertices else None

    # ------------------------------------------------------------------
    # DexNetwork observer hooks
    # ------------------------------------------------------------------
    def _register_pending(self, key: str) -> None:
        op = self.dex.staggered
        assert op is not None
        parent = op._parent(hash_to_vertex(key, op.p_new))
        self._stores.pending_by_parent.setdefault(parent, []).append(key)

    def on_chunk_processed(
        self, dex: "DexNetwork", vertices: list[Vertex], ledger: CostLedger
    ) -> None:
        """Phase-1 eager migration: items whose new home is generated by a
        vertex of this chunk move to the new cycle now."""
        op = dex.staggered
        if op is None:
            return
        if self._indexed_for_op is not op:
            self._index_all_pending(op)
            self._indexed_for_op = op
        for x in vertices:
            for key in self._stores.pending_by_parent.pop(x, ()):  # noqa: B909
                self._migrate_key(key, op, ledger)

    def _index_all_pending(self, op) -> None:
        for vertex, bucket in self._stores.primary.items():
            for key in bucket:
                parent = op._parent(hash_to_vertex(key, op.p_new))
                self._stores.pending_by_parent.setdefault(parent, []).append(key)

    def _migrate_key(self, key: str, op, ledger: CostLedger) -> None:
        old_vertex = hash_to_vertex(key, op.p_old)
        bucket = self._stores.primary.get(old_vertex)
        if not bucket or key not in bucket:
            return  # deleted, or stored new-style already
        value = bucket.pop(key)
        new_vertex = hash_to_vertex(key, op.p_new)
        self._stores.next.setdefault(new_vertex, {})[key] = value
        # One routed transfer along the (complete) old cycle.
        old = self.dex.overlay.old
        hops = route_cost(
            old.pcycle, old.host_of, old_vertex, op._parent(new_vertex)
        )
        ledger.charge_route(hops + 1)
        self.stats.migrated_items += 1

    def on_cycle_swapped(self, dex: "DexNetwork", ledger: CostLedger) -> None:
        """The staggered op completed (or a simplified type-2 replaced the
        cycle): re-address everything to the new primary cycle."""
        leftovers: list[tuple[str, Any]] = []
        for bucket in self._stores.primary.values():
            leftovers.extend(bucket.items())
        migrated = dict(self._stores.next)
        self._stores = _Stores()
        self._indexed_for_op = None
        p = dex.p
        for vertex, bucket in migrated.items():
            self._stores.primary.setdefault(vertex, {}).update(bucket)
        for key, value in leftovers:
            vertex = hash_to_vertex(key, p)
            self._stores.primary.setdefault(vertex, {})[key] = value
            ledger.charge_route(1)
            self.stats.migrated_items += 1
