"""The flooding strawman of Section 3.

On every insertion or deletion, a neighbor floods a notification through
the whole network; every node then knows the full membership and locally
recomputes the canonical expander topology (we use the same p-cycle
contraction DEX uses, assigned canonically by sorted node rank).

This *does* guarantee expansion and constant degree -- at Theta(n)
messages per step and up to O(n) topology changes, which is precisely the
overhead Table 1's comparison motivates DEX against.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import AdversaryError
from repro.net.metrics import CostLedger, MetricsLog
from repro.types import NodeId
from repro.virtual.pcycle import PCycle
from repro.virtual.primes import initial_prime


class FloodingExpander:
    name = "flooding"

    def __init__(self, n0: int, seed: int = 0):
        if n0 < 3:
            raise AdversaryError("need at least 3 initial nodes")
        self.members: set[NodeId] = set(range(n0))
        self.metrics = MetricsLog()
        self._next_id = n0
        self._rebuild()

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.members)

    def nodes(self) -> Iterable[NodeId]:
        return iter(self.members)

    def fresh_id(self) -> NodeId:
        nid = self._next_id
        self._next_id += 1
        return nid

    def _rebuild(self) -> None:
        """Every node recomputes the canonical p-cycle contraction."""
        n = len(self.members)
        self.p = initial_prime(n)
        self.pcycle = PCycle(self.p)
        order = sorted(self.members)
        self.host = {}
        bounds = [i * self.p // n for i in range(n)] + [self.p]
        for i, u in enumerate(order):
            for z in range(bounds[i], bounds[i + 1]):
                self.host[z] = u

    # ------------------------------------------------------------------
    def insert(self, node_id: NodeId | None = None, attach_to: NodeId | None = None):
        u = node_id if node_id is not None else self.fresh_id()
        self._next_id = max(self._next_id, u + 1)
        if u in self.members:
            raise AdversaryError(f"node {u} already present")
        ledger = self._flood_cost()
        before = self._edge_set()
        self.members.add(u)
        self._rebuild()
        ledger.topology_changes += len(before ^ self._edge_set())
        self.metrics.append(ledger)
        return ledger

    def delete(self, node_id: NodeId):
        if node_id not in self.members:
            raise AdversaryError(f"node {node_id} not present")
        if self.size <= 3:
            raise AdversaryError("network too small to delete from")
        ledger = self._flood_cost()
        before = self._edge_set()
        self.members.discard(node_id)
        self._rebuild()
        ledger.topology_changes += len(before ^ self._edge_set())
        self.metrics.append(ledger)
        return ledger

    def _flood_cost(self) -> CostLedger:
        ledger = CostLedger()
        n = max(self.size, 2)
        # notification floods the whole (constant-degree) network
        ledger.charge_flood(
            rounds=2 * int(np.ceil(np.log2(n))), messages=3 * n
        )
        return ledger

    def _edge_set(self) -> set[tuple[NodeId, NodeId]]:
        edges = set()
        for a, b in self.pcycle.edges():
            ha, hb = self.host[a], self.host[b]
            if ha != hb:
                edges.add((min(ha, hb), max(ha, hb)))
        return edges

    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        order = sorted(self.members)
        index = {u: i for i, u in enumerate(order)}
        n = len(order)
        rows, cols, data = [], [], []
        for a, b in self.pcycle.edges():
            ha, hb = index[self.host[a]], index[self.host[b]]
            if ha == hb:
                rows.append(ha)
                cols.append(ha)
                data.append(1.0 if a == b else 2.0)
            else:
                rows.extend((ha, hb))
                cols.extend((hb, ha))
                data.extend((1.0, 1.0))
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def max_degree(self) -> int:
        A = self.adjacency()
        return int(np.asarray(A.sum(axis=1)).ravel().max())

    def degree_of(self, u: NodeId) -> int:
        A = self.adjacency()
        order = sorted(self.members)
        return int(np.asarray(A.sum(axis=1)).ravel()[order.index(u)])

    def load_of(self, u: NodeId) -> int:
        return sum(1 for z, h in self.host.items() if h == u)
