"""Common surface for maintained overlays (DEX and every baseline).

Each overlay supports single-node insert/delete steps and reports the
communication costs the paper's Table 1 compares: recovery rounds,
messages, and topology changes per step, plus measurable structure
(degree, spectral gap).

Overlays *may* additionally implement the Section 5 batch surface
(:class:`BatchMaintainedOverlay`): ``insert_batch`` /``delete_batch``
heal a whole adversarial batch in one step.  The campaign driver
(:func:`repro.harness.runner.run_campaign`) probes for it with
:func:`supports_batch` and transparently falls back to per-step healing
for overlays that only speak the single-node protocol -- every scenario
in the registry runs against every baseline either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

import scipy.sparse as sp

from repro.analysis.spectral import spectral_gap
from repro.types import NodeId


@dataclass(frozen=True)
class OverlaySnapshot:
    """Structure measurements at one instant."""

    n: int
    max_degree: int
    spectral_gap: float

    def row(self) -> str:
        return (
            f"n={self.n:<6d} max_degree={self.max_degree:<4d} "
            f"gap={self.spectral_gap:7.4f}"
        )


class MaintainedOverlay(Protocol):
    """What the churn harness drives."""

    name: str

    @property
    def size(self) -> int: ...

    def nodes(self) -> Iterable[NodeId]: ...

    def insert(self, node_id: NodeId | None = None, attach_to: NodeId | None = None): ...

    def delete(self, node_id: NodeId): ...

    def adjacency(self) -> sp.spmatrix: ...

    def max_degree(self) -> int: ...

    def fresh_id(self) -> NodeId: ...


class BatchMaintainedOverlay(MaintainedOverlay, Protocol):
    """The optional Section 5 extension: whole-batch healing.  DEX
    implements it via the batch-parallel wave engine; a baseline may
    implement it with any semantics equivalent to applying the batch
    against the pre-step state."""

    def insert_batch(self, attachments: Sequence[tuple[NodeId, NodeId]]): ...

    def delete_batch(self, nodes: Sequence[NodeId]): ...


class PartialBatchOverlay(BatchMaintainedOverlay, Protocol):
    """The partial-batch extension (PR 5): validation partitions a batch
    into legal actions (healed in one wave) and per-action rejections,
    so one illegal victim no longer rejects the whole batch.  DEX
    implements it via :mod:`repro.core.multi`; the campaign driver
    probes for it with :func:`supports_partial_batch` and takes the
    single-pass path (replacing its historical bisection fallback) when
    it holds.  The membership-service gateway builds on the same
    surface -- it binds :class:`~repro.core.dex.DexNetwork` directly and
    turns each rejection into an individual client outcome."""

    def insert_batch_partial(
        self, attachments: Sequence[tuple[NodeId, NodeId]]
    ): ...

    def delete_batch_partial(self, nodes: Sequence[NodeId]): ...


def supports_batch(overlay) -> bool:
    """Whether the campaign driver can route whole batches through
    ``overlay`` (duck-typed: protocols are not runtime-checkable over
    non-method members)."""
    return callable(getattr(overlay, "insert_batch", None)) and callable(
        getattr(overlay, "delete_batch", None)
    )


def supports_partial_batch(overlay) -> bool:
    """Whether ``overlay`` reports partial-batch outcomes
    (:class:`PartialBatchOverlay`); duck-typed like
    :func:`supports_batch`."""
    return callable(getattr(overlay, "insert_batch_partial", None)) and callable(
        getattr(overlay, "delete_batch_partial", None)
    )


def snapshot(overlay: MaintainedOverlay) -> OverlaySnapshot:
    adjacency = overlay.adjacency()
    return OverlaySnapshot(
        n=overlay.size,
        max_degree=overlay.max_degree(),
        spectral_gap=spectral_gap(adjacency),
    )
