"""Common surface for maintained overlays (DEX and every baseline).

Each overlay supports single-node insert/delete steps and reports the
communication costs the paper's Table 1 compares: recovery rounds,
messages, and topology changes per step, plus measurable structure
(degree, spectral gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

import scipy.sparse as sp

from repro.analysis.spectral import spectral_gap
from repro.types import NodeId


@dataclass(frozen=True)
class OverlaySnapshot:
    """Structure measurements at one instant."""

    n: int
    max_degree: int
    spectral_gap: float

    def row(self) -> str:
        return (
            f"n={self.n:<6d} max_degree={self.max_degree:<4d} "
            f"gap={self.spectral_gap:7.4f}"
        )


class MaintainedOverlay(Protocol):
    """What the churn harness drives."""

    name: str

    @property
    def size(self) -> int: ...

    def nodes(self) -> Iterable[NodeId]: ...

    def insert(self, node_id: NodeId | None = None, attach_to: NodeId | None = None): ...

    def delete(self, node_id: NodeId): ...

    def adjacency(self) -> sp.spmatrix: ...

    def max_degree(self) -> int: ...


def snapshot(overlay: MaintainedOverlay) -> OverlaySnapshot:
    adjacency = overlay.adjacency()
    return OverlaySnapshot(
        n=overlay.size,
        max_degree=overlay.max_degree(),
        spectral_gap=spectral_gap(adjacency),
    )
