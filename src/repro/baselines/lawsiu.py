"""Law-Siu baseline [18]: the overlay is the union of ``d`` Hamiltonian
cycles over the current node set.

* **Join**: for each cycle, a random walk of O(log n) hops picks a splice
  position; the new node is inserted between that node and its successor
  (``d`` walks, O(d log n) messages, O(d) topology changes).
* **Leave**: in each cycle the predecessor and successor reconnect
  (O(d) topology changes, O(d) messages).

The resulting graph is an expander only *with high probability*, and the
guarantee is against an *oblivious* adversary: an adaptive adversary who
sees the cycles can delete carefully (or just keep churning) until the
realized union is a poor expander -- benchmark E2 measures exactly this
degradation, which is the motivation for DEX (Section 1, Table 1 row 1).
"""

from __future__ import annotations

import math
import random
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import AdversaryError
from repro.net.metrics import CostLedger, MetricsLog
from repro.types import NodeId


class LawSiuNetwork:
    """Union of ``d`` Hamiltonian cycles with random-walk splicing."""

    name = "law-siu"

    def __init__(self, n0: int, d: int = 3, seed: int = 0):
        if n0 < 3:
            raise AdversaryError("Law-Siu needs at least 3 initial nodes")
        if d < 1:
            raise ValueError("need at least one Hamiltonian cycle")
        self.d = d
        self.rng = random.Random(seed)
        #: successor/predecessor maps per cycle
        self.succ: list[dict[NodeId, NodeId]] = []
        self.pred: list[dict[NodeId, NodeId]] = []
        self.metrics = MetricsLog()
        self._next_id = n0
        nodes = list(range(n0))
        for _ in range(d):
            order = nodes[:]
            self.rng.shuffle(order)
            succ = {order[i]: order[(i + 1) % n0] for i in range(n0)}
            pred = {v: u for u, v in succ.items()}
            self.succ.append(succ)
            self.pred.append(pred)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.succ[0])

    def nodes(self) -> Iterable[NodeId]:
        return self.succ[0].keys()

    def fresh_id(self) -> NodeId:
        nid = self._next_id
        self._next_id += 1
        return nid

    # ------------------------------------------------------------------
    def insert(self, node_id: NodeId | None = None, attach_to: NodeId | None = None):
        u = node_id if node_id is not None else self.fresh_id()
        self._next_id = max(self._next_id, u + 1)
        if u in self.succ[0]:
            raise AdversaryError(f"node {u} already present")
        ledger = CostLedger()
        walk_len = max(2, math.ceil(2 * math.log2(max(self.size, 2))))
        # All d walks run before any splice so they never step onto the
        # partially-inserted node.
        positions: list[NodeId] = []
        for _ in range(self.d):
            at = attach_to if attach_to is not None else self._random_node()
            for _ in range(walk_len):
                at = self._random_neighbor(at)
            ledger.charge_walk(walk_len)
            positions.append(at)
        for (succ, pred), at in zip(zip(self.succ, self.pred), positions):
            nxt = succ[at]
            succ[at] = u
            pred[u] = at
            succ[u] = nxt
            pred[nxt] = u
            ledger.topology_changes += 3  # drop (at,nxt), add (at,u),(u,nxt)
        self.metrics.append(ledger)
        return ledger

    def delete(self, node_id: NodeId):
        if node_id not in self.succ[0]:
            raise AdversaryError(f"node {node_id} not present")
        if self.size <= 3:
            raise AdversaryError("network too small to delete from")
        ledger = CostLedger()
        for succ, pred in zip(self.succ, self.pred):
            before = pred.pop(node_id)
            after = succ.pop(node_id)
            succ[before] = after
            pred[after] = before
            ledger.messages += 2  # neighbors learn of the attack and patch
            ledger.rounds = max(ledger.rounds, 1)
            ledger.topology_changes += 3
        self.metrics.append(ledger)
        return ledger

    # ------------------------------------------------------------------
    def _random_node(self) -> NodeId:
        keys = sorted(self.succ[0])
        return keys[self.rng.randrange(len(keys))]

    def _random_neighbor(self, u: NodeId) -> NodeId:
        options = []
        for succ, pred in zip(self.succ, self.pred):
            options.append(succ[u])
            options.append(pred[u])
        options.sort()
        return options[self.rng.randrange(len(options))]

    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        order = sorted(self.succ[0])
        index = {u: i for i, u in enumerate(order)}
        n = len(order)
        rows, cols = [], []
        for succ in self.succ:
            for u, v in succ.items():
                rows.append(index[u])
                cols.append(index[v])
                rows.append(index[v])
                cols.append(index[u])
        data = np.ones(len(rows))
        A = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        return A

    def max_degree(self) -> int:
        A = self.adjacency()
        return int(np.asarray(A.sum(axis=1)).ravel().max())

    def degree_of(self, u: NodeId) -> int:
        seen = set()
        for succ, pred in zip(self.succ, self.pred):
            seen.add(succ[u])
            seen.add(pred[u])
        return 2 * self.d  # multigraph degree

    def load_of(self, u: NodeId) -> int:  # parity with the DEX view
        return 1
