"""Skip-graph baseline [2, 15] (structural, cost-accounted).

Every node draws an infinite random membership vector; level ``i`` groups
nodes sharing the first ``i`` bits, and each group keeps a doubly-linked
ring sorted by id.  A node participates in levels until its group becomes
a singleton, so its degree is Theta(log n) -- the Table 1 rows for skip
graphs / SKIP+ (degree O(log n), join cost O(log^2 n) messages for the
search-per-level join of [2]; SKIP+ improves messages at the price of
O(log^4 n) and large LOCAL-model messages).

The union of the ring edges contains an expander w.h.p. [2]; benchmark T1
measures its realized gap and degree against DEX's constants.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import AdversaryError
from repro.net.metrics import CostLedger, MetricsLog
from repro.types import NodeId

_MAX_LEVELS = 64


class SkipGraphOverlay:
    name = "skip-graph"

    def __init__(self, n0: int, seed: int = 0):
        if n0 < 3:
            raise AdversaryError("skip graph needs at least 3 initial nodes")
        self.rng = random.Random(seed)
        self.membership: dict[NodeId, tuple[int, ...]] = {}
        self.metrics = MetricsLog()
        self._next_id = 0
        for _ in range(n0):
            self._admit(self._next_id)
            self._next_id += 1

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.membership)

    def nodes(self) -> Iterable[NodeId]:
        return self.membership.keys()

    def fresh_id(self) -> NodeId:
        nid = self._next_id
        self._next_id += 1
        return nid

    def _admit(self, u: NodeId) -> None:
        self.membership[u] = tuple(
            self.rng.randrange(2) for _ in range(_MAX_LEVELS)
        )

    # ------------------------------------------------------------------
    def _levels(self) -> int:
        return max(2, math.ceil(math.log2(max(self.size, 2))) + 1)

    def _group(self, u: NodeId, level: int) -> tuple[int, ...]:
        return self.membership[u][:level]

    def _ring_neighbors(self, u: NodeId, level: int) -> list[NodeId]:
        prefix = self._group(u, level)
        members = sorted(
            v for v in self.membership if self._group(v, level) == prefix
        )
        if len(members) < 2:
            return []
        i = members.index(u)
        left = members[i - 1]
        right = members[(i + 1) % len(members)]
        return [left, right] if left != right else [left]

    # ------------------------------------------------------------------
    def insert(self, node_id: NodeId | None = None, attach_to: NodeId | None = None):
        u = node_id if node_id is not None else self.fresh_id()
        self._next_id = max(self._next_id, u + 1)
        if u in self.membership:
            raise AdversaryError(f"node {u} already present")
        ledger = CostLedger()
        self._admit(u)
        levels = self._levels()
        search = math.ceil(math.log2(max(self.size, 2)))
        # join: one search + ring splice per level (costs of [2])
        ledger.charge_parallel(rounds=levels + search, messages=levels * search)
        ledger.topology_changes += 3 * levels
        self.metrics.append(ledger)
        return ledger

    def delete(self, node_id: NodeId):
        if node_id not in self.membership:
            raise AdversaryError(f"node {node_id} not present")
        if self.size <= 3:
            raise AdversaryError("network too small to delete from")
        ledger = CostLedger()
        levels = self._levels()
        del self.membership[node_id]
        ledger.charge_parallel(rounds=2, messages=2 * levels)
        ledger.topology_changes += 3 * levels
        self.metrics.append(ledger)
        return ledger

    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        order = sorted(self.membership)
        index = {u: i for i, u in enumerate(order)}
        levels = self._levels()
        pairs: set[tuple[int, int]] = set()
        for level in range(levels):
            groups: dict[tuple[int, ...], list[NodeId]] = {}
            for u in order:
                groups.setdefault(self._group(u, level), []).append(u)
            for members in groups.values():
                if len(members) < 2:
                    continue
                for i, u in enumerate(members):
                    v = members[(i + 1) % len(members)]
                    if u != v:
                        a, b = index[u], index[v]
                        pairs.add((min(a, b), max(a, b)))
        rows, cols = [], []
        for a, b in pairs:
            rows.extend((a, b))
            cols.extend((b, a))
        data = np.ones(len(rows))
        n = len(order)
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def max_degree(self) -> int:
        A = self.adjacency()
        return int(np.asarray((A > 0).sum(axis=1)).ravel().max())

    def degree_of(self, u: NodeId) -> int:
        total = 0
        for level in range(self._levels()):
            total += len(self._ring_neighbors(u, level))
        return total

    def load_of(self, u: NodeId) -> int:
        return 1
