"""Flip-chain baseline (Cooper, Dyer, Handley [6]): maintain an (almost)
d-regular graph by local patching plus random edge *flips*.

A flip picks two disjoint edges (a, b), (c, d) and rewires them to
(a, d), (c, b) -- the Markov chain whose stationary distribution is
uniform over d-regular graphs (good expanders w.h.p.).  On churn:

* join: connect the new node to ``d`` random nodes (found by walks),
* leave: stitch the leaver's neighbors pairwise,
* then run ``flips_per_step`` flips to re-randomize.

Expansion is only probabilistic and the degree only *almost* regular;
this is the "randomizing P2P protocol" comparator of the related work.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import AdversaryError
from repro.net.metrics import CostLedger, MetricsLog
from repro.types import NodeId


class FlipChainOverlay:
    name = "flip-chain"

    def __init__(self, n0: int, d: int = 6, flips_per_step: int = 8, seed: int = 0):
        if n0 <= d:
            raise AdversaryError(f"need n0 > d (got n0={n0}, d={d})")
        self.d = d
        self.flips_per_step = flips_per_step
        self.rng = random.Random(seed)
        self.adj: dict[NodeId, set[NodeId]] = {u: set() for u in range(n0)}
        self.metrics = MetricsLog()
        self._next_id = n0
        # initial ring + random chords for an almost-d-regular start
        nodes = list(range(n0))
        for i, u in enumerate(nodes):
            self._link(u, nodes[(i + 1) % n0])
        attempts = 0
        while attempts < 50 * n0 * d:
            attempts += 1
            u, v = self.rng.sample(nodes, 2)
            if len(self.adj[u]) < d and len(self.adj[v]) < d and v not in self.adj[u]:
                self._link(u, v)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.adj)

    def nodes(self) -> Iterable[NodeId]:
        return self.adj.keys()

    def fresh_id(self) -> NodeId:
        nid = self._next_id
        self._next_id += 1
        return nid

    def _link(self, u: NodeId, v: NodeId) -> None:
        self.adj[u].add(v)
        self.adj[v].add(u)

    def _unlink(self, u: NodeId, v: NodeId) -> None:
        self.adj[u].discard(v)
        self.adj[v].discard(u)

    # ------------------------------------------------------------------
    def insert(self, node_id: NodeId | None = None, attach_to: NodeId | None = None):
        u = node_id if node_id is not None else self.fresh_id()
        self._next_id = max(self._next_id, u + 1)
        if u in self.adj:
            raise AdversaryError(f"node {u} already present")
        ledger = CostLedger()
        self.adj[u] = set()
        walk_len = max(2, math.ceil(2 * math.log2(max(self.size, 2))))
        targets: set[NodeId] = set()
        nodes = sorted(set(self.adj) - {u})
        guard = 0
        while len(targets) < min(self.d, len(nodes)) and guard < 20 * self.d:
            guard += 1
            at = attach_to if attach_to is not None else nodes[self.rng.randrange(len(nodes))]
            for _ in range(walk_len):
                nbrs = sorted(self.adj[at]) or nodes
                at = nbrs[self.rng.randrange(len(nbrs))]
            ledger.charge_walk(walk_len)
            if at != u:
                targets.add(at)
        for t in targets:
            self._link(u, t)
            ledger.topology_changes += 1
        self._flip_mix(ledger)
        self.metrics.append(ledger)
        return ledger

    def delete(self, node_id: NodeId):
        if node_id not in self.adj:
            raise AdversaryError(f"node {node_id} not present")
        if self.size <= self.d + 2:
            raise AdversaryError("network too small to delete from")
        ledger = CostLedger()
        orphans = sorted(self.adj.pop(node_id))
        for v in orphans:
            self.adj[v].discard(node_id)
            ledger.topology_changes += 1
        # stitch orphans pairwise to preserve degree mass
        for a, b in zip(orphans[::2], orphans[1::2]):
            if a != b and b not in self.adj[a]:
                self._link(a, b)
                ledger.topology_changes += 1
                ledger.messages += 1
        ledger.rounds = max(ledger.rounds, 1)
        self._flip_mix(ledger)
        self.metrics.append(ledger)
        return ledger

    def _flip_mix(self, ledger: CostLedger) -> None:
        nodes = sorted(self.adj)
        for _ in range(self.flips_per_step):
            a, c = self.rng.sample(nodes, 2)
            if not self.adj[a] or not self.adj[c]:
                continue
            b = sorted(self.adj[a])[self.rng.randrange(len(self.adj[a]))]
            d = sorted(self.adj[c])[self.rng.randrange(len(self.adj[c]))]
            if len({a, b, c, d}) != 4:
                continue
            if d in self.adj[a] or b in self.adj[c]:
                continue
            self._unlink(a, b)
            self._unlink(c, d)
            self._link(a, d)
            self._link(c, b)
            ledger.topology_changes += 4
            ledger.messages += 4
            ledger.rounds = max(ledger.rounds, 2)

    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        order = sorted(self.adj)
        index = {u: i for i, u in enumerate(order)}
        rows, cols = [], []
        for u, nbrs in self.adj.items():
            for v in nbrs:
                rows.append(index[u])
                cols.append(index[v])
        data = np.ones(len(rows))
        return sp.csr_matrix((data, (rows, cols)), shape=(len(order), len(order)))

    def max_degree(self) -> int:
        return max(len(nbrs) for nbrs in self.adj.values())

    def degree_of(self, u: NodeId) -> int:
        return len(self.adj[u])

    def load_of(self, u: NodeId) -> int:
        return 1
