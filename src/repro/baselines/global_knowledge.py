"""The global-knowledge strawman of Section 3.

A designated leader ``p`` tracks the entire topology.  Churn next to any
node costs O(1) messages to inform the leader, who instructs the O(1)
topology changes -- cheap, *until the adversary deletes the leader*: the
successor must receive the full Theta(n)-word topology state, which takes
Omega(n) messages/rounds in the CONGEST model.  DEX's coordinator keeps
only O(log n) bits (three counters), which is the whole point of
Algorithm 4.7.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import AdversaryError
from repro.net.metrics import CostLedger, MetricsLog
from repro.types import NodeId
from repro.virtual.pcycle import PCycle
from repro.virtual.primes import initial_prime


class GlobalKnowledgeExpander:
    name = "global-knowledge"

    def __init__(self, n0: int, seed: int = 0):
        if n0 < 3:
            raise AdversaryError("need at least 3 initial nodes")
        self.members: set[NodeId] = set(range(n0))
        self.leader: NodeId = 0
        self.metrics = MetricsLog()
        self._next_id = n0
        self._rebuild()

    @property
    def size(self) -> int:
        return len(self.members)

    def nodes(self) -> Iterable[NodeId]:
        return iter(self.members)

    def fresh_id(self) -> NodeId:
        nid = self._next_id
        self._next_id += 1
        return nid

    def _rebuild(self) -> None:
        n = len(self.members)
        self.p = initial_prime(n)
        self.pcycle = PCycle(self.p)
        order = sorted(self.members)
        self.host = {}
        bounds = [i * self.p // n for i in range(n)] + [self.p]
        for i, u in enumerate(order):
            for z in range(bounds[i], bounds[i + 1]):
                self.host[z] = u

    def insert(self, node_id: NodeId | None = None, attach_to: NodeId | None = None):
        u = node_id if node_id is not None else self.fresh_id()
        self._next_id = max(self._next_id, u + 1)
        if u in self.members:
            raise AdversaryError(f"node {u} already present")
        ledger = CostLedger()
        ledger.charge_route(int(np.ceil(np.log2(max(self.size, 2)))))  # tell leader
        self.members.add(u)
        self._rebuild()
        ledger.topology_changes += 8  # leader instructs a local splice
        self.metrics.append(ledger)
        return ledger

    def delete(self, node_id: NodeId):
        if node_id not in self.members:
            raise AdversaryError(f"node {node_id} not present")
        if self.size <= 3:
            raise AdversaryError("network too small to delete from")
        ledger = CostLedger()
        leader_killed = node_id == self.leader
        self.members.discard(node_id)
        if leader_killed:
            # Omega(n) state transfer to the successor (Section 3).
            self.leader = min(self.members)
            n = self.size
            ledger.charge_parallel(rounds=n, messages=3 * n)
        else:
            ledger.charge_route(int(np.ceil(np.log2(max(self.size, 2)))))
        self._rebuild()
        ledger.topology_changes += 8
        self.metrics.append(ledger)
        return ledger

    def adjacency(self) -> sp.csr_matrix:
        order = sorted(self.members)
        index = {u: i for i, u in enumerate(order)}
        n = len(order)
        rows, cols, data = [], [], []
        for a, b in self.pcycle.edges():
            ha, hb = index[self.host[a]], index[self.host[b]]
            if ha == hb:
                rows.append(ha)
                cols.append(ha)
                data.append(1.0 if a == b else 2.0)
            else:
                rows.extend((ha, hb))
                cols.extend((hb, ha))
                data.extend((1.0, 1.0))
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def max_degree(self) -> int:
        A = self.adjacency()
        return int(np.asarray(A.sum(axis=1)).ravel().max())

    def degree_of(self, u: NodeId) -> int:
        A = self.adjacency()
        order = sorted(self.members)
        return int(np.asarray(A.sum(axis=1)).ravel()[order.index(u)])

    def load_of(self, u: NodeId) -> int:
        return 1
