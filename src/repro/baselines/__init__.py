"""Baselines: the two naive algorithms of Section 3 and the related-work
overlays of Table 1, all behind a common maintenance interface so the
harness can churn them uniformly."""

from repro.baselines.interface import MaintainedOverlay, OverlaySnapshot
from repro.baselines.flooding import FloodingExpander
from repro.baselines.global_knowledge import GlobalKnowledgeExpander
from repro.baselines.lawsiu import LawSiuNetwork
from repro.baselines.skipgraph import SkipGraphOverlay
from repro.baselines.flip import FlipChainOverlay

__all__ = [
    "MaintainedOverlay",
    "OverlaySnapshot",
    "FloodingExpander",
    "GlobalKnowledgeExpander",
    "LawSiuNetwork",
    "SkipGraphOverlay",
    "FlipChainOverlay",
]
