"""Cost accounting: rounds, messages and topology changes per step.

Theorem 1 bounds exactly these three quantities, so every primitive in
the library reports its consumption into a :class:`CostLedger`, and the
per-step ledgers accumulate into a :class:`MetricsLog` that the harness
and the benchmarks summarize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.registry import MetricsRegistry


@dataclass
class CostLedger:
    """Mutable accumulator for one step's communication costs."""

    rounds: int = 0
    messages: int = 0
    topology_changes: int = 0
    walks: int = 0
    walk_hops: int = 0
    retries: int = 0
    floods: int = 0
    coordinator_updates: int = 0

    def add(self, other: "CostLedger") -> None:
        self.rounds += other.rounds
        self.messages += other.messages
        self.topology_changes += other.topology_changes
        self.walks += other.walks
        self.walk_hops += other.walk_hops
        self.retries += other.retries
        self.floods += other.floods
        self.coordinator_updates += other.coordinator_updates

    def charge_walk(self, hops: int) -> None:
        """A token walk of ``hops`` hops: one message and one round per hop
        (walks in DEX are sequential within a step)."""
        self.walks += 1
        self.walk_hops += hops
        self.messages += hops
        self.rounds += hops

    def charge_walk_wave(self, walks: int, hops: int, rounds: int) -> None:
        """A congestion-scheduled wave of ``walks`` simultaneous tokens
        (Lemma 11): ``rounds`` is the scheduler's *actual* round count,
        messages the total hops over all tokens."""
        self.walks += walks
        self.walk_hops += hops
        self.messages += hops
        self.rounds += rounds

    def charge_route(self, hops: int) -> None:
        """A routed message along ``hops`` real hops."""
        self.messages += hops
        self.rounds += hops

    def charge_flood(self, rounds: int, messages: int) -> None:
        self.floods += 1
        self.rounds += rounds
        self.messages += messages

    def charge_parallel(self, rounds: int, messages: int) -> None:
        """A batch of parallel activity: rounds is the max over the batch,
        messages the sum."""
        self.rounds += rounds
        self.messages += messages

    def as_dict(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "topology_changes": self.topology_changes,
            "walks": self.walks,
            "walk_hops": self.walk_hops,
            "retries": self.retries,
            "floods": self.floods,
            "coordinator_updates": self.coordinator_updates,
        }

    def publish_into(self, registry: MetricsRegistry) -> None:
        """Publish the ledger's counters into ``registry`` under
        ``dex.cost.*`` (publish-on-read: call from an exposition path,
        not from the engine hot loop)."""
        for name, value in self.as_dict().items():
            registry.counter(
                f"dex.cost.{name}", f"Theorem 1 cost counter: {name}"
            ).set_total(value)


@dataclass
class MetricsLog:
    """Per-step history of ledgers plus derived summaries."""

    ledgers: list[CostLedger] = field(default_factory=list)

    def append(self, ledger: CostLedger) -> None:
        self.ledgers.append(ledger)

    def totals(self) -> CostLedger:
        total = CostLedger()
        for ledger in self.ledgers:
            total.add(ledger)
        return total

    def series(self, attribute: str) -> list[int]:
        return [getattr(ledger, attribute) for ledger in self.ledgers]

    def amortized(self, attribute: str) -> float:
        if not self.ledgers:
            return 0.0
        return sum(self.series(attribute)) / len(self.ledgers)

    def worst(self, attribute: str) -> int:
        return max(self.series(attribute), default=0)

    def extend(self, other: Iterable[CostLedger]) -> None:
        self.ledgers.extend(other)
