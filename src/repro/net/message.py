"""Messages for the synchronous CONGEST engine.

The model (Section 2) allows messages of O(log n) bits: a constant number
of node ids, vertex labels and counters.  :meth:`Message.size_words`
estimates the payload size in machine words so the engine can enforce the
CONGEST discipline (a configurable constant word budget per message).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.types import NodeId

#: Maximum payload entries of a CONGEST message (constant number of
#: O(log n)-bit fields).
CONGEST_WORD_LIMIT = 8


@dataclass(frozen=True)
class Message:
    """A single point-to-point message sent along an existing edge."""

    src: NodeId
    dst: NodeId
    kind: str
    payload: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, src: NodeId, dst: NodeId, kind: str, **payload: Any) -> "Message":
        return cls(src=src, dst=dst, kind=kind, payload=tuple(sorted(payload.items())))

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.payload:
            if k == key:
                return v
        return default

    def size_words(self) -> int:
        """Payload entries, each assumed to be one O(log n)-bit field."""
        words = 0
        for _, value in self.payload:
            if isinstance(value, (int, float, str, bool)) or value is None:
                words += 1
            elif isinstance(value, (tuple, list)):
                words += len(value)
            else:
                raise SimulationError(
                    f"non-serializable payload value in CONGEST message: {value!r}"
                )
        return words

    def check_congest(self, limit: int = CONGEST_WORD_LIMIT) -> None:
        if self.size_words() > limit:
            raise SimulationError(
                f"message {self.kind} carries {self.size_words()} words, "
                f"exceeding the CONGEST limit of {limit}"
            )
