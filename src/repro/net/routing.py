"""Local routing along the virtual p-cycle, and congestion-scheduled
permutation routing.

Every node knows the complete topology of the *virtual* graph (it is a
pure function of the prime p), so it can compute shortest paths locally
and forward messages hop-by-hop (Fact 1: virtual distances only shrink
under the mapping).  The paper uses this for coordinator updates
(Algorithm 4.7), the DHT (Section 4.4.4), and permutation routing for
inverse edges in type-2 recovery (Corollary 7.7.3 of [28], for which we
substitute shortest-path store-and-forward with per-edge congestion; see
DESIGN.md section 4.2).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.types import NodeId, Vertex
from repro.virtual.pcycle import PCycle


def route_cost(
    pcycle: PCycle,
    host_of: Callable[[Vertex], NodeId],
    src_vertex: Vertex,
    dst_vertex: Vertex,
) -> int:
    """Real hops to route a message from the host of ``src_vertex`` to
    the host of ``dst_vertex`` along the virtual shortest path.

    Consecutive path vertices hosted at the same real node cost nothing
    (the contraction can only shorten paths, Fact 1).
    """
    path = pcycle.shortest_path(src_vertex, dst_vertex)
    hops = 0
    for a, b in zip(path, path[1:]):
        if host_of(a) != host_of(b):
            hops += 1
    return hops


def route_real_path(
    pcycle: PCycle,
    host_of: Callable[[Vertex], NodeId],
    src_vertex: Vertex,
    dst_vertex: Vertex,
) -> list[NodeId]:
    """The sequence of distinct real nodes the message visits."""
    path = pcycle.shortest_path(src_vertex, dst_vertex)
    real: list[NodeId] = []
    for z in path:
        node = host_of(z)
        if not real or real[-1] != node:
            real.append(node)
    return real


def permutation_routing(
    pcycle: PCycle,
    packets: Sequence[tuple[Vertex, Vertex]],
    rng: random.Random | None = None,
) -> tuple[int, int]:
    """Route all ``(src, dst)`` packets simultaneously on the virtual
    graph with at most one packet per virtual edge per direction per
    round (store-and-forward, farthest-remaining-first priority).

    Returns ``(rounds, messages)``.  On the 3-regular expander family the
    measured rounds are polylogarithmic, standing in for Corollary 7.7.3
    of [28] (see DESIGN.md substitution 2).
    """
    paths = [pcycle.shortest_path(s, d) for s, d in packets]
    progress = [0] * len(packets)  # index into each path
    total_messages = 0
    rounds = 0
    pending = {i for i, path in enumerate(paths) if len(path) > 1}
    order_rng = rng if rng is not None else random.Random(0)
    while pending:
        rounds += 1
        used: set[tuple[Vertex, Vertex]] = set()
        # Farthest-remaining-first reduces maximum queueing delay.
        order = sorted(
            pending, key=lambda i: len(paths[i]) - progress[i], reverse=True
        )
        moved_any = False
        for i in order:
            path = paths[i]
            here = path[progress[i]]
            nxt = path[progress[i] + 1]
            if (here, nxt) in used:
                continue
            used.add((here, nxt))
            progress[i] += 1
            total_messages += 1
            moved_any = True
            if progress[i] == len(path) - 1:
                pending.discard(i)
        if not moved_any:  # pragma: no cover - cannot happen: disjoint heads
            order_rng.shuffle(order)
            raise AssertionError("permutation routing deadlocked")
    return rounds, total_messages
