"""Synchronous message-passing engine (the model of Section 2).

Computation proceeds in rounds.  In each round every node processes the
messages delivered this round and emits messages to neighbors, which
arrive in the next round.  Messages are neither lost nor corrupted, may
only travel along existing edges, and are size-checked against the
CONGEST discipline.  Local computation is free (only communication is
charged), matching the standard model [25].
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import SimulationError
from repro.net.message import Message
from repro.net.metrics import CostLedger
from repro.net.topology import DynamicMultigraph
from repro.types import NodeId


class NodeProc(Protocol):
    """Per-node protocol logic driven by the engine."""

    def on_round(self, node: NodeId, round_no: int, inbox: list[Message]) -> list[Message]:
        """Process this round's inbox; return messages to send (delivered
        next round).  Return an empty list when idle."""
        ...


class SyncEngine:
    """Runs one protocol instance over the current topology snapshot."""

    def __init__(
        self,
        graph: DynamicMultigraph,
        proc: NodeProc,
        ledger: CostLedger | None = None,
        enforce_congest: bool = True,
    ) -> None:
        self.graph = graph
        self.proc = proc
        self.ledger = ledger if ledger is not None else CostLedger()
        self.enforce_congest = enforce_congest
        self.rounds_used = 0
        self.messages_sent = 0

    def run(self, initial: list[Message], max_rounds: int = 10_000) -> int:
        """Drive rounds until no message is in flight; returns rounds used.

        ``initial`` messages are self-addressed wake-ups or messages from
        the environment (e.g. the node noticing an attack); they are
        delivered in round 1 without being charged as network messages
        when ``src == dst``.
        """
        in_flight = list(initial)
        round_no = 0
        while in_flight:
            round_no += 1
            if round_no > max_rounds:
                raise SimulationError(
                    f"protocol did not terminate within {max_rounds} rounds"
                )
            inboxes: dict[NodeId, list[Message]] = {}
            for msg in in_flight:
                inboxes.setdefault(msg.dst, []).append(msg)
            in_flight = []
            for node, inbox in inboxes.items():
                if not self.graph.has_node(node):
                    raise SimulationError(f"message delivered to dead node {node}")
                outbox = self.proc.on_round(node, round_no, inbox)
                for out in outbox:
                    self._validate(out)
                    in_flight.append(out)
                    if out.src != out.dst:
                        self.messages_sent += 1
        self.rounds_used = round_no
        self.ledger.rounds += self.rounds_used
        self.ledger.messages += self.messages_sent
        return self.rounds_used

    def _validate(self, msg: Message) -> None:
        if msg.src == msg.dst:
            return  # local wake-up, free
        if self.graph.multiplicity(msg.src, msg.dst) <= 0:
            raise SimulationError(
                f"node {msg.src} attempted to message non-neighbor {msg.dst}"
            )
        if self.enforce_congest:
            msg.check_congest()
