"""The real network as a dynamic undirected multigraph.

Multiplicities matter: the real network is the image of the virtual
p-cycle under the balanced mapping, so two nodes may be connected by
several parallel virtual edges, and a node may carry *self-loop weight*
(virtual self-loops contribute 1; virtual edges with both endpoints at
the same node contribute 2, preserving ``degree(u) = 3 * Load(u)``).

A *topology change* is counted exactly when an actual connection appears
or disappears -- i.e. a pair multiplicity transitions 0 <-> positive -- or
a node joins/leaves; raising the multiplicity of an existing connection
is bookkeeping on an existing link, not a new connection.  Self-loops are
never connections.

Aggregates are maintained *incrementally* so the churn hot path never
scans the node set: a live-node array backs O(1) uniform sampling,
per-node degree counters and the edge-unit/connection totals are updated
in O(1) per mutation, and a per-node version stamp lazily invalidates the
cached neighbor CDFs that :mod:`repro.net.walks` samples from.
:meth:`DynamicMultigraph.verify_caches` recomputes everything from the
adjacency structure and is the oracle the invariant tests run under
churn.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from typing import Callable, Iterable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.errors import TopologyError
from repro.types import NodeId


class DynamicMultigraph:
    """Undirected multigraph with weighted self-loops, change counting,
    and O(1) cached aggregates (degrees, edge units, node sampling)."""

    __slots__ = (
        "_adj",
        "topology_changes",
        "_nodes",
        "_node_pos",
        "_degree",
        "_edge_units",
        "_connections",
        "_version",
        "_stamp",
        "_cdf_cache",
        "_csr_cache",
        "_csr_dirty",
        "_wave_view",
        "node_listeners",
    )

    def __init__(self) -> None:
        self._adj: dict[NodeId, Counter[NodeId]] = {}
        #: cumulative count of connection creations/destructions + node events
        self.topology_changes: int = 0
        #: live nodes in insertion order with swap-remove deletion -- the
        #: backing array for O(1) uniform sampling
        self._nodes: list[NodeId] = []
        self._node_pos: dict[NodeId, int] = {}
        self._degree: dict[NodeId, int] = {}
        self._edge_units: int = 0
        self._connections: int = 0
        #: per-node version stamps; bumped whenever a node's incident
        #: multiplicities change, invalidating its cached neighbor CDF
        self._version: dict[NodeId, int] = {}
        #: monotone version counter (plain int: bumped on the mutation
        #: hot path, so no iterator indirection)
        self._stamp: int = 0
        self._cdf_cache: dict[NodeId, tuple[int, list[NodeId], list[int], int]] = {}
        #: cached sparse adjacency: ``(order, order_arr, row-node ids,
        #: col-node ids, multiplicities, csr matrix)``; patched from
        #: ``_csr_dirty`` instead of rebuilt (the former O(n) rebuild
        #: dominated repeated spectral sampling at large n)
        self._csr_cache: (
            tuple[list[NodeId], np.ndarray, np.ndarray, np.ndarray, np.ndarray, sp.csr_matrix]
            | None
        ) = None
        #: nodes whose incident rows changed since the cached CSR was
        #: built (includes joined and departed nodes)
        self._csr_dirty: set[NodeId] = set()
        #: memoized sampling view for the lockstep wave engine, keyed by
        #: identity of the cached CSR matrix (rebuilt only when the CSR
        #: itself is re-assembled)
        self._wave_view: tuple[object, tuple] | None = None
        #: callbacks ``f(delta)`` fired on node join (+1) / leave (-1);
        #: the coordinator's size counter consumes these deltas
        self.node_listeners: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, u: NodeId) -> None:
        if u in self._adj:
            raise TopologyError(f"node {u} already exists")
        self._adj[u] = Counter()
        self._node_pos[u] = len(self._nodes)
        self._nodes.append(u)
        self._degree[u] = 0
        self._stamp += 1
        self._version[u] = self._stamp
        self._csr_dirty.add(u)
        self.topology_changes += 1
        for listener in self.node_listeners:
            listener(+1)

    def remove_node(self, u: NodeId) -> None:
        """Remove ``u``; requires all its edges to have been removed first
        (the healing logic moves the virtual vertices away, which clears
        the derived edges)."""
        nbrs = self._require(u)
        if any(m > 0 for m in nbrs.values()):
            raise TopologyError(f"node {u} still has incident edges: {dict(nbrs)}")
        del self._adj[u]
        self._forget_node(u)
        self.topology_changes += 1
        for listener in self.node_listeners:
            listener(-1)

    def drop_node_with_edges(self, u: NodeId) -> Counter[NodeId]:
        """Adversarial deletion: remove ``u`` along with all incident
        edges, returning the neighbor multiplicities that were lost (the
        neighbors are aware of the attack, Section 2)."""
        nbrs = Counter(self._require(u))
        for v, mult in nbrs.items():
            if v == u:
                self._edge_units -= mult
                continue
            del self._adj[v][u]
            self._degree[v] -= mult
            self._edge_units -= mult
            self._connections -= 1
            self._touch(v)
            self.topology_changes += 1  # the (u, v) connection is destroyed
        del self._adj[u]
        self._forget_node(u)
        self.topology_changes += 1
        for listener in self.node_listeners:
            listener(-1)
        return nbrs

    def _forget_node(self, u: NodeId) -> None:
        """Drop ``u`` from every cached aggregate (swap-remove from the
        sampling array keeps deletion O(1))."""
        pos = self._node_pos.pop(u)
        last = self._nodes.pop()
        if last != u:
            self._nodes[pos] = last
            self._node_pos[last] = pos
        del self._degree[u]
        del self._version[u]
        self._cdf_cache.pop(u, None)
        self._csr_dirty.add(u)

    def has_node(self, u: NodeId) -> bool:
        return u in self._adj

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def random_node(self, rng: random.Random) -> NodeId:
        """Uniform O(1) sample from the live-node array.  Deterministic
        for a fixed seed and operation history (the array order is a pure
        function of the join/leave sequence)."""
        if not self._nodes:
            raise TopologyError("cannot sample from an empty graph")
        return self._nodes[rng.randrange(len(self._nodes))]

    def _require(self, u: NodeId) -> Counter[NodeId]:
        try:
            return self._adj[u]
        except KeyError:
            raise TopologyError(f"node {u} does not exist") from None

    def _touch(self, u: NodeId) -> None:
        self._stamp += 1
        self._version[u] = self._stamp
        self._csr_dirty.add(u)

    def node_version(self, u: NodeId) -> int:
        """Monotone stamp of ``u``'s incident edge state (cache keys)."""
        self._require(u)
        return self._version[u]

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: NodeId, v: NodeId, mult: int = 1) -> None:
        """Add ``mult`` units of multiplicity.  For self-loops the caller
        chooses the degree contribution (1 for virtual self-loops, 2 for
        contracted pairs)."""
        if mult <= 0:
            raise TopologyError(f"multiplicity must be positive, got {mult}")
        au = self._require(u)
        av = self._require(v)
        self._edge_units += mult
        if u == v:
            au[u] += mult
            self._degree[u] += mult
            self._touch(u)
            return  # self-loops are not connections
        if au[v] == 0:
            self.topology_changes += 1
            self._connections += 1
        au[v] += mult
        av[u] += mult
        self._degree[u] += mult
        self._degree[v] += mult
        self._touch(u)
        self._touch(v)

    def remove_edge(self, u: NodeId, v: NodeId, mult: int = 1) -> None:
        if mult <= 0:
            raise TopologyError(f"multiplicity must be positive, got {mult}")
        au = self._require(u)
        av = self._require(v)
        if au[v] < mult:
            raise TopologyError(
                f"edge ({u}, {v}) has multiplicity {au[v]} < {mult}"
            )
        self._edge_units -= mult
        if u == v:
            au[u] -= mult
            if au[u] == 0:
                del au[u]
            self._degree[u] -= mult
            self._touch(u)
            return
        au[v] -= mult
        av[u] -= mult
        self._degree[u] -= mult
        self._degree[v] -= mult
        self._touch(u)
        self._touch(v)
        if au[v] == 0:
            del au[v]
            del av[u]
            self.topology_changes += 1
            self._connections -= 1

    def move_loop_unit(self, old: NodeId, new: NodeId) -> None:
        """Transfer one unit of self-loop weight from ``old`` to ``new``
        (a virtual self-loop following its host): the combined
        remove+add of the healing hot path in one pass over the cached
        aggregates.  Self-loops are never connections, so only degrees
        and version stamps change."""
        adj = self._adj
        ao = adj[old]
        ao[old] -= 1
        if ao[old] == 0:
            dict.__delitem__(ao, old)
        an = adj[new]
        an[new] = an.get(new, 0) + 1
        deg = self._degree
        deg[old] -= 1
        deg[new] += 1
        version = self._version
        dirty = self._csr_dirty
        self._stamp += 1
        version[old] = self._stamp
        dirty.add(old)
        self._stamp += 1
        version[new] = self._stamp
        dirty.add(new)

    def move_pair_endpoint(self, old: NodeId, new: NodeId, other: NodeId) -> None:
        """Transfer one virtual-edge endpoint from ``old`` to ``new``
        where ``other`` hosts the far endpoint, preserving the overlay's
        contraction conventions (an edge whose endpoints coincide is
        self-loop weight 2).  Equivalent to the remove+add pair the
        general path performs, in one combined update of the adjacency
        counters and cached aggregates."""
        adj = self._adj
        deg = self._degree
        dict_del = dict.__delitem__  # skip Counter's python-level override
        touched_other = False
        if old == other:
            ao = adj[old]
            ao[old] -= 2
            if ao[old] == 0:
                dict_del(ao, old)
            deg[old] -= 2
            self._edge_units -= 2
        else:
            ao = adj[old]
            at = adj[other]
            m = ao[other] - 1
            if m == 0:
                dict_del(ao, other)
                dict_del(at, old)
                self._connections -= 1
                self.topology_changes += 1
            else:
                ao[other] = m
                at[old] = m
            deg[old] -= 1
            deg[other] -= 1
            self._edge_units -= 1
            touched_other = True
        if new == other:
            an = adj[new]
            an[new] = an.get(new, 0) + 2
            deg[new] += 2
            self._edge_units += 2
        else:
            an = adj[new]
            at = adj[other]
            prior = an.get(other, 0)
            if prior == 0:
                self._connections += 1
                self.topology_changes += 1
            an[other] = prior + 1
            at[new] = at.get(new, 0) + 1
            deg[new] += 1
            deg[other] += 1
            self._edge_units += 1
            touched_other = True
        stamp = self._stamp
        version = self._version
        dirty = self._csr_dirty
        stamp += 1
        version[old] = stamp
        dirty.add(old)
        stamp += 1
        version[new] = stamp
        dirty.add(new)
        if touched_other:
            stamp += 1
            version[other] = stamp
            dirty.add(other)
        self._stamp = stamp

    def contract_into(self, u: NodeId, v: NodeId) -> None:
        """Re-attach every edge of ``u`` to ``v`` and remove ``u`` -- the
        degree-preserving contraction the batch engine uses when ``v``
        adopts a deleted node's entire vertex set in one step.

        Conventions follow the overlay's pair mapping: a former ``u``--``v``
        edge of multiplicity ``m`` becomes ``2m`` units of self-loop
        weight at ``v`` (both endpoints now coincide), self-loops move
        unchanged, and other incident edges keep their multiplicity.
        Equivalent to moving the vertices one at a time, in O(connections
        of u) counter updates instead of O(load * 6) edge operations.
        """
        if u == v:
            raise TopologyError("cannot contract a node into itself")
        nbrs = self._require(u)
        av = self._require(v)
        # v keeps every endpoint u had, so its degree grows by exactly
        # degree(u): the collapsed u--v pair (m units) re-appears as 2m
        # units of self-loop weight, of which m replace v's own lost
        # endpoint and m carry u's.
        self._degree[v] += self._degree[u]
        adj = self._adj
        version = self._version
        dirty = self._csr_dirty
        dict_del = dict.__delitem__
        for w, m in nbrs.items():
            if m <= 0:
                continue
            if w == u:
                # u's self-loop weight moves unchanged (never a connection)
                av[v] = av.get(v, 0) + m
            elif w == v:
                # the u--v connection collapses into self-loop weight 2m
                dict_del(av, u)
                av[v] = av.get(v, 0) + 2 * m
                self._edge_units += m  # m pair units become 2m loop units
                self._connections -= 1
                self.topology_changes += 1
            else:
                aw = adj[w]
                dict_del(aw, u)
                self._connections -= 1
                self.topology_changes += 1  # (u, w) connection destroyed
                prior = av.get(w, 0)
                if prior == 0:
                    self._connections += 1
                    self.topology_changes += 1  # (v, w) connection created
                av[w] = prior + m
                aw[v] = aw.get(v, 0) + m
                self._stamp += 1
                version[w] = self._stamp
                dirty.add(w)
        dict_del(adj, u)
        self._forget_node(u)
        self._touch(v)
        self.topology_changes += 1
        for listener in self.node_listeners:
            listener(-1)

    def multiplicity(self, u: NodeId, v: NodeId) -> int:
        return self._require(u)[v]

    def degree(self, u: NodeId) -> int:
        """Sum of incident multiplicities (self-loop weight counted as
        stored, preserving ``degree = 3 * Load``); O(1) from the cached
        counter."""
        self._require(u)
        return self._degree[u]

    def connection_count(self, u: NodeId) -> int:
        """Number of distinct real connections (what a deployed node's
        file-descriptor table would show)."""
        return sum(1 for v, m in self._require(u).items() if v != u and m > 0)

    def distinct_neighbors(self, u: NodeId) -> list[NodeId]:
        return [v for v, m in self._require(u).items() if v != u and m > 0]

    def neighbor_multiplicities(self, u: NodeId) -> list[tuple[NodeId, int]]:
        """Neighbors with multiplicities, self-loop included (for walks)."""
        return [(v, m) for v, m in self._require(u).items() if m > 0]

    def neighbor_cdf(self, u: NodeId) -> tuple[list[NodeId], list[int], int]:
        """``(neighbors, cumulative multiplicities, total)`` sorted by
        neighbor id, cached under the node's version stamp.  The walk
        sampler bisects the cumulative array, so a hop is O(log degree)
        with the O(degree log degree) build paid once per topology change
        at the node."""
        try:
            stamp = self._version[u]
        except KeyError:
            raise TopologyError(f"node {u} does not exist") from None
        entry = self._cdf_cache.get(u)
        if entry is not None and entry[0] == stamp:
            return entry[1], entry[2], entry[3]
        items = sorted((v, m) for v, m in self._adj[u].items() if m > 0)
        neighbors = [v for v, _ in items]
        cumulative: list[int] = []
        total = 0
        for _, m in items:
            total += m
            cumulative.append(total)
        self._cdf_cache[u] = (stamp, neighbors, cumulative, total)
        return neighbors, cumulative, total

    @property
    def csr_dirty_count(self) -> int:
        """Rows the next CSR patch must re-emit (0 == the cached matrix
        is current); the wave engine's auto heuristic reads this to
        decide whether a wave amortizes the patch."""
        return len(self._csr_dirty)

    @property
    def num_edge_units(self) -> int:
        """Total multiplicity over undirected edges (self-loop weight
        counted once); O(1) from the cached total."""
        return self._edge_units

    @property
    def num_connections(self) -> int:
        """Number of distinct node pairs with at least one edge; O(1)."""
        return self._connections

    # ------------------------------------------------------------------
    # cache oracle
    # ------------------------------------------------------------------
    def verify_caches(self) -> None:
        """Recompute every cached aggregate from the adjacency structure
        and raise :class:`TopologyError` on any drift (the from-scratch
        oracle behind the churn property tests)."""
        if sorted(self._nodes) != sorted(self._adj):
            raise TopologyError("live-node array diverged from adjacency keys")
        for pos, u in enumerate(self._nodes):
            if self._node_pos.get(u) != pos:
                raise TopologyError(f"node-position index stale at {u}")
        edge_units = 0
        connections = 0
        for u, nbrs in self._adj.items():
            degree = sum(m for m in nbrs.values() if m > 0)
            if self._degree.get(u) != degree:
                raise TopologyError(
                    f"cached degree {self._degree.get(u)} != {degree} at node {u}"
                )
            for v, m in nbrs.items():
                if m <= 0:
                    continue
                if v == u:
                    edge_units += m
                elif v > u:
                    edge_units += m
                    connections += 1
        if self._edge_units != edge_units:
            raise TopologyError(
                f"cached edge units {self._edge_units} != {edge_units}"
            )
        if self._connections != connections:
            raise TopologyError(
                f"cached connection count {self._connections} != {connections}"
            )
        for u in self._adj:
            neighbors, cumulative, total = self.neighbor_cdf(u)
            items = sorted((v, m) for v, m in self._adj[u].items() if m > 0)
            expect_cum: list[int] = []
            acc = 0
            for _, m in items:
                acc += m
                expect_cum.append(acc)
            if (
                neighbors != [v for v, _ in items]
                or cumulative != expect_cum
                or total != acc
            ):
                raise TopologyError(f"neighbor CDF cache stale at node {u}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bfs_distances(self, src: NodeId) -> dict[NodeId, int]:
        self._require(src)
        dist = {src: 0}
        q: deque[NodeId] = deque([src])
        while q:
            u = q.popleft()
            for v in self.distinct_neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    q.append(v)
        return dist

    def eccentricity(self, src: NodeId) -> int:
        dist = self.bfs_distances(src)
        if len(dist) != self.num_nodes:
            raise TopologyError("graph is disconnected")
        return max(dist.values())

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        src = next(iter(self._adj))
        return len(self.bfs_distances(src)) == self.num_nodes

    def survivors_connected(self, victims: set[NodeId]) -> bool:
        """Would the graph stay connected if ``victims`` disappeared?

        Adjacency-delta BFS: clean rows of the *cached* (possibly stale)
        CSR are expanded vectorized, while rows dirtied since the cache
        was built -- including joined and departed nodes -- are walked
        through the live adjacency dicts.  Because every multiplicity
        change stamps both endpoints dirty, a clean row is guaranteed
        current and can only reference nodes that still hold a CSR
        position, so the hybrid traversal is exact without paying the
        CSR patch for heal-dirtied rows (the former cost of batch
        deletion validation).  The dirty set is left untouched for the
        next consumer that genuinely needs the patched matrix."""
        adj = self._adj
        n_live = len(adj)
        if n_live == 0:
            return False
        cache = self._csr_cache
        if cache is None or 2 * len(self._csr_dirty) > n_live:
            # No usable cache (or the delta would dominate): build once,
            # then every row is clean and the loop below is pure numpy.
            self.to_sparse_adjacency()
            cache = self._csr_cache
        order_arr, A = cache[1], cache[5]
        n_csr = order_arr.shape[0]
        indptr, indices = A.indptr, A.indices
        dirty_live = [u for u in self._csr_dirty if u in adj]
        survivors = n_live - sum(1 for v in victims if v in adj)
        if survivors <= 0:
            return False

        def positions_of(ids: list[NodeId]) -> np.ndarray:
            """CSR row positions of the ids that hold one (joined nodes
            that postdate the cache are dropped)."""
            arr = np.asarray(ids, dtype=np.int64)
            p = np.searchsorted(order_arr, arr)
            ok = (p < n_csr) & (order_arr[np.minimum(p, n_csr - 1)] == arr)
            return p[ok]

        visited = np.zeros(n_csr, dtype=bool)
        # Departed nodes keep a stale row; clean rows never reference
        # them (their departure dirtied every neighbor), so marking them
        # visited only guards the dirty-row expansions below.
        departed = [u for u in self._csr_dirty if u not in adj]
        if departed:
            visited[positions_of(departed)] = True
        if victims:
            visited[positions_of(list(victims))] = True
        dirty_mask = np.zeros(n_csr, dtype=bool)
        if dirty_live:
            dirty_mask[positions_of(dirty_live)] = True
        dirty_live_set = set(dirty_live)
        dict_visited: set[NodeId] = set()

        start = next(u for u in self._nodes if u not in victims)
        count = 1
        frontier_dirty: list[NodeId] = []
        if start in dirty_live_set:
            dict_visited.add(start)
            frontier_dirty.append(start)
            visited[positions_of([start])] = True
            frontier = np.empty(0, dtype=np.int64)
        else:
            frontier = positions_of([start])
            visited[frontier] = True

        while frontier.size or frontier_dirty:
            next_clean: list[np.ndarray] = []
            if frontier.size:
                # vectorized expansion of the clean frontier rows
                row_starts = indptr[frontier]
                counts = indptr[frontier + 1] - row_starts
                total = int(counts.sum())
                if total:
                    cum = np.cumsum(counts)
                    offsets = np.arange(total) + np.repeat(
                        row_starts - np.concatenate(([0], cum[:-1])), counts
                    )
                    nbrs = indices[offsets]
                    nbrs = np.unique(nbrs[~visited[nbrs]])
                    if nbrs.size:
                        visited[nbrs] = True
                        hit_dirty = dirty_mask[nbrs]
                        for p in nbrs[hit_dirty].tolist():
                            u = int(order_arr[p])
                            dict_visited.add(u)
                            frontier_dirty.append(u)
                            count += 1
                        clean = nbrs[~hit_dirty]
                        if clean.size:
                            next_clean.append(clean)
                            count += int(clean.size)
            # dict expansion of the dirty frontier rows (live adjacency);
            # clean neighbors are collected and resolved to positions in
            # one batched searchsorted per level, not one call per edge
            clean_candidates: list[NodeId] = []
            dirty_next: list[NodeId] = []
            for u in frontier_dirty:
                for v, m in adj[u].items():
                    if m <= 0 or v == u or v in victims:
                        continue
                    if v in dirty_live_set:
                        if v not in dict_visited:
                            dict_visited.add(v)
                            dirty_next.append(v)
                            count += 1
                    else:
                        clean_candidates.append(v)
            if dirty_next:
                visited[positions_of(dirty_next)] = True
            if clean_candidates:
                # clean nodes always hold a CSR position (a node without
                # one postdates the cache, which makes it dirty)
                cpos = np.unique(
                    np.searchsorted(
                        order_arr,
                        np.asarray(clean_candidates, dtype=np.int64),
                    )
                )
                fresh = cpos[~visited[cpos]]
                if fresh.size:
                    visited[fresh] = True
                    next_clean.append(fresh)
                    count += int(fresh.size)
            frontier = (
                np.concatenate(next_clean) if next_clean
                else np.empty(0, dtype=np.int64)
            )
            frontier_dirty = dirty_next
        return count == survivors

    def max_degree(self) -> int:
        return max(self._degree.values(), default=0)

    def to_sparse_adjacency(
        self, force_rebuild: bool = False
    ) -> tuple[list[NodeId], sp.csr_matrix]:
        """``(ordering, A)`` with the multigraph conventions preserved:
        off-diagonal entries are multiplicities, diagonal entries are the
        stored self-loop weights.

        The matrix is cached and *patched* between calls: every mutation
        records its endpoints in a dirty set, and a repeated call drops
        the dirty rows from the cached coordinate arrays (vectorized) and
        re-emits only those rows from the adjacency structure.  Because
        every multiplicity change touches both endpoints, entries whose
        row node is clean are guaranteed current, so the patch is exact
        -- :meth:`verify_sparse_cache` audits it against a from-scratch
        build.  Callers must treat the returned matrix as read-only.
        """
        cache = self._csr_cache
        dirty = self._csr_dirty
        # A patch walks only the dirty adjacency rows in Python; past
        # ~half the graph the full rebuild is no slower and resets the
        # arrays to minimal size.
        if force_rebuild or cache is None or 2 * len(dirty) > self.num_nodes:
            return self._csr_rebuild()
        if not dirty:
            return cache[0], cache[5]
        return self._csr_patch()

    def _csr_emit_rows(
        self, nodes: Iterable[NodeId]
    ) -> tuple[list[NodeId], list[NodeId], list[float]]:
        """Coordinate triplets for the given nodes' rows, grouped per
        node and sorted by column id *within* each row (callers pass
        nodes in ascending order to keep the cached arrays sorted by row
        node id).  The within-row order matters: it makes each CSR row's
        cumulative-multiplicity slice identical to the node's
        :meth:`neighbor_cdf`, so the lockstep wave engine and the scalar
        sampler map the same uniform draw to the same neighbor."""
        rid: list[NodeId] = []
        cid: list[NodeId] = []
        dat: list[float] = []
        for u in nodes:
            nbrs = self._adj.get(u)
            if nbrs is None:
                continue  # departed node: its cached entries are dropped
            for v in sorted(nbrs):
                m = nbrs[v]
                if m > 0:
                    rid.append(u)
                    cid.append(v)
                    dat.append(float(m))
        return rid, cid, dat

    def _csr_finish(
        self,
        order: list[NodeId],
        order_arr: np.ndarray,
        rid: np.ndarray,
        cid: np.ndarray,
        dat: np.ndarray,
    ) -> tuple[list[NodeId], sp.csr_matrix]:
        """Assemble the CSR directly from triplets sorted by row node id:
        node ids map to row positions through a dense lookup table
        (ids are bounded by the insertion history, so the table is a
        fancy-index O(1) per entry), and row pointers come from a
        bincount over row positions -- scipy never has to re-sort or
        coalesce a COO intermediate.  ``order``/``order_arr`` are the
        sorted live node ids, computed incrementally by the patch path
        (merge) and from scratch by the rebuild path."""
        n = len(order)
        if n:
            base = int(order_arr[0])
            span = int(order_arr[-1]) - base + 1
            if span <= max(1024, 4 * n):
                # Dense offset LUT: O(1) per entry.  Offsetting by the
                # smallest live id keeps the table sized by the id *span*,
                # not the absolute ids -- a sharded partition based at
                # i * 2^40 has the same span as an unsharded network.
                lut = np.empty(span, dtype=np.int64)
                lut[order_arr - base] = np.arange(n, dtype=np.int64)
                rows = lut[rid - base]
                indices = lut[cid - base]
            else:
                # Sparse ids (e.g. client-pinned ids far into a shard's
                # region): binary search instead of a span-sized table.
                # Exact because every endpoint id is live, hence present
                # in ``order_arr``.
                rows = np.searchsorted(order_arr, rid)
                indices = np.searchsorted(order_arr, cid)
        else:
            rows = indices = np.empty(0, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        A = sp.csr_matrix((dat, indices, indptr), shape=(n, n))
        self._csr_cache = (order, order_arr, rid, cid, dat, A)
        self._csr_dirty.clear()
        return order, A

    def _csr_rebuild(self) -> tuple[list[NodeId], sp.csr_matrix]:
        order = sorted(self._adj)
        rid, cid, dat = self._csr_emit_rows(order)
        return self._csr_finish(
            order,
            np.asarray(order, dtype=np.int64),
            np.asarray(rid, dtype=np.int64),
            np.asarray(cid, dtype=np.int64),
            np.asarray(dat, dtype=np.float64),
        )

    def _csr_patch(self) -> tuple[list[NodeId], sp.csr_matrix]:
        _order, order_arr, rid, cid, dat, _A = self._csr_cache
        dirty = self._csr_dirty
        dirty_arr = np.fromiter(dirty, count=len(dirty), dtype=np.int64)
        keep = ~np.isin(rid, dirty_arr)
        rid, cid, dat = rid[keep], cid[keep], dat[keep]
        dirty_sorted = sorted(dirty)
        add_r, add_c, add_d = self._csr_emit_rows(dirty_sorted)
        if add_r:
            at = np.searchsorted(rid, add_r)
            rid = np.insert(rid, at, add_r)
            cid = np.insert(cid, at, add_c)
            dat = np.insert(dat, at, add_d)
        # The ordering is nearly sorted: the retained rows are already in
        # ascending id order, so instead of re-sorting all live ids
        # (the former Timsort over the whole key list -- the remaining
        # O(n log n) term at large n) merge the retained order with the
        # sorted dirty re-emissions.
        retained = order_arr[~np.isin(order_arr, dirty_arr)]
        joined = np.asarray(
            [u for u in dirty_sorted if u in self._adj], dtype=np.int64
        )
        if joined.size:
            order_arr = np.insert(retained, np.searchsorted(retained, joined), joined)
        else:
            order_arr = retained
        return self._csr_finish(order_arr.tolist(), order_arr, rid, cid, dat)

    def csr_wave_view(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sampling view for the lockstep wave engine:
        ``(order_arr, indptr, indices, cumbase)`` over the incrementally
        patched CSR, where ``cumbase`` is the exclusive prefix sum of the
        multiplicity data (length ``nnz + 1``; ``cumbase[indptr[r]]`` is
        row ``r``'s base and ``cumbase[indptr[r+1]] - base`` its total).

        Rows are emitted sorted by column id and the id->position lookup
        is monotone, so ``cumbase`` sliced per row is *numerically
        identical* to :meth:`neighbor_cdf`'s cumulative array -- the
        vectorized sampler and the scalar reference map the same uniform
        to the same neighbor.  Memoized per assembled CSR object."""
        _order, A = self.to_sparse_adjacency()
        view = self._wave_view
        if view is not None and view[0] is A:
            return view[1]
        cumbase = np.zeros(A.data.shape[0] + 1, dtype=np.float64)
        np.cumsum(A.data, out=cumbase[1:])
        out = (self._csr_cache[1], A.indptr, A.indices, cumbase)
        self._wave_view = (A, out)
        return out

    def verify_sparse_cache(self) -> None:
        """Audit the incremental CSR against a from-scratch build (the
        oracle behind the churn property tests).  A no-op while nothing
        is cached."""
        if self._csr_cache is None:
            return
        order, A = self.to_sparse_adjacency()
        expect_order = sorted(self._adj)
        if order != expect_order:
            raise TopologyError("sparse adjacency ordering diverged")
        index = {u: i for i, u in enumerate(expect_order)}
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for u, nbrs in self._adj.items():
            i = index[u]
            for v, m in nbrs.items():
                if m > 0:
                    rows.append(i)
                    cols.append(index[v])
                    data.append(float(m))
        n = len(expect_order)
        B = sp.csr_matrix(
            (
                np.asarray(data),
                (
                    np.asarray(rows, dtype=np.int64),
                    np.asarray(cols, dtype=np.int64),
                ),
            ),
            shape=(n, n),
        )
        diff = (A - B).tocoo()
        if diff.nnz and bool(np.any(diff.data != 0)):
            raise TopologyError(
                "sparse adjacency cache diverged from from-scratch rebuild"
            )
