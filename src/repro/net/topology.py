"""The real network as a dynamic undirected multigraph.

Multiplicities matter: the real network is the image of the virtual
p-cycle under the balanced mapping, so two nodes may be connected by
several parallel virtual edges, and a node may carry *self-loop weight*
(virtual self-loops contribute 1; virtual edges with both endpoints at
the same node contribute 2, preserving ``degree(u) = 3 * Load(u)``).

A *topology change* is counted exactly when an actual connection appears
or disappears -- i.e. a pair multiplicity transitions 0 <-> positive -- or
a node joins/leaves; raising the multiplicity of an existing connection
is bookkeeping on an existing link, not a new connection.  Self-loops are
never connections.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from repro.errors import TopologyError
from repro.types import NodeId


class DynamicMultigraph:
    """Undirected multigraph with weighted self-loops and change counting."""

    __slots__ = ("_adj", "topology_changes")

    def __init__(self) -> None:
        self._adj: dict[NodeId, Counter[NodeId]] = {}
        #: cumulative count of connection creations/destructions + node events
        self.topology_changes: int = 0

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, u: NodeId) -> None:
        if u in self._adj:
            raise TopologyError(f"node {u} already exists")
        self._adj[u] = Counter()
        self.topology_changes += 1

    def remove_node(self, u: NodeId) -> None:
        """Remove ``u``; requires all its edges to have been removed first
        (the healing logic moves the virtual vertices away, which clears
        the derived edges)."""
        nbrs = self._require(u)
        if any(m > 0 for m in nbrs.values()):
            raise TopologyError(f"node {u} still has incident edges: {dict(nbrs)}")
        del self._adj[u]
        self.topology_changes += 1

    def drop_node_with_edges(self, u: NodeId) -> Counter[NodeId]:
        """Adversarial deletion: remove ``u`` along with all incident
        edges, returning the neighbor multiplicities that were lost (the
        neighbors are aware of the attack, Section 2)."""
        nbrs = Counter(self._require(u))
        for v, mult in nbrs.items():
            if v == u:
                continue
            del self._adj[v][u]
            self.topology_changes += 1  # the (u, v) connection is destroyed
        del self._adj[u]
        self.topology_changes += 1
        return nbrs

    def has_node(self, u: NodeId) -> bool:
        return u in self._adj

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def _require(self, u: NodeId) -> Counter[NodeId]:
        try:
            return self._adj[u]
        except KeyError:
            raise TopologyError(f"node {u} does not exist") from None

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: NodeId, v: NodeId, mult: int = 1) -> None:
        """Add ``mult`` units of multiplicity.  For self-loops the caller
        chooses the degree contribution (1 for virtual self-loops, 2 for
        contracted pairs)."""
        if mult <= 0:
            raise TopologyError(f"multiplicity must be positive, got {mult}")
        au = self._require(u)
        av = self._require(v)
        if u == v:
            au[u] += mult
            return  # self-loops are not connections
        if au[v] == 0:
            self.topology_changes += 1
        au[v] += mult
        av[u] += mult

    def remove_edge(self, u: NodeId, v: NodeId, mult: int = 1) -> None:
        if mult <= 0:
            raise TopologyError(f"multiplicity must be positive, got {mult}")
        au = self._require(u)
        av = self._require(v)
        if au[v] < mult:
            raise TopologyError(
                f"edge ({u}, {v}) has multiplicity {au[v]} < {mult}"
            )
        if u == v:
            au[u] -= mult
            if au[u] == 0:
                del au[u]
            return
        au[v] -= mult
        av[u] -= mult
        if au[v] == 0:
            del au[v]
            del av[u]
            self.topology_changes += 1

    def multiplicity(self, u: NodeId, v: NodeId) -> int:
        return self._require(u)[v]

    def degree(self, u: NodeId) -> int:
        """Sum of incident multiplicities (self-loop weight counted as
        stored, preserving ``degree = 3 * Load``)."""
        return sum(self._require(u).values())

    def connection_count(self, u: NodeId) -> int:
        """Number of distinct real connections (what a deployed node's
        file-descriptor table would show)."""
        return sum(1 for v, m in self._require(u).items() if v != u and m > 0)

    def distinct_neighbors(self, u: NodeId) -> list[NodeId]:
        return [v for v, m in self._require(u).items() if v != u and m > 0]

    def neighbor_multiplicities(self, u: NodeId) -> list[tuple[NodeId, int]]:
        """Neighbors with multiplicities, self-loop included (for walks)."""
        return [(v, m) for v, m in self._require(u).items() if m > 0]

    @property
    def num_edge_units(self) -> int:
        """Total multiplicity over undirected edges (self-loop weight
        counted once)."""
        total = 0
        for u, nbrs in self._adj.items():
            for v, m in nbrs.items():
                if v == u:
                    total += 2 * m  # counted once overall => weight as two halves
                elif v > u:
                    total += 2 * m
        return total // 2

    @property
    def num_connections(self) -> int:
        """Number of distinct node pairs with at least one edge."""
        total = 0
        for u, nbrs in self._adj.items():
            for v, m in nbrs.items():
                if v > u and m > 0:
                    total += 1
        return total

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bfs_distances(self, src: NodeId) -> dict[NodeId, int]:
        self._require(src)
        dist = {src: 0}
        q: deque[NodeId] = deque([src])
        while q:
            u = q.popleft()
            for v in self.distinct_neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    q.append(v)
        return dist

    def eccentricity(self, src: NodeId) -> int:
        dist = self.bfs_distances(src)
        if len(dist) != self.num_nodes:
            raise TopologyError("graph is disconnected")
        return max(dist.values())

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        src = next(iter(self._adj))
        return len(self.bfs_distances(src)) == self.num_nodes

    def max_degree(self) -> int:
        return max((self.degree(u) for u in self._adj), default=0)

    def to_sparse_adjacency(self) -> tuple[list[NodeId], sp.csr_matrix]:
        """``(ordering, A)`` with the multigraph conventions preserved:
        off-diagonal entries are multiplicities, diagonal entries are the
        stored self-loop weights."""
        order = sorted(self._adj)
        index = {u: i for i, u in enumerate(order)}
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for u, nbrs in self._adj.items():
            i = index[u]
            for v, m in nbrs.items():
                if m <= 0:
                    continue
                rows.append(i)
                cols.append(index[v])
                data.append(float(m))
        n = len(order)
        A = sp.csr_matrix(
            (np.array(data), (np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64))),
            shape=(n, n),
        )
        return order, A
