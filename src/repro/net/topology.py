"""The real network as a dynamic undirected multigraph.

Multiplicities matter: the real network is the image of the virtual
p-cycle under the balanced mapping, so two nodes may be connected by
several parallel virtual edges, and a node may carry *self-loop weight*
(virtual self-loops contribute 1; virtual edges with both endpoints at
the same node contribute 2, preserving ``degree(u) = 3 * Load(u)``).

A *topology change* is counted exactly when an actual connection appears
or disappears -- i.e. a pair multiplicity transitions 0 <-> positive -- or
a node joins/leaves; raising the multiplicity of an existing connection
is bookkeeping on an existing link, not a new connection.  Self-loops are
never connections.

Aggregates are maintained *incrementally* so the churn hot path never
scans the node set: a live-node array backs O(1) uniform sampling,
per-node degree counters and the edge-unit/connection totals are updated
in O(1) per mutation, and a per-node version stamp lazily invalidates the
cached neighbor CDFs that :mod:`repro.net.walks` samples from.
:meth:`DynamicMultigraph.verify_caches` recomputes everything from the
adjacency structure and is the oracle the invariant tests run under
churn.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from itertools import count
from typing import Callable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.errors import TopologyError
from repro.types import NodeId


class DynamicMultigraph:
    """Undirected multigraph with weighted self-loops, change counting,
    and O(1) cached aggregates (degrees, edge units, node sampling)."""

    __slots__ = (
        "_adj",
        "topology_changes",
        "_nodes",
        "_node_pos",
        "_degree",
        "_edge_units",
        "_connections",
        "_version",
        "_stamp",
        "_cdf_cache",
        "node_listeners",
    )

    def __init__(self) -> None:
        self._adj: dict[NodeId, Counter[NodeId]] = {}
        #: cumulative count of connection creations/destructions + node events
        self.topology_changes: int = 0
        #: live nodes in insertion order with swap-remove deletion -- the
        #: backing array for O(1) uniform sampling
        self._nodes: list[NodeId] = []
        self._node_pos: dict[NodeId, int] = {}
        self._degree: dict[NodeId, int] = {}
        self._edge_units: int = 0
        self._connections: int = 0
        #: per-node version stamps; bumped whenever a node's incident
        #: multiplicities change, invalidating its cached neighbor CDF
        self._version: dict[NodeId, int] = {}
        self._stamp = count()
        self._cdf_cache: dict[NodeId, tuple[int, list[NodeId], list[int], int]] = {}
        #: callbacks ``f(delta)`` fired on node join (+1) / leave (-1);
        #: the coordinator's size counter consumes these deltas
        self.node_listeners: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, u: NodeId) -> None:
        if u in self._adj:
            raise TopologyError(f"node {u} already exists")
        self._adj[u] = Counter()
        self._node_pos[u] = len(self._nodes)
        self._nodes.append(u)
        self._degree[u] = 0
        self._version[u] = next(self._stamp)
        self.topology_changes += 1
        for listener in self.node_listeners:
            listener(+1)

    def remove_node(self, u: NodeId) -> None:
        """Remove ``u``; requires all its edges to have been removed first
        (the healing logic moves the virtual vertices away, which clears
        the derived edges)."""
        nbrs = self._require(u)
        if any(m > 0 for m in nbrs.values()):
            raise TopologyError(f"node {u} still has incident edges: {dict(nbrs)}")
        del self._adj[u]
        self._forget_node(u)
        self.topology_changes += 1
        for listener in self.node_listeners:
            listener(-1)

    def drop_node_with_edges(self, u: NodeId) -> Counter[NodeId]:
        """Adversarial deletion: remove ``u`` along with all incident
        edges, returning the neighbor multiplicities that were lost (the
        neighbors are aware of the attack, Section 2)."""
        nbrs = Counter(self._require(u))
        for v, mult in nbrs.items():
            if v == u:
                self._edge_units -= mult
                continue
            del self._adj[v][u]
            self._degree[v] -= mult
            self._edge_units -= mult
            self._connections -= 1
            self._touch(v)
            self.topology_changes += 1  # the (u, v) connection is destroyed
        del self._adj[u]
        self._forget_node(u)
        self.topology_changes += 1
        for listener in self.node_listeners:
            listener(-1)
        return nbrs

    def _forget_node(self, u: NodeId) -> None:
        """Drop ``u`` from every cached aggregate (swap-remove from the
        sampling array keeps deletion O(1))."""
        pos = self._node_pos.pop(u)
        last = self._nodes.pop()
        if last != u:
            self._nodes[pos] = last
            self._node_pos[last] = pos
        del self._degree[u]
        del self._version[u]
        self._cdf_cache.pop(u, None)

    def has_node(self, u: NodeId) -> bool:
        return u in self._adj

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def random_node(self, rng: random.Random) -> NodeId:
        """Uniform O(1) sample from the live-node array.  Deterministic
        for a fixed seed and operation history (the array order is a pure
        function of the join/leave sequence)."""
        if not self._nodes:
            raise TopologyError("cannot sample from an empty graph")
        return self._nodes[rng.randrange(len(self._nodes))]

    def _require(self, u: NodeId) -> Counter[NodeId]:
        try:
            return self._adj[u]
        except KeyError:
            raise TopologyError(f"node {u} does not exist") from None

    def _touch(self, u: NodeId) -> None:
        self._version[u] = next(self._stamp)

    def node_version(self, u: NodeId) -> int:
        """Monotone stamp of ``u``'s incident edge state (cache keys)."""
        self._require(u)
        return self._version[u]

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: NodeId, v: NodeId, mult: int = 1) -> None:
        """Add ``mult`` units of multiplicity.  For self-loops the caller
        chooses the degree contribution (1 for virtual self-loops, 2 for
        contracted pairs)."""
        if mult <= 0:
            raise TopologyError(f"multiplicity must be positive, got {mult}")
        au = self._require(u)
        av = self._require(v)
        self._edge_units += mult
        if u == v:
            au[u] += mult
            self._degree[u] += mult
            self._touch(u)
            return  # self-loops are not connections
        if au[v] == 0:
            self.topology_changes += 1
            self._connections += 1
        au[v] += mult
        av[u] += mult
        self._degree[u] += mult
        self._degree[v] += mult
        self._touch(u)
        self._touch(v)

    def remove_edge(self, u: NodeId, v: NodeId, mult: int = 1) -> None:
        if mult <= 0:
            raise TopologyError(f"multiplicity must be positive, got {mult}")
        au = self._require(u)
        av = self._require(v)
        if au[v] < mult:
            raise TopologyError(
                f"edge ({u}, {v}) has multiplicity {au[v]} < {mult}"
            )
        self._edge_units -= mult
        if u == v:
            au[u] -= mult
            if au[u] == 0:
                del au[u]
            self._degree[u] -= mult
            self._touch(u)
            return
        au[v] -= mult
        av[u] -= mult
        self._degree[u] -= mult
        self._degree[v] -= mult
        self._touch(u)
        self._touch(v)
        if au[v] == 0:
            del au[v]
            del av[u]
            self.topology_changes += 1
            self._connections -= 1

    def multiplicity(self, u: NodeId, v: NodeId) -> int:
        return self._require(u)[v]

    def degree(self, u: NodeId) -> int:
        """Sum of incident multiplicities (self-loop weight counted as
        stored, preserving ``degree = 3 * Load``); O(1) from the cached
        counter."""
        self._require(u)
        return self._degree[u]

    def connection_count(self, u: NodeId) -> int:
        """Number of distinct real connections (what a deployed node's
        file-descriptor table would show)."""
        return sum(1 for v, m in self._require(u).items() if v != u and m > 0)

    def distinct_neighbors(self, u: NodeId) -> list[NodeId]:
        return [v for v, m in self._require(u).items() if v != u and m > 0]

    def neighbor_multiplicities(self, u: NodeId) -> list[tuple[NodeId, int]]:
        """Neighbors with multiplicities, self-loop included (for walks)."""
        return [(v, m) for v, m in self._require(u).items() if m > 0]

    def neighbor_cdf(self, u: NodeId) -> tuple[list[NodeId], list[int], int]:
        """``(neighbors, cumulative multiplicities, total)`` sorted by
        neighbor id, cached under the node's version stamp.  The walk
        sampler bisects the cumulative array, so a hop is O(log degree)
        with the O(degree log degree) build paid once per topology change
        at the node."""
        stamp = self.node_version(u)
        entry = self._cdf_cache.get(u)
        if entry is not None and entry[0] == stamp:
            return entry[1], entry[2], entry[3]
        items = sorted((v, m) for v, m in self._adj[u].items() if m > 0)
        neighbors = [v for v, _ in items]
        cumulative: list[int] = []
        total = 0
        for _, m in items:
            total += m
            cumulative.append(total)
        self._cdf_cache[u] = (stamp, neighbors, cumulative, total)
        return neighbors, cumulative, total

    @property
    def num_edge_units(self) -> int:
        """Total multiplicity over undirected edges (self-loop weight
        counted once); O(1) from the cached total."""
        return self._edge_units

    @property
    def num_connections(self) -> int:
        """Number of distinct node pairs with at least one edge; O(1)."""
        return self._connections

    # ------------------------------------------------------------------
    # cache oracle
    # ------------------------------------------------------------------
    def verify_caches(self) -> None:
        """Recompute every cached aggregate from the adjacency structure
        and raise :class:`TopologyError` on any drift (the from-scratch
        oracle behind the churn property tests)."""
        if sorted(self._nodes) != sorted(self._adj):
            raise TopologyError("live-node array diverged from adjacency keys")
        for pos, u in enumerate(self._nodes):
            if self._node_pos.get(u) != pos:
                raise TopologyError(f"node-position index stale at {u}")
        edge_units = 0
        connections = 0
        for u, nbrs in self._adj.items():
            degree = sum(m for m in nbrs.values() if m > 0)
            if self._degree.get(u) != degree:
                raise TopologyError(
                    f"cached degree {self._degree.get(u)} != {degree} at node {u}"
                )
            for v, m in nbrs.items():
                if m <= 0:
                    continue
                if v == u:
                    edge_units += m
                elif v > u:
                    edge_units += m
                    connections += 1
        if self._edge_units != edge_units:
            raise TopologyError(
                f"cached edge units {self._edge_units} != {edge_units}"
            )
        if self._connections != connections:
            raise TopologyError(
                f"cached connection count {self._connections} != {connections}"
            )
        for u in self._adj:
            neighbors, cumulative, total = self.neighbor_cdf(u)
            items = sorted((v, m) for v, m in self._adj[u].items() if m > 0)
            expect_cum: list[int] = []
            acc = 0
            for _, m in items:
                acc += m
                expect_cum.append(acc)
            if (
                neighbors != [v for v, _ in items]
                or cumulative != expect_cum
                or total != acc
            ):
                raise TopologyError(f"neighbor CDF cache stale at node {u}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bfs_distances(self, src: NodeId) -> dict[NodeId, int]:
        self._require(src)
        dist = {src: 0}
        q: deque[NodeId] = deque([src])
        while q:
            u = q.popleft()
            for v in self.distinct_neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    q.append(v)
        return dist

    def eccentricity(self, src: NodeId) -> int:
        dist = self.bfs_distances(src)
        if len(dist) != self.num_nodes:
            raise TopologyError("graph is disconnected")
        return max(dist.values())

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        src = next(iter(self._adj))
        return len(self.bfs_distances(src)) == self.num_nodes

    def max_degree(self) -> int:
        return max(self._degree.values(), default=0)

    def to_sparse_adjacency(self) -> tuple[list[NodeId], sp.csr_matrix]:
        """``(ordering, A)`` with the multigraph conventions preserved:
        off-diagonal entries are multiplicities, diagonal entries are the
        stored self-loop weights."""
        order = sorted(self._adj)
        index = {u: i for i, u in enumerate(order)}
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for u, nbrs in self._adj.items():
            i = index[u]
            for v, m in nbrs.items():
                if m <= 0:
                    continue
                rows.append(i)
                cols.append(index[v])
                data.append(float(m))
        n = len(order)
        A = sp.csr_matrix(
            (np.array(data), (np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64))),
            shape=(n, n),
        )
        return order, A
