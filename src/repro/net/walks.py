"""Random-walk primitives.

Type-1 recovery (Algorithms 4.2/4.3) finds spare capacity by forwarding a
token along a random walk of length O(log n); Phase 2 of the type-2
procedures walks on the *virtual* graph, simulated on the real network
with constant overhead (each virtual hop crosses one real edge because
virtual neighbors are hosted at real neighbors).

Walk steps are weighted by edge multiplicity (the walk of Lemma 2 is on
the multigraph ``G'_t`` whose stationary distribution is
``pi(x) = d_x / 2|E|``); self-loop weight makes the token stay put for a
step.  :func:`scheduled_walks` schedules many tokens simultaneously with
the one-token-per-edge-per-direction congestion rule of Lemma 11 (the
batch healing engine of :mod:`repro.core.multi` runs its recovery walks
through it); :func:`parallel_walks` is the fixed-length convenience
wrapper.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Container, Sequence

from repro.errors import TopologyError
from repro.obs import trace as _trace
from repro.net.topology import DynamicMultigraph
from repro.types import NodeId, Vertex
from repro.virtual.pcycle import PCycle

try:  # the lockstep wave engine is numpy; the scalar reference is not
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: below this many tokens the numpy setup (CSR view, membership mask)
#: costs more than it saves; ``engine="auto"`` runs the scalar reference
#: instead.  Purely a performance knob: both engines implement the same
#: draw protocol, so the choice never changes results.
VECTOR_MIN_TOKENS = 24

#: with a *dirty* CSR the vector engine additionally pays an O(nnz)
#: incremental patch before the first hop, so ``engine="auto"`` demands
#: the wave's worst-case work (tokens x length) exceed this many hops
#: per graph node before vectorizing; healing waves of a small batch at
#: large n correctly stay scalar.
VECTOR_MIN_WORK_PER_NODE = 4


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a single token walk."""

    end: NodeId
    hops: int
    found: bool
    trace: tuple[NodeId, ...] = ()


def _weighted_step(
    graph: DynamicMultigraph,
    at: NodeId,
    rng: random.Random,
    excluded: frozenset[NodeId],
) -> NodeId | None:
    """One weighted hop via the topology's cached neighbor CDF.

    The cache stores neighbors in sorted order with cumulative
    multiplicities, so the common path (no exclusions) is a single
    ``randrange`` plus a bisect -- the same RNG draw sequence as the
    historical sort-per-hop implementation, so walks are bit-for-bit
    reproducible for a fixed seed.  Exclusions (only the freshly inserted
    node during Algorithm 4.2) fall back to an O(degree) filtered scan of
    the cached arrays.
    """
    neighbors, cumulative, total = graph.neighbor_cdf(at)
    if excluded:
        acc = 0
        options: list[tuple[NodeId, int]] = []
        prev = 0
        for v, cum in zip(neighbors, cumulative):
            m = cum - prev
            prev = cum
            if v not in excluded:
                acc += m
                options.append((v, acc))
        if not options:
            return None
        pick = rng.randrange(acc)
        for v, cum in options:
            if pick < cum:
                return v
        raise AssertionError("unreachable")  # pragma: no cover
    if total == 0:
        return None
    pick = rng.randrange(total)
    return neighbors[bisect_right(cumulative, pick)]


def random_walk(
    graph: DynamicMultigraph,
    start: NodeId,
    length: int,
    rng: random.Random,
    stop: Callable[[NodeId], bool] | None = None,
    excluded: frozenset[NodeId] = frozenset(),
    keep_trace: bool = False,
) -> WalkResult:
    """Forward a token for at most ``length`` hops from ``start``.

    The walk stops early (``found=True``) when ``stop`` holds at a visited
    node *after* at least one hop, mirroring Algorithm 4.2 where the token
    is generated at the initiator and examined at each receiving node.
    ``excluded`` nodes are never stepped onto (Algorithm 4.2 excludes the
    freshly inserted node).
    """
    if length < 0:
        raise TopologyError(f"walk length must be non-negative, got {length}")
    at = start
    trace = [start] if keep_trace else []
    for hop in range(1, length + 1):
        nxt = _weighted_step(graph, at, rng, excluded)
        if nxt is None:
            # Token is stuck (all neighbors excluded); it stays put.
            return WalkResult(end=at, hops=hop - 1, found=False, trace=tuple(trace))
        at = nxt
        if keep_trace:
            trace.append(at)
        if stop is not None and stop(at):
            return WalkResult(end=at, hops=hop, found=True, trace=tuple(trace))
    return WalkResult(
        end=at, hops=length, found=(stop is None), trace=tuple(trace)
    )


def virtual_walk(
    pcycle: PCycle,
    host_of: Callable[[Vertex], NodeId],
    start_vertex: Vertex,
    length: int,
    rng: random.Random,
    stop: Callable[[Vertex, NodeId], bool] | None = None,
) -> tuple[Vertex, int]:
    """Walk on the virtual p-cycle, simulated on the real network.

    Each step picks uniformly among the three edge endpoints of the
    current vertex (a self-loop endpoint keeps the token in place); the
    token physically crosses at most one real edge per step.  Returns the
    final vertex and the number of *real* hops charged.
    """
    at = start_vertex
    real_hops = 0
    for _ in range(length):
        options = pcycle.neighbor_multiset(at)
        nxt = options[rng.randrange(3)]
        if host_of(nxt) != host_of(at):
            real_hops += 1
        at = nxt
        if stop is not None and stop(at, host_of(at)):
            return at, real_hops
    return at, real_hops


@dataclass
class TokenSpec:
    """One token of a congestion-scheduled batch walk.

    ``stop`` ends the token's walk early (``found=True``) the first time
    it holds at a node reached after at least one hop -- the same
    semantics as :func:`random_walk`.  ``excluded`` nodes are never
    stepped onto (Algorithm 4.2 excludes the freshly inserted node)."""

    start: NodeId
    length: int
    stop: Callable[[NodeId], bool] | None = None
    excluded: frozenset[NodeId] = frozenset()


def scheduled_walks(
    graph: DynamicMultigraph,
    tokens: Sequence[TokenSpec],
    rng: random.Random,
) -> tuple[list[WalkResult], int]:
    """Schedule all ``tokens`` simultaneously under the one-token-per-
    directed-edge-per-round congestion rule of Lemma 11, and return the
    per-token :class:`WalkResult` plus the *actual* number of rounds the
    scheduler ran -- the quantity the batch healing engine charges, not a
    post-hoc max over sequential walks.

    A token blocked on a congested edge re-samples its next hop in the
    following round.  The active set is kept as a list that is shuffled
    and compacted in place (finished tokens swap-removed), so a round
    costs O(active) instead of the former O(k log k) re-sort.
    """
    n = len(tokens)
    positions = [t.start for t in tokens]
    remaining = [t.length for t in tokens]
    hops = [0] * n
    found = [False] * n
    done = [t.length <= 0 for t in tokens]
    active = [i for i in range(n) if not done[i]]
    max_length = max((t.length for t in tokens), default=0)
    rounds = 0
    while active:
        rounds += 1
        used: set[tuple[NodeId, NodeId]] = set()
        rng.shuffle(active)
        write = 0
        for idx in active:
            token = tokens[idx]
            at = positions[idx]
            nxt = _weighted_step(graph, at, rng, token.excluded)
            if nxt is None:
                # Stuck (all neighbors excluded): the token stays put.
                done[idx] = True
            elif nxt == at or (at, nxt) not in used:
                if nxt != at:
                    used.add((at, nxt))
                positions[idx] = nxt
                remaining[idx] -= 1
                hops[idx] += 1
                if token.stop is not None and token.stop(nxt):
                    found[idx] = True
                    done[idx] = True
                elif remaining[idx] <= 0:
                    found[idx] = token.stop is None
                    done[idx] = True
            # else: blocked this round, retries next round
            if not done[idx]:
                active[write] = idx
                write += 1
        del active[write:]
        if rounds > 1000 * max(1, max_length):  # pragma: no cover - safety
            raise TopologyError("parallel walks failed to complete")
    results = [
        WalkResult(end=positions[i], hops=hops[i], found=found[i])
        for i in range(n)
    ]
    return results, rounds


def _filtered_redraw(
    graph: DynamicMultigraph,
    at: NodeId,
    avoid: NodeId,
    random_unit: Callable[[], float],
) -> NodeId | None:
    """Exact conditional redraw over the support excluding ``avoid``
    (consumes one uniform iff a non-excluded neighbor exists).  Shared
    verbatim by both wave engines so rng consumption stays identical."""
    neighbors, cumulative, total = graph.neighbor_cdf(at)
    acc = 0
    options: list[tuple[NodeId, int]] = []
    prev = 0
    for v, cum in zip(neighbors, cumulative):
        m = cum - prev
        prev = cum
        if v != avoid:
            acc += m
            options.append((v, acc))
    if not options:
        return None  # every neighbor excluded: token is stuck
    pick = int(random_unit() * acc)
    for v, cum in options:
        if pick < cum:
            return v
    raise AssertionError("unreachable")  # pragma: no cover


def _wave_scalar(
    graph: DynamicMultigraph,
    starts: Sequence[NodeId],
    length: int,
    members: "Container[NodeId]",
    active: list[int],
    gen: "np.random.Generator | None",
    rng: random.Random,
    excl: list[NodeId | None],
    transcript: list | None,
) -> tuple[list[NodeId], list[bool], int, int]:
    """Scalar reference implementation of the wave protocol (see
    :func:`run_wave`); also the fallback when numpy is absent."""
    k = len(starts)
    positions = list(starts)
    remaining = [length] * k
    founds = [False] * k
    total_hops = 0
    rounds = 0
    neighbor_cdf = graph.neighbor_cdf
    random_unit = gen.random if gen is not None else rng.random
    # Claimed directed edges as (from, to) tuples: ids are unbounded
    # Python ints (a sharded partition bases its region at i * 2^40),
    # so any fixed-width bit packing would truncate and alias distinct
    # edges.
    used: set[tuple[NodeId, NodeId]] = set()
    used_add = used.add
    # Wave-local CDF memo: the topology is frozen for the wave's whole
    # lifetime (resolution happens after the wave returns), so the
    # version-stamp revalidation inside ``neighbor_cdf`` -- two dict
    # lookups plus a stamp compare per hop -- is paid once per *visited
    # node*, not once per hop.  Bounded by O(visited nodes x degree)
    # array entries, dropped with the wave.
    cdf_memo: dict[NodeId, tuple[list[NodeId], list[int], int]] = {}
    memo_get = cdf_memo.get
    while active:
        rounds += 1
        used.clear()
        # This round's uniform block, consumed in active order.
        if gen is not None:
            block = gen.random(len(active)).tolist()
        else:  # pragma: no cover - numpy-free fallback
            block = [random_unit() for _ in active]
        # The protocol's three passes (block proposals, ordered redraws,
        # ordered edge claims) fuse into one loop: the block is drawn up
        # front and redraws/claims both resolve in active order, so the
        # fused loop consumes the identical uniform stream and resolves
        # the identical claims -- the engine-equivalence oracle checks
        # this against the vector engine after every audited churn step.
        write = 0
        for slot, idx in enumerate(active):
            at = positions[idx]
            entry = memo_get(at)
            if entry is None:
                cdf_memo[at] = entry = neighbor_cdf(at)
            neighbors, cumulative, total = entry
            if total == 0:
                continue  # stuck: the token stays put and leaves the wave
            nxt = neighbors[bisect_right(cumulative, int(block[slot] * total))]
            avoid = excl[idx]
            if avoid is not None and nxt == avoid:
                # Conditional redraw on an excluded-node hit
                # (probability m_u/total, so the O(degree) scan is rare).
                nxt = _filtered_redraw(graph, at, avoid, random_unit)
                if nxt is None:
                    continue  # every neighbor excluded: token is stuck
            if nxt != at:
                key = (at, nxt)
                if key in used:
                    active[write] = idx  # blocked: retry next round
                    write += 1
                    continue
                used_add(key)
            positions[idx] = nxt
            total_hops += 1
            if nxt in members:
                founds[idx] = True
                continue
            remaining[idx] -= 1
            if remaining[idx] > 0:
                active[write] = idx
                write += 1
        del active[write:]
        if transcript is not None:
            transcript.append((tuple(positions), tuple(sorted(used))))
        if rounds > 1000 * max(1, length):  # pragma: no cover - safety
            raise TopologyError("parallel walks failed to complete")
    return positions, founds, total_hops, rounds


def _wave_vector(
    graph: DynamicMultigraph,
    starts: Sequence[NodeId],
    length: int,
    members: "Container[NodeId]",
    active_list: list[int],
    gen: "np.random.Generator",
    rng: random.Random,
    excl: list[NodeId | None],
    transcript: list | None,
) -> tuple[list[NodeId], list[bool], int, int]:
    """Lockstep numpy implementation of the wave protocol: all active
    tokens advance per round as vectorized operations over the
    incrementally patched CSR (:meth:`DynamicMultigraph.csr_wave_view`).

    A proposed hop is a *directed-edge slot* -- the CSR data index the
    weighted draw lands on -- so the Lemma 11 one-token-per-directed-edge
    rule resolves sort-free: a reversed fancy assignment into a
    per-slot claims array leaves each slot holding its *first* claimant
    in active order, and every later claimant blocks.  (No per-round
    reset is needed: a round writes each slot it reads.)"""
    k = len(starts)
    order_arr, indptr, indices, cumbase = graph.csr_wave_view()
    n_csr = order_arr.shape[0]
    starts_arr = np.asarray(starts, dtype=np.int64)
    pos = np.searchsorted(order_arr, starts_arr)
    if n_csr == 0 or bool(
        np.any(pos >= n_csr)
        or np.any(order_arr[np.minimum(pos, n_csr - 1)] != starts_arr)
    ):
        missing = (
            starts_arr[0]
            if n_csr == 0
            else starts_arr[
                (pos >= n_csr) | (order_arr[np.minimum(pos, n_csr - 1)] != starts_arr)
            ][0]
        )
        raise TopologyError(f"node {missing} does not exist")
    indices = indices.astype(np.int64, copy=False)
    indptr = indptr.astype(np.int64, copy=False)
    # Per-row base/total of the multiplicity prefix sums, and whether
    # any row is empty (a DEX node never is: degree = 3 * load >= 3, but
    # the raw multigraph API allows it).
    rowbase = cumbase[indptr[:-1]]
    rowtot = cumbase[indptr[1:]] - rowbase
    has_empty = bool((rowtot == 0.0).any())
    member_mask = np.zeros(n_csr, dtype=bool)
    member_ids = np.fromiter(members, dtype=np.int64, count=len(members))  # type: ignore[arg-type]
    if member_ids.size:
        mpos = np.searchsorted(order_arr, member_ids)
        ok = (mpos < n_csr) & (order_arr[np.minimum(mpos, n_csr - 1)] == member_ids)
        member_mask[mpos[ok]] = True
    member_any = bool(member_ids.size)
    excl_pos = np.full(k, -1, dtype=np.int64)
    any_excl = False
    for i, avoid in enumerate(excl):
        if avoid is not None:
            p = int(np.searchsorted(order_arr, avoid))
            if p < n_csr and order_arr[p] == avoid:
                excl_pos[i] = p
                any_excl = True
    need_stuck = has_empty or any_excl
    remaining = np.full(k, length, dtype=np.int64)
    founds = np.zeros(k, dtype=bool)
    total_hops = 0
    rounds = 0
    active = np.asarray(active_list, dtype=np.int64)
    random_unit = gen.random
    #: claims array, one cell per directed-edge slot; written before
    #: read within each round, so it needs no initialization or reset
    first_claim = np.empty(max(indices.shape[0], 1), dtype=np.int64)
    while active.size:
        rounds += 1
        m = active.size
        at = pos[active]
        # Pass 1: this round's uniform block, then every token's
        # weighted proposal in one batched draw -- int(u * total)
        # truncation and a global searchsorted on the prefix-sum array
        # (bounds confine each hit to its row, and the row slice equals
        # neighbor_cdf's cumulative array, so the same uniform maps to
        # the same neighbor as the scalar bisect).
        u = gen.random(m)
        base = rowbase[at]
        np.multiply(u, rowtot[at], out=u)
        np.floor(u, out=u)
        np.add(u, base, out=u)
        if need_stuck:
            stuck = rowtot[at] == 0.0
            j = np.empty(m, dtype=np.int64)
            ok = ~stuck
            j[ok] = np.searchsorted(cumbase, u[ok], side="right") - 1
            j[stuck] = 0
        else:
            stuck = None
            j = np.searchsorted(cumbase, u, side="right") - 1
        nxt = indices[j]
        # Pass 2: conditional redraws, in active order (rare).
        if any_excl:
            hit_mask = nxt == excl_pos[active]
            if stuck is not None:
                hit_mask &= ~stuck
            for slot in np.nonzero(hit_mask)[0].tolist():
                idx = int(active[slot])
                res = _filtered_redraw(
                    graph, int(order_arr[at[slot]]), excl[idx], random_unit
                )
                if res is None:
                    stuck[slot] = True
                else:
                    p = int(np.searchsorted(order_arr, res))
                    rs = int(indptr[p_at := int(at[slot])])
                    re_ = int(indptr[p_at + 1])
                    nxt[slot] = p
                    j[slot] = rs + int(np.searchsorted(indices[rs:re_], p))
        # Pass 3: sort-free edge claims -- first token in active order
        # wins each directed-edge slot; losers block and retry.
        claim_mask = nxt != at
        if stuck is not None:
            claim_mask &= ~stuck
        claim_sel = np.nonzero(claim_mask)[0]
        jcl = j[claim_sel]
        first_claim[jcl[::-1]] = claim_sel[::-1]
        win = first_claim[jcl] == claim_sel
        blocked_slots = claim_sel[~win]
        if stuck is None:
            moved = np.ones(m, dtype=bool)
        else:
            moved = ~stuck
        moved[blocked_slots] = False
        moved_tokens = active[moved]
        new_pos = nxt[moved]
        pos[moved_tokens] = new_pos
        total_hops += int(moved_tokens.size)
        if member_any:
            found_now = member_mask[new_pos]
            founds[moved_tokens[found_now]] = True
            walk_mask = moved.copy()
            walk_mask[moved] = ~found_now
            walk_tokens = moved_tokens[~found_now]
        else:
            walk_mask = moved
            walk_tokens = moved_tokens
        remaining[walk_tokens] -= 1
        keep = np.zeros(m, dtype=bool)
        keep[blocked_slots] = True
        keep[walk_mask] = remaining[walk_tokens] > 0
        active = active[keep]
        if transcript is not None:
            winners = claim_sel[win]
            transcript.append((
                tuple(order_arr[pos].tolist()),
                tuple(sorted(
                    zip(
                        order_arr[at[winners]].tolist(),
                        order_arr[nxt[winners]].tolist(),
                    )
                )),
            ))
        if rounds > 1000 * max(1, length):  # pragma: no cover - safety
            raise TopologyError("parallel walks failed to complete")
    return (
        order_arr[pos].tolist(),
        founds.tolist(),
        total_hops,
        rounds,
    )


def run_wave(
    graph: DynamicMultigraph,
    starts: Sequence[NodeId],
    length: int,
    members: "Container[NodeId]",
    rng: random.Random,
    excluded: Sequence[NodeId | None] | None = None,
    engine: str = "auto",
    transcript: list | None = None,
) -> tuple[list[NodeId], list[bool], int, int]:
    """Specialized congestion-scheduled wave for the batch healing
    engine: every token seeks a node of the ``members`` set (Spare or
    Low), optionally never stepping onto its single excluded node (the
    freshly inserted node of Algorithm 4.2).  Returns
    ``(ends, founds, total_hops, rounds)``; semantics match
    :func:`scheduled_walks` with ``stop = members.__contains__``.

    Two engines implement one *draw protocol*, so for a fixed rng state
    they produce bit-identical results and the choice is purely a
    performance knob:

    * ``"scalar"`` -- the per-token reference loop (and the fallback
      when numpy is absent); the differential-test oracle.
    * ``"vector"`` -- the lockstep numpy engine: all active tokens of a
      round advance as vectorized CSR operations (`searchsorted` on the
      prefix-sum of row multiplicities, batched weighted draws), with
      the Lemma 11 one-token-per-directed-edge rule enforced via
      vectorized edge-claim arrays.
    * ``"auto"`` -- vector for waves of at least ``VECTOR_MIN_TOKENS``
      tokens with a set-like member container, provided the CSR is
      already clean or the wave's worst-case work amortizes the O(nnz)
      patch (``VECTOR_MIN_WORK_PER_NODE``); scalar otherwise.

    Randomness: the wave's order is shuffled once with the caller's
    ``rng``, which then seeds a dedicated PCG64 stream; each round both
    engines consume one *block* of uniforms from that stream (in active
    order), then per-token redraws.  The protocol per round: (1) every
    active token, in the wave's fixed shuffled order, takes its block
    uniform and proposes a weighted hop; (2) tokens whose proposal hit
    their excluded node redraw from the filtered support, in the same
    order; (3) directed-edge claims resolve in order (first claimant
    wins, losers block and retry next round), winners move, members
    stop, exhausted tokens leave.  ``transcript``, when a list,
    receives one ``(positions, claimed_edges)`` tuple per round -- the
    equality witness for the engine-equivalence oracle and differential
    tests.
    """
    if engine not in ("auto", "vector", "scalar"):
        raise TopologyError(f"unknown wave engine {engine!r}")
    # Validate starts before dispatch so both engines reject a dead
    # start identically (the scalar loop would otherwise only notice in
    # round 1, which never runs for length=0 waves).
    for s in starts:
        if not graph.has_node(s):
            raise TopologyError(f"node {s} does not exist")
    excl = list(excluded) if excluded is not None else [None] * len(starts)
    if engine == "vector" and not HAVE_NUMPY:  # pragma: no cover - gated env
        raise TopologyError("wave engine 'vector' requires numpy")
    active = [i for i in range(len(starts)) if length > 0]
    rng.shuffle(active)
    gen = (
        np.random.Generator(np.random.PCG64(rng.getrandbits(64)))
        if HAVE_NUMPY
        else None
    )
    use_vector = engine == "vector" or (
        engine == "auto"
        and HAVE_NUMPY
        and len(starts) >= VECTOR_MIN_TOKENS
        and isinstance(members, (set, frozenset, dict))
        and (
            graph.csr_dirty_count == 0
            or len(starts) * max(1, length)
            >= VECTOR_MIN_WORK_PER_NODE * graph.num_nodes
        )
    )
    if _trace.current().enabled:
        with _trace.span(
            "net.wave",
            engine="vector" if use_vector else "scalar",
            tokens=len(starts),
            length=length,
        ) as sp:
            if use_vector:
                result = _wave_vector(
                    graph,
                    starts,
                    length,
                    members,
                    active,
                    gen,
                    rng,
                    excl,
                    transcript,
                )
            else:
                result = _wave_scalar(
                    graph,
                    starts,
                    length,
                    members,
                    active,
                    gen,
                    rng,
                    excl,
                    transcript,
                )
            sp.set(hops=result[2], rounds=result[3])
            return result
    if use_vector:
        return _wave_vector(
            graph, starts, length, members, active, gen, rng, excl, transcript
        )
    return _wave_scalar(
        graph, starts, length, members, active, gen, rng, excl, transcript
    )


def parallel_walks(
    graph: DynamicMultigraph,
    starts: Sequence[NodeId],
    length: int,
    rng: random.Random,
) -> tuple[list[NodeId], int]:
    """Run one token per entry of ``starts`` for ``length`` hops each,
    under the rule that each directed edge (connection) carries at most
    one token per round (Lemma 11).  Returns final positions and the
    number of rounds until all tokens completed.

    Thin wrapper over :func:`scheduled_walks` (no stop predicates);
    Lemma 11's O(log^2 n) completion bound is measured by
    ``tests/test_net/test_walks.py`` and benchmark E8.
    """
    results, rounds = scheduled_walks(
        graph, [TokenSpec(start=s, length=length) for s in starts], rng
    )
    return [r.end for r in results], rounds
