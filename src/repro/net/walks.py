"""Random-walk primitives.

Type-1 recovery (Algorithms 4.2/4.3) finds spare capacity by forwarding a
token along a random walk of length O(log n); Phase 2 of the type-2
procedures walks on the *virtual* graph, simulated on the real network
with constant overhead (each virtual hop crosses one real edge because
virtual neighbors are hosted at real neighbors).

Walk steps are weighted by edge multiplicity (the walk of Lemma 2 is on
the multigraph ``G'_t`` whose stationary distribution is
``pi(x) = d_x / 2|E|``); self-loop weight makes the token stay put for a
step.  :func:`scheduled_walks` schedules many tokens simultaneously with
the one-token-per-edge-per-direction congestion rule of Lemma 11 (the
batch healing engine of :mod:`repro.core.multi` runs its recovery walks
through it); :func:`parallel_walks` is the fixed-length convenience
wrapper.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Container, Sequence

from repro.errors import TopologyError
from repro.net.topology import DynamicMultigraph
from repro.types import NodeId, Vertex
from repro.virtual.pcycle import PCycle


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a single token walk."""

    end: NodeId
    hops: int
    found: bool
    trace: tuple[NodeId, ...] = ()


def _weighted_step(
    graph: DynamicMultigraph,
    at: NodeId,
    rng: random.Random,
    excluded: frozenset[NodeId],
) -> NodeId | None:
    """One weighted hop via the topology's cached neighbor CDF.

    The cache stores neighbors in sorted order with cumulative
    multiplicities, so the common path (no exclusions) is a single
    ``randrange`` plus a bisect -- the same RNG draw sequence as the
    historical sort-per-hop implementation, so walks are bit-for-bit
    reproducible for a fixed seed.  Exclusions (only the freshly inserted
    node during Algorithm 4.2) fall back to an O(degree) filtered scan of
    the cached arrays.
    """
    neighbors, cumulative, total = graph.neighbor_cdf(at)
    if excluded:
        acc = 0
        options: list[tuple[NodeId, int]] = []
        prev = 0
        for v, cum in zip(neighbors, cumulative):
            m = cum - prev
            prev = cum
            if v not in excluded:
                acc += m
                options.append((v, acc))
        if not options:
            return None
        pick = rng.randrange(acc)
        for v, cum in options:
            if pick < cum:
                return v
        raise AssertionError("unreachable")  # pragma: no cover
    if total == 0:
        return None
    pick = rng.randrange(total)
    return neighbors[bisect_right(cumulative, pick)]


def random_walk(
    graph: DynamicMultigraph,
    start: NodeId,
    length: int,
    rng: random.Random,
    stop: Callable[[NodeId], bool] | None = None,
    excluded: frozenset[NodeId] = frozenset(),
    keep_trace: bool = False,
) -> WalkResult:
    """Forward a token for at most ``length`` hops from ``start``.

    The walk stops early (``found=True``) when ``stop`` holds at a visited
    node *after* at least one hop, mirroring Algorithm 4.2 where the token
    is generated at the initiator and examined at each receiving node.
    ``excluded`` nodes are never stepped onto (Algorithm 4.2 excludes the
    freshly inserted node).
    """
    if length < 0:
        raise TopologyError(f"walk length must be non-negative, got {length}")
    at = start
    trace = [start] if keep_trace else []
    for hop in range(1, length + 1):
        nxt = _weighted_step(graph, at, rng, excluded)
        if nxt is None:
            # Token is stuck (all neighbors excluded); it stays put.
            return WalkResult(end=at, hops=hop - 1, found=False, trace=tuple(trace))
        at = nxt
        if keep_trace:
            trace.append(at)
        if stop is not None and stop(at):
            return WalkResult(end=at, hops=hop, found=True, trace=tuple(trace))
    return WalkResult(
        end=at, hops=length, found=(stop is None), trace=tuple(trace)
    )


def virtual_walk(
    pcycle: PCycle,
    host_of: Callable[[Vertex], NodeId],
    start_vertex: Vertex,
    length: int,
    rng: random.Random,
    stop: Callable[[Vertex, NodeId], bool] | None = None,
) -> tuple[Vertex, int]:
    """Walk on the virtual p-cycle, simulated on the real network.

    Each step picks uniformly among the three edge endpoints of the
    current vertex (a self-loop endpoint keeps the token in place); the
    token physically crosses at most one real edge per step.  Returns the
    final vertex and the number of *real* hops charged.
    """
    at = start_vertex
    real_hops = 0
    for _ in range(length):
        options = pcycle.neighbor_multiset(at)
        nxt = options[rng.randrange(3)]
        if host_of(nxt) != host_of(at):
            real_hops += 1
        at = nxt
        if stop is not None and stop(at, host_of(at)):
            return at, real_hops
    return at, real_hops


@dataclass
class TokenSpec:
    """One token of a congestion-scheduled batch walk.

    ``stop`` ends the token's walk early (``found=True``) the first time
    it holds at a node reached after at least one hop -- the same
    semantics as :func:`random_walk`.  ``excluded`` nodes are never
    stepped onto (Algorithm 4.2 excludes the freshly inserted node)."""

    start: NodeId
    length: int
    stop: Callable[[NodeId], bool] | None = None
    excluded: frozenset[NodeId] = frozenset()


def scheduled_walks(
    graph: DynamicMultigraph,
    tokens: Sequence[TokenSpec],
    rng: random.Random,
) -> tuple[list[WalkResult], int]:
    """Schedule all ``tokens`` simultaneously under the one-token-per-
    directed-edge-per-round congestion rule of Lemma 11, and return the
    per-token :class:`WalkResult` plus the *actual* number of rounds the
    scheduler ran -- the quantity the batch healing engine charges, not a
    post-hoc max over sequential walks.

    A token blocked on a congested edge re-samples its next hop in the
    following round.  The active set is kept as a list that is shuffled
    and compacted in place (finished tokens swap-removed), so a round
    costs O(active) instead of the former O(k log k) re-sort.
    """
    n = len(tokens)
    positions = [t.start for t in tokens]
    remaining = [t.length for t in tokens]
    hops = [0] * n
    found = [False] * n
    done = [t.length <= 0 for t in tokens]
    active = [i for i in range(n) if not done[i]]
    max_length = max((t.length for t in tokens), default=0)
    rounds = 0
    while active:
        rounds += 1
        used: set[tuple[NodeId, NodeId]] = set()
        rng.shuffle(active)
        write = 0
        for idx in active:
            token = tokens[idx]
            at = positions[idx]
            nxt = _weighted_step(graph, at, rng, token.excluded)
            if nxt is None:
                # Stuck (all neighbors excluded): the token stays put.
                done[idx] = True
            elif nxt == at or (at, nxt) not in used:
                if nxt != at:
                    used.add((at, nxt))
                positions[idx] = nxt
                remaining[idx] -= 1
                hops[idx] += 1
                if token.stop is not None and token.stop(nxt):
                    found[idx] = True
                    done[idx] = True
                elif remaining[idx] <= 0:
                    found[idx] = token.stop is None
                    done[idx] = True
            # else: blocked this round, retries next round
            if not done[idx]:
                active[write] = idx
                write += 1
        del active[write:]
        if rounds > 1000 * max(1, max_length):  # pragma: no cover - safety
            raise TopologyError("parallel walks failed to complete")
    results = [
        WalkResult(end=positions[i], hops=hops[i], found=found[i])
        for i in range(n)
    ]
    return results, rounds


def run_wave(
    graph: DynamicMultigraph,
    starts: Sequence[NodeId],
    length: int,
    members: "Container[NodeId]",
    rng: random.Random,
    excluded: Sequence[NodeId | None] | None = None,
) -> tuple[list[NodeId], list[bool], int, int]:
    """Specialized congestion-scheduled wave for the batch healing
    engine: every token seeks a node of the ``members`` set (Spare or
    Low), optionally never stepping onto its single excluded node (the
    freshly inserted node of Algorithm 4.2).

    Returns ``(ends, founds, total_hops, rounds)``.  Semantics match
    :func:`scheduled_walks` with ``stop = members.__contains__``; this
    entry point exists because wave tokens typically stop within one or
    two hops, so per-token bookkeeping dominates -- membership tests
    replace predicate calls, directed edges are keyed as packed ints,
    and the excluded-node case samples unconditionally and only falls
    back to the O(degree) filtered scan when the draw actually hits the
    excluded node (hitting it has probability ``m_u/total``, and the
    fallback redraw yields exactly the conditional distribution).
    """
    k = len(starts)
    positions = list(starts)
    remaining = [length] * k
    founds = [False] * k
    excl = list(excluded) if excluded is not None else [None] * k
    total_hops = 0
    rounds = 0
    active = [i for i in range(k) if length > 0]
    neighbor_cdf = graph.neighbor_cdf
    random_unit = rng.random
    used: set[int] = set()
    # One shuffle per wave; finished tokens are dropped in place, so a
    # round costs O(active) with no re-sort (blocked tokens keep their
    # relative order, which only matters under sustained congestion).
    rng.shuffle(active)
    while active:
        rounds += 1
        used.clear()
        write = 0
        for idx in active:
            at = positions[idx]
            neighbors, cumulative, total = neighbor_cdf(at)
            if total == 0:
                continue  # stuck token: stays put, leaves the wave
            nxt = neighbors[bisect_right(cumulative, int(random_unit() * total))]
            avoid = excl[idx]
            if avoid is not None and nxt == avoid:
                # Exact conditional redraw over the filtered support.
                acc = 0
                options: list[tuple[NodeId, int]] = []
                prev = 0
                for v, cum in zip(neighbors, cumulative):
                    m = cum - prev
                    prev = cum
                    if v != avoid:
                        acc += m
                        options.append((v, acc))
                if not options:
                    continue  # every neighbor excluded: token is stuck
                pick = int(random_unit() * acc)
                for v, cum in options:
                    if pick < cum:
                        nxt = v
                        break
            if nxt != at:
                key = (at << 32) | (nxt & 0xFFFFFFFF)
                if key in used:
                    active[write] = idx  # blocked: retry next round
                    write += 1
                    continue
                used.add(key)
            positions[idx] = nxt
            total_hops += 1
            if nxt in members:
                founds[idx] = True
                continue
            remaining[idx] -= 1
            if remaining[idx] > 0:
                active[write] = idx
                write += 1
        del active[write:]
        if rounds > 1000 * max(1, length):  # pragma: no cover - safety
            raise TopologyError("parallel walks failed to complete")
    return positions, founds, total_hops, rounds


def parallel_walks(
    graph: DynamicMultigraph,
    starts: Sequence[NodeId],
    length: int,
    rng: random.Random,
) -> tuple[list[NodeId], int]:
    """Run one token per entry of ``starts`` for ``length`` hops each,
    under the rule that each directed edge (connection) carries at most
    one token per round (Lemma 11).  Returns final positions and the
    number of rounds until all tokens completed.

    Thin wrapper over :func:`scheduled_walks` (no stop predicates);
    Lemma 11's O(log^2 n) completion bound is measured by
    ``tests/test_net/test_walks.py`` and benchmark E8.
    """
    results, rounds = scheduled_walks(
        graph, [TokenSpec(start=s, length=length) for s in starts], rng
    )
    return [r.end for r in results], rounds
