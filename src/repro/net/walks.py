"""Random-walk primitives.

Type-1 recovery (Algorithms 4.2/4.3) finds spare capacity by forwarding a
token along a random walk of length O(log n); Phase 2 of the type-2
procedures walks on the *virtual* graph, simulated on the real network
with constant overhead (each virtual hop crosses one real edge because
virtual neighbors are hosted at real neighbors).

Walk steps are weighted by edge multiplicity (the walk of Lemma 2 is on
the multigraph ``G'_t`` whose stationary distribution is
``pi(x) = d_x / 2|E|``); self-loop weight makes the token stay put for a
step.  :func:`parallel_walks` schedules many tokens simultaneously with
the one-token-per-edge-per-direction congestion rule of Lemma 11.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import TopologyError
from repro.net.topology import DynamicMultigraph
from repro.types import NodeId, Vertex
from repro.virtual.pcycle import PCycle


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a single token walk."""

    end: NodeId
    hops: int
    found: bool
    trace: tuple[NodeId, ...] = ()


def _weighted_step(
    graph: DynamicMultigraph,
    at: NodeId,
    rng: random.Random,
    excluded: frozenset[NodeId],
) -> NodeId | None:
    """One weighted hop via the topology's cached neighbor CDF.

    The cache stores neighbors in sorted order with cumulative
    multiplicities, so the common path (no exclusions) is a single
    ``randrange`` plus a bisect -- the same RNG draw sequence as the
    historical sort-per-hop implementation, so walks are bit-for-bit
    reproducible for a fixed seed.  Exclusions (only the freshly inserted
    node during Algorithm 4.2) fall back to an O(degree) filtered scan of
    the cached arrays.
    """
    neighbors, cumulative, total = graph.neighbor_cdf(at)
    if excluded:
        acc = 0
        options: list[tuple[NodeId, int]] = []
        prev = 0
        for v, cum in zip(neighbors, cumulative):
            m = cum - prev
            prev = cum
            if v not in excluded:
                acc += m
                options.append((v, acc))
        if not options:
            return None
        pick = rng.randrange(acc)
        for v, cum in options:
            if pick < cum:
                return v
        raise AssertionError("unreachable")  # pragma: no cover
    if total == 0:
        return None
    pick = rng.randrange(total)
    return neighbors[bisect_right(cumulative, pick)]


def random_walk(
    graph: DynamicMultigraph,
    start: NodeId,
    length: int,
    rng: random.Random,
    stop: Callable[[NodeId], bool] | None = None,
    excluded: frozenset[NodeId] = frozenset(),
    keep_trace: bool = False,
) -> WalkResult:
    """Forward a token for at most ``length`` hops from ``start``.

    The walk stops early (``found=True``) when ``stop`` holds at a visited
    node *after* at least one hop, mirroring Algorithm 4.2 where the token
    is generated at the initiator and examined at each receiving node.
    ``excluded`` nodes are never stepped onto (Algorithm 4.2 excludes the
    freshly inserted node).
    """
    if length < 0:
        raise TopologyError(f"walk length must be non-negative, got {length}")
    at = start
    trace = [start] if keep_trace else []
    for hop in range(1, length + 1):
        nxt = _weighted_step(graph, at, rng, excluded)
        if nxt is None:
            # Token is stuck (all neighbors excluded); it stays put.
            return WalkResult(end=at, hops=hop - 1, found=False, trace=tuple(trace))
        at = nxt
        if keep_trace:
            trace.append(at)
        if stop is not None and stop(at):
            return WalkResult(end=at, hops=hop, found=True, trace=tuple(trace))
    return WalkResult(
        end=at, hops=length, found=(stop is None), trace=tuple(trace)
    )


def virtual_walk(
    pcycle: PCycle,
    host_of: Callable[[Vertex], NodeId],
    start_vertex: Vertex,
    length: int,
    rng: random.Random,
    stop: Callable[[Vertex, NodeId], bool] | None = None,
) -> tuple[Vertex, int]:
    """Walk on the virtual p-cycle, simulated on the real network.

    Each step picks uniformly among the three edge endpoints of the
    current vertex (a self-loop endpoint keeps the token in place); the
    token physically crosses at most one real edge per step.  Returns the
    final vertex and the number of *real* hops charged.
    """
    at = start_vertex
    real_hops = 0
    for _ in range(length):
        options = pcycle.neighbor_multiset(at)
        nxt = options[rng.randrange(3)]
        if host_of(nxt) != host_of(at):
            real_hops += 1
        at = nxt
        if stop is not None and stop(at, host_of(at)):
            return at, real_hops
    return at, real_hops


def parallel_walks(
    graph: DynamicMultigraph,
    starts: Sequence[NodeId],
    length: int,
    rng: random.Random,
) -> tuple[list[NodeId], int]:
    """Run one token per entry of ``starts`` for ``length`` hops each,
    under the rule that each directed edge (connection) carries at most
    one token per round (Lemma 11).  Returns final positions and the
    number of rounds until all tokens completed.

    A token blocked on a congested edge re-samples its next hop in the
    following round; Lemma 11's O(log^2 n) completion bound is measured
    by ``tests/test_net/test_walks.py`` and benchmark E8.
    """
    positions = list(starts)
    remaining = [length] * len(starts)
    rounds = 0
    active = set(range(len(starts)))
    while active:
        rounds += 1
        used: set[tuple[NodeId, NodeId]] = set()
        order = sorted(active)
        rng.shuffle(order)
        for idx in order:
            at = positions[idx]
            nxt = _weighted_step(graph, at, rng, frozenset())
            if nxt is None:
                remaining[idx] = 0
            elif nxt == at or (at, nxt) not in used:
                if nxt != at:
                    used.add((at, nxt))
                positions[idx] = nxt
                remaining[idx] -= 1
            # else: blocked this round, retries next round
            if remaining[idx] <= 0:
                active.discard(idx)
        if rounds > 1000 * max(1, length):
            raise TopologyError("parallel walks failed to complete")  # pragma: no cover
    return positions, rounds
