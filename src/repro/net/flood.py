"""Flood/echo aggregation -- the primitive behind ``computeSpare`` and
``computeLow`` (Algorithm 4.4).

The initiating node floods a request through the whole network in a
BFS-like manner; every node contributes its local value (am I in Spare?
in Low? count 1 for the network size) and the values are aggregated back
up the BFS tree (the "echo"), reaching the initiator after at most
``2 * ecc(origin)`` rounds and O(|E|) messages.

Two implementations with identical results:

* :func:`flood_echo_engine` -- every message actually scheduled on the
  synchronous engine (used by tests and small runs),
* :func:`flood_echo_analytic` -- the same aggregate computed directly,
  with costs charged from the same quantities the engine would measure
  (eccentricity of the origin, one flood + one ack per directed edge,
  one echo per tree edge).

``tests/test_net/test_flood.py`` asserts the two agree on rounds,
messages and the aggregate.
"""

from __future__ import annotations

from typing import Callable

from repro.net.engine import SyncEngine
from repro.net.message import Message
from repro.net.metrics import CostLedger
from repro.net.topology import DynamicMultigraph
from repro.types import NodeId


class _FloodProc:
    """Engine process implementing flood/echo with per-node values."""

    def __init__(
        self,
        graph: DynamicMultigraph,
        origin: NodeId,
        value_of: Callable[[NodeId], int],
    ) -> None:
        self.graph = graph
        self.origin = origin
        self.value_of = value_of
        self.parent: dict[NodeId, NodeId | None] = {}
        self.waiting: dict[NodeId, set[NodeId]] = {}
        self.partial: dict[NodeId, int] = {}
        self.result: int | None = None

    def on_round(self, node: NodeId, round_no: int, inbox: list[Message]) -> list[Message]:
        out: list[Message] = []
        for msg in inbox:
            kind = msg.kind
            if kind == "start":
                out.extend(self._adopt(node, parent=None))
            elif kind == "flood":
                if node in self.parent or node == self.origin:
                    out.append(Message.make(node, msg.src, "decline"))
                else:
                    out.extend(self._adopt(node, parent=msg.src))
            elif kind == "decline":
                self.waiting[node].discard(msg.src)
            elif kind == "echo":
                self.partial[node] += msg.get("value")
                self.waiting[node].discard(msg.src)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown message kind {kind}")
        # Emit the echo once all children/acks are in.
        if (node in self.waiting) and not self.waiting[node] and node not in ("_done",):
            parent = self.parent.get(node)
            total = self.partial[node]
            del self.waiting[node]  # emit only once
            if parent is None:
                self.result = total
            else:
                out.append(Message.make(node, parent, "echo", value=total))
        return out

    def _adopt(self, node: NodeId, parent: NodeId | None) -> list[Message]:
        self.parent[node] = parent
        self.partial[node] = self.value_of(node)
        targets = [
            v for v in self.graph.distinct_neighbors(node) if v != parent
        ]
        self.waiting[node] = set(targets)
        return [Message.make(node, v, "flood") for v in targets]


def flood_echo_engine(
    graph: DynamicMultigraph,
    origin: NodeId,
    value_of: Callable[[NodeId], int],
    ledger: CostLedger | None = None,
) -> int:
    """Run flood/echo on the engine, returning the aggregated sum."""
    proc = _FloodProc(graph, origin, value_of)
    engine = SyncEngine(graph, proc, ledger=ledger)
    engine.run([Message.make(origin, origin, "start")])
    if proc.result is None:
        raise AssertionError("flood/echo terminated without a result")
    if ledger is not None:
        ledger.floods += 1
    return proc.result


def flood_echo_analytic(
    graph: DynamicMultigraph,
    origin: NodeId,
    value_of: Callable[[NodeId], int],
    ledger: CostLedger | None = None,
) -> int:
    """Compute the same aggregate directly and charge engine-equivalent
    costs: the flood sends one message per directed connection out of
    every node (minus the one toward the parent), each non-tree flood is
    declined (one message), and each tree edge carries one echo."""
    total = 0
    n = 0
    dist = graph.bfs_distances(origin)
    for node in dist:
        total += value_of(node)
        n += 1
    if n != graph.num_nodes:
        raise AssertionError("flood on disconnected graph")
    if ledger is not None:
        # flood messages: every node sends to all distinct neighbors except
        # its parent (origin has no parent): sum(deg) - (n - 1)
        deg_sum = sum(graph.connection_count(u) for u in dist)
        flood_msgs = deg_sum - (n - 1)
        decline_msgs = flood_msgs - (n - 1)  # non-tree floods get declined
        echo_msgs = n - 1
        ecc = max(dist.values()) if dist else 0
        ledger.charge_flood(rounds=2 * ecc + 2, messages=flood_msgs + decline_msgs + echo_msgs)
    return total
