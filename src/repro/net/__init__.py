"""Distributed-network substrate: the dynamic real-network multigraph,
cost accounting, and the synchronous CONGEST message-passing engine with
its communication primitives (flood/echo aggregation, random-walk tokens,
congestion-scheduled routing).
"""

from repro.net.topology import DynamicMultigraph
from repro.net.metrics import CostLedger, MetricsLog
from repro.net.message import Message
from repro.net.engine import SyncEngine, NodeProc
from repro.net.walks import (
    TokenSpec,
    WalkResult,
    parallel_walks,
    random_walk,
    scheduled_walks,
    virtual_walk,
)
from repro.net.flood import flood_echo_engine, flood_echo_analytic
from repro.net.routing import route_cost, permutation_routing

__all__ = [
    "DynamicMultigraph",
    "CostLedger",
    "MetricsLog",
    "Message",
    "SyncEngine",
    "NodeProc",
    "TokenSpec",
    "WalkResult",
    "random_walk",
    "scheduled_walks",
    "virtual_walk",
    "parallel_walks",
    "flood_echo_engine",
    "flood_echo_analytic",
    "route_cost",
    "permutation_routing",
]
