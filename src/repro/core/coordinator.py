"""The coordinator (Algorithm 4.7).

The node simulating vertex 0 of the current p-cycle keeps counters of the
network size and of ``|Spare|`` and ``|Low|``.  After every completed
type-1 recovery, the step's initiator routes a delta message to vertex 0
along a locally-computed shortest path in the virtual graph (O(log n)
messages and rounds); the coordinator's neighbors replicate its state
(O(1) messages per update, constant degree), so coordinator deletion
costs O(1) to recover from -- unlike the naive global-knowledge approach
of Section 3 which needs Omega(n).

The counters are *exact*: the deltas the initiator reports are the exact
local load changes of the step, so the replicated counters always equal
ground truth (invariant I8); the simulator therefore keeps them in sync
with the overlay and charges the messaging costs where the paper does.
"""

from __future__ import annotations

import math

from repro.core.config import DexConfig
from repro.core.overlay import Overlay
from repro.net.metrics import CostLedger
from repro.net.routing import route_cost
from repro.types import Layer, NodeId


class Coordinator:
    """Replicated Spare/Low/size counters at the host of vertex 0.

    The counters are maintained from *exact deltas* pushed by the overlay
    (Spare/Low membership transitions of the primary layer) and by the
    graph (node joins/leaves) -- O(1) bookkeeping per event instead of a
    per-step recomputation.  :meth:`sync` resnapshots from ground truth
    and runs only at construction and on primary-layer swaps, where the
    simplified type-2 teardown rebuilds the sets wholesale;
    :meth:`verify` remains the I8 oracle comparing the replicated
    counters against a from-scratch recount.
    """

    def __init__(self, overlay: Overlay, config: DexConfig) -> None:
        self.overlay = overlay
        self.config = config
        self.n = 0
        self.spare = 0
        self.low = 0
        overlay.add_listener(self)
        overlay.graph.node_listeners.append(self._on_node_delta)
        self.sync()

    def detach(self) -> None:
        """Unsubscribe from the overlay and graph (a coordinator holds a
        listener registration for the overlay's lifetime otherwise --
        call this before discarding one or rebuilding a network over the
        same overlay)."""
        self.overlay.remove_listener(self)
        try:
            self.overlay.graph.node_listeners.remove(self._on_node_delta)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # delta consumption (overlay / graph change-listener hooks)
    # ------------------------------------------------------------------
    def _on_node_delta(self, delta: int) -> None:
        self.n += delta

    def on_primary_counts(self, spare_delta: int, low_delta: int) -> None:
        self.spare += spare_delta
        self.low += low_delta

    def on_primary_replaced(self) -> None:
        self.sync()

    # ------------------------------------------------------------------
    @property
    def node(self) -> NodeId:
        """Host of vertex 0 in the currently *complete* layer (vertex 0
        is last in the staggered processing order, and the new layer's
        vertex 0 is created at the same host by cloud construction, so
        coordinatorship is continuous across type-2 recovery)."""
        lm = self.overlay.layer(self.routing_layer())
        return lm.host_of(0)

    def routing_layer(self) -> Layer:
        """The layer whose cycle is fully active and therefore routable:
        the old layer during phase 1, the new layer during phase 2."""
        if self.overlay.old.active_count == self.overlay.old.p:
            return Layer.OLD
        new = self.overlay.new
        if new is not None and new.active_count == new.p:
            return Layer.NEW
        return Layer.OLD  # pragma: no cover - defensive

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Resnapshot counters from ground truth (construction and
        primary-layer swaps only; steady-state updates arrive as deltas)."""
        self.n = self.overlay.graph.num_nodes
        self.spare = self.overlay.old.spare_count()
        self.low = self.overlay.old.low_count()

    def charge_update(self, from_node: NodeId, ledger: CostLedger) -> None:
        """Charge the cost of routing a delta from ``from_node`` to the
        coordinator plus the O(1) replication to its neighbors (the
        report carries the step's exact load changes, which the
        change-listener hooks have already applied to the counters --
        Algorithm 4.7 lines 5-6 and 11-12)."""
        layer = self.routing_layer()
        lm = self.overlay.layer(layer)
        vertices = lm.vertices_of(from_node)
        if vertices:
            src = min(vertices)
            hops = route_cost(lm.pcycle, lm.host_of, src, 0)
        else:
            # The initiator holds no vertex of the routable layer (it can
            # happen for a node inserted mid-stagger); its neighbor does,
            # so charge one extra hop plus the neighbor's route.  We
            # approximate with the virtual diameter bound O(log p).
            hops = 1 + math.ceil(2 * math.log2(lm.p))
        ledger.charge_route(hops)
        # state replication at the coordinator's neighbors
        ledger.messages += self.overlay.graph.connection_count(self.node)
        ledger.coordinator_updates += 1

    # ------------------------------------------------------------------
    def wants_inflate(self) -> bool:
        """Early staggered trigger: ``|Spare| < 3 * theta * n``."""
        return self.spare < self.config.coordinator_threshold(self.n)

    def wants_deflate(self) -> bool:
        """Early staggered trigger: ``|Low| < 3 * theta * n``."""
        return self.low < self.config.coordinator_threshold(self.n)

    def verify(self) -> bool:
        """I8: counters equal ground truth."""
        return (
            self.n == self.overlay.graph.num_nodes
            and self.spare == self.overlay.old.spare_count()
            and self.low == self.overlay.old.low_count()
        )
