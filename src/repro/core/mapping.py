"""Single-layer virtual mapping bookkeeping (Definitions 2-3).

A :class:`LayerMapping` tracks which real node simulates each *active*
vertex of one p-cycle, the per-node loads, and the derived sets

* ``Spare`` -- nodes with load >= 2 (Eq. 2), able to give a vertex away,
* ``Low``   -- nodes with load <= 2*zeta (Eq. 1), able to take one on.

Both sets are maintained incrementally so membership tests and size
queries are O(1) -- the *algorithm* learns these sizes only by flooding
(Algorithm 4.4) or coordinator counters (Algorithm 4.7), and the cost of
that learning is charged where it happens; the simulator state itself may
be queried freely (it is the ground truth the paper's proofs reason
about).

Edges are *not* handled here: :mod:`repro.core.overlay` synchronizes the
real multigraph whenever vertices activate, deactivate or move.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.errors import MappingError
from repro.types import NodeId, Vertex
from repro.virtual.pcycle import PCycle


class LayerMapping:
    """Host assignment for the active vertices of one p-cycle."""

    __slots__ = (
        "pcycle",
        "low_threshold",
        "host",
        "sim",
        "spare",
        "low",
        "on_counts_delta",
    )

    def __init__(self, pcycle: PCycle, low_threshold: int) -> None:
        self.pcycle = pcycle
        self.low_threshold = low_threshold
        self.host: dict[Vertex, NodeId] = {}
        self.sim: dict[NodeId, set[Vertex]] = {}
        #: nodes with load >= 2 (Spare, Eq. 2)
        self.spare: set[NodeId] = set()
        #: nodes with 1 <= load <= low_threshold (Low, Eq. 1)
        self.low: set[NodeId] = set()
        #: change-listener hook ``f(node, spare_delta, low_delta)`` fired
        #: on every Spare/Low membership transition; the overlay wires the
        #: primary layer's hook to the coordinator's exact-delta counters
        #: (Algorithm 4.7)
        self.on_counts_delta: Callable[[NodeId, int, int], None] | None = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        return self.pcycle.p

    def is_active(self, z: Vertex) -> bool:
        return z in self.host

    def host_of(self, z: Vertex) -> NodeId:
        try:
            return self.host[z]
        except KeyError:
            raise MappingError(f"vertex {z} is not active") from None

    def load(self, u: NodeId) -> int:
        vertices = self.sim.get(u)
        return len(vertices) if vertices else 0

    def vertices_of(self, u: NodeId) -> set[Vertex]:
        return set(self.sim.get(u, ()))

    def active_vertices(self) -> Iterator[Vertex]:
        return iter(self.host)

    @property
    def active_count(self) -> int:
        return len(self.host)

    def nodes_with_vertices(self) -> Iterator[NodeId]:
        return iter(self.sim)

    def in_spare(self, u: NodeId) -> bool:
        return u in self.spare

    def in_low(self, u: NodeId) -> bool:
        return u in self.low

    def spare_count(self) -> int:
        return len(self.spare)

    def low_count(self) -> int:
        return len(self.low)

    def pick_transferable(
        self, u: NodeId, rng: random.Random, avoid_zero: bool = True
    ) -> Vertex:
        """A vertex that ``u`` can give away.  Vertex 0 (the coordinator
        vertex, Algorithm 4.7) is kept at its host whenever possible to
        avoid needless coordinator migrations."""
        vertices = self.sim.get(u)
        if not vertices or len(vertices) < 2:
            raise MappingError(f"node {u} has no transferable vertex")
        candidates = sorted(vertices)
        if avoid_zero and len(candidates) > 1 and candidates[0] == 0:
            candidates = candidates[1:]
        return candidates[rng.randrange(len(candidates))]

    # ------------------------------------------------------------------
    # mutations (bookkeeping only; overlay drives the edges)
    # ------------------------------------------------------------------
    def _sets_after_change(self, u: NodeId) -> None:
        vertices = self.sim.get(u)
        load = len(vertices) if vertices else 0
        spare = self.spare
        low = self.low
        spare_delta = 0
        low_delta = 0
        if load >= 2:
            if u not in spare:
                spare.add(u)
                spare_delta = 1
        elif u in spare:
            spare.remove(u)
            spare_delta = -1
        if 1 <= load <= self.low_threshold:
            if u not in low:
                low.add(u)
                low_delta = 1
        elif u in low:
            low.remove(u)
            low_delta = -1
        if (spare_delta or low_delta) and self.on_counts_delta is not None:
            self.on_counts_delta(u, spare_delta, low_delta)

    def assign(self, z: Vertex, u: NodeId) -> None:
        self.pcycle.check_vertex(z)
        if z in self.host:
            raise MappingError(f"vertex {z} already active at {self.host[z]}")
        self.host[z] = u
        self.sim.setdefault(u, set()).add(z)
        self._sets_after_change(u)

    def unassign(self, z: Vertex) -> NodeId:
        u = self.host_of(z)
        del self.host[z]
        vertices = self.sim[u]
        vertices.discard(z)
        if not vertices:
            del self.sim[u]
        self._sets_after_change(u)
        return u

    def reassign_all(self, u: NodeId, new_host: NodeId) -> list[Vertex]:
        """Move *every* vertex hosted at ``u`` to ``new_host`` in one
        sweep (the batch engine's bulk adoption).  Returns the moved
        vertices in ascending order; Spare/Low transitions fire once per
        node instead of once per vertex."""
        if u == new_host:
            return []
        vertices = self.sim.pop(u, None)
        if not vertices:
            return []
        for z in vertices:
            self.host[z] = new_host
        self.sim.setdefault(new_host, set()).update(vertices)
        self._sets_after_change(u)
        self._sets_after_change(new_host)
        return sorted(vertices)

    def reassign(self, z: Vertex, new_host: NodeId) -> NodeId:
        """Move ``z``; returns the previous host."""
        old = self.host_of(z)
        if old == new_host:
            return old
        self.host[z] = new_host
        vertices = self.sim[old]
        vertices.discard(z)
        if not vertices:
            del self.sim[old]
        self.sim.setdefault(new_host, set()).add(z)
        self._sets_after_change(old)
        self._sets_after_change(new_host)
        return old

    # ------------------------------------------------------------------
    # consistency (used by the invariant checker)
    # ------------------------------------------------------------------
    def verify(self) -> None:
        for z, u in self.host.items():
            if z not in self.sim.get(u, ()):  # pragma: no cover - defensive
                raise MappingError(f"host/sim mismatch at vertex {z}")
        total = sum(len(vs) for vs in self.sim.values())
        if total != len(self.host):  # pragma: no cover - defensive
            raise MappingError("sim sets and host map disagree on size")
        if not self.spare <= set(self.sim) or not self.low <= set(self.sim):
            raise MappingError("spare/low contain nodes without vertices")
        for u, vertices in self.sim.items():
            if not vertices:  # pragma: no cover - defensive
                raise MappingError(f"node {u} has an empty sim set entry")
            load = len(vertices)
            if (u in self.spare) != (load >= 2):
                raise MappingError(f"spare set stale at node {u}")
            if (u in self.low) != (1 <= load <= self.low_threshold):
                raise MappingError(f"low set stale at node {u}")
