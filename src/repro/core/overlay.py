"""The overlay state: real multigraph kept exactly in sync with the
virtual layer(s).

Outside type-2 recovery there is a single layer (the current p-cycle);
during a *staggered* type-2 recovery (Section 4.4) a second layer exists
whose vertices activate chunk by chunk, plus *intermediate edges*
connecting a new-layer vertex to the old-layer vertex whose cloud will
eventually produce its missing neighbor (Procedures ``inflate`` /
``deflate``).

Every real edge has exactly one reason to exist:

1. a live virtual edge of a layer whose both endpoints are active,
2. an intermediate edge,
3. the adversary's initial attachment of an inserted node (removed at the
   end of the step unless a virtual edge requires the connection,
   Algorithm 4.2 line 3).

The bookkeeping is reference-counted: the degree of a node always equals
``3 * (#active vertices hosted)`` plus its intermediate-edge endpoints
(plus a transient attachment unit), which is invariant I3/I4 of
DESIGN.md.  Self-loop conventions: a virtual self-loop contributes weight
1; a virtual edge or intermediate whose two endpoints land on the same
real node contributes weight 2 (degree-preserving contraction).
"""

from __future__ import annotations

from collections import Counter
from typing import Protocol

from repro.core.mapping import LayerMapping
from repro.errors import MappingError
from repro.net.topology import DynamicMultigraph
from repro.types import Layer, NodeId, Vertex
from repro.virtual.pcycle import PCycle


class OverlayListener(Protocol):
    """What overlay subscribers (the coordinator) must implement."""

    def on_primary_counts(self, spare_delta: int, low_delta: int) -> None: ...

    def on_primary_replaced(self) -> None: ...


class Overlay:
    """Real graph + virtual layers + intermediate edges."""

    def __init__(self, graph: DynamicMultigraph, primary: LayerMapping) -> None:
        self.graph = graph
        self.old = primary
        self.new: LayerMapping | None = None
        # intermediate edges: new-layer vertex <-> old-layer vertex,
        # with multiplicity (a new vertex may need two parallel edges
        # toward the same future neighbor).
        self.inter_by_new: dict[Vertex, Counter[Vertex]] = {}
        self.inter_by_old: dict[Vertex, Counter[Vertex]] = {}
        #: incremental per-node count of intermediate-edge endpoints
        #: (replaces the O(#intermediates) scan on the degree hot path)
        self._inter_endpoints: Counter[NodeId] = Counter()
        self._listeners: list[OverlayListener] = []
        self._wire_primary()

    # ------------------------------------------------------------------
    # change listeners (exact deltas for the coordinator, Algorithm 4.7)
    # ------------------------------------------------------------------
    def add_listener(self, listener: OverlayListener) -> None:
        """Subscribe to primary-layer Spare/Low deltas and layer swaps."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: OverlayListener) -> None:
        """Unsubscribe (no-op if not subscribed)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _wire_primary(self) -> None:
        self.old.on_counts_delta = self._emit_counts_delta

    def _emit_counts_delta(self, _u: NodeId, spare_delta: int, low_delta: int) -> None:
        for listener in self._listeners:
            listener.on_primary_counts(spare_delta, low_delta)

    def _emit_primary_replaced(self) -> None:
        for listener in self._listeners:
            listener.on_primary_replaced()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def layer(self, which: Layer) -> LayerMapping:
        if which is Layer.OLD:
            return self.old
        if self.new is None:
            raise MappingError("no staggered operation in progress (no new layer)")
        return self.new

    def total_load(self, u: NodeId) -> int:
        load = self.old.load(u)
        if self.new is not None:
            load += self.new.load(u)
        return load

    def _pair_add(self, a: NodeId, b: NodeId) -> None:
        if a == b:
            self.graph.add_edge(a, a, mult=2)
        else:
            self.graph.add_edge(a, b, mult=1)

    def _pair_remove(self, a: NodeId, b: NodeId) -> None:
        if a == b:
            self.graph.remove_edge(a, a, mult=2)
        else:
            self.graph.remove_edge(a, b, mult=1)

    # ------------------------------------------------------------------
    # vertex lifecycle
    # ------------------------------------------------------------------
    def activate(self, which: Layer, z: Vertex, node: NodeId) -> None:
        """Make ``z`` live at ``node``, wiring edges to already-active
        same-layer neighbors and its own virtual self-loop."""
        lm = self.layer(which)
        lm.assign(z, node)
        for nb in lm.pcycle.neighbor_multiset(z):
            if nb == z:
                self.graph.add_edge(node, node, mult=1)
            elif lm.is_active(nb):
                self._pair_add(node, lm.host_of(nb))

    def deactivate(self, which: Layer, z: Vertex) -> NodeId:
        """Remove ``z`` (phase 2 of staggered ops drops old vertices)."""
        lm = self.layer(which)
        node = lm.host_of(z)
        if which is Layer.OLD and self.inter_by_old.get(z):
            raise MappingError(
                f"old vertex {z} still carries intermediate edges"
            )
        if which is Layer.NEW and self.inter_by_new.get(z):
            raise MappingError(
                f"new vertex {z} still carries intermediate edges"
            )
        # Unassign first so neighbor iteration does not see z as active.
        lm.unassign(z)
        for nb in lm.pcycle.neighbor_multiset(z):
            if nb == z:
                self.graph.remove_edge(node, node, mult=1)
            elif lm.is_active(nb):
                self._pair_remove(node, lm.host_of(nb))
        return node

    def move(self, which: Layer, z: Vertex, new_node: NodeId) -> NodeId:
        """Transfer ``z`` (and its edges, and any intermediate edges
        riding on it) to ``new_node``; returns the previous host.

        Outside a staggered operation (single layer, so no intermediate
        edges can ride on ``z``) the transfer takes the combined
        endpoint-move fast path of the topology -- the healing hot path
        resolves one move per recovered vertex."""
        if which is Layer.OLD and self.new is None:
            return self._move_primary_fast(z, new_node)
        lm = self.layer(which)
        old_node = lm.host_of(z)
        if old_node == new_node:
            return old_node
        for nb in lm.pcycle.neighbor_multiset(z):
            if nb == z:
                self.graph.remove_edge(old_node, old_node, mult=1)
                self.graph.add_edge(new_node, new_node, mult=1)
            elif lm.is_active(nb):
                h = lm.host_of(nb)
                self._pair_remove(old_node, h)
                self._pair_add(new_node, h)
        if which is Layer.OLD:
            riders = self.inter_by_old.get(z)
            if riders:
                assert self.new is not None
                for y, count in riders.items():
                    hy = self.new.host_of(y)
                    for _ in range(count):
                        self._pair_remove(hy, old_node)
                        self._pair_add(hy, new_node)
        else:
            riders = self.inter_by_new.get(z)
            if riders:
                for x, count in riders.items():
                    hx = self.old.host_of(x)
                    for _ in range(count):
                        self._pair_remove(old_node, hx)
                        self._pair_add(new_node, hx)
        if riders:
            moved = sum(riders.values())
            self._inter_endpoints[old_node] -= moved
            if self._inter_endpoints[old_node] <= 0:
                del self._inter_endpoints[old_node]
            self._inter_endpoints[new_node] += moved
        lm.reassign(z, new_node)
        return old_node

    def _move_primary_fast(self, z: Vertex, new_node: NodeId) -> NodeId:
        """Single-layer vertex transfer through the topology's combined
        endpoint moves (no new layer => no intermediate edges to carry)."""
        lm = self.old
        host = lm.host
        old_node = lm.host_of(z)
        if old_node == new_node:
            return old_node
        graph = self.graph
        for nb in lm.pcycle.neighbor_multiset(z):
            if nb == z:
                graph.move_loop_unit(old_node, new_node)
            else:
                h = host.get(nb)
                if h is not None:
                    graph.move_pair_endpoint(old_node, new_node, h)
        # inline of lm.reassign (old_node already resolved above)
        host[z] = new_node
        sim = lm.sim
        vertices = sim[old_node]
        vertices.discard(z)
        if not vertices:
            del sim[old_node]
        target = sim.get(new_node)
        if target is None:
            sim[new_node] = {z}
        else:
            target.add(z)
        lm._sets_after_change(old_node)
        lm._sets_after_change(new_node)
        return old_node

    def adopt_node(self, u: NodeId, v: NodeId) -> list[Vertex]:
        """Bulk adoption for the batch engine: every primary-layer vertex
        of ``u`` rehomes at ``v`` and ``u``'s real edges contract into
        ``v`` in one O(connections + load) sweep -- the final state is
        identical to moving the vertices one at a time and then removing
        ``u``.  Only valid outside a staggered operation (single layer,
        no intermediate edges)."""
        if self.new is not None:
            raise MappingError("bulk adoption requires a single live layer")
        moved = self.old.reassign_all(u, v)
        self.graph.contract_into(u, v)
        return moved

    # ------------------------------------------------------------------
    # intermediate edges (staggered type-2 only)
    # ------------------------------------------------------------------
    def add_intermediate(self, y_new: Vertex, x_old: Vertex) -> None:
        if self.new is None:
            raise MappingError("intermediate edges need a staggered operation")
        hy = self.new.host_of(y_new)
        hx = self.old.host_of(x_old)
        self._pair_add(hy, hx)
        self.inter_by_new.setdefault(y_new, Counter())[x_old] += 1
        self.inter_by_old.setdefault(x_old, Counter())[y_new] += 1
        self._inter_endpoints[hy] += 1
        self._inter_endpoints[hx] += 1

    def remove_intermediate(self, y_new: Vertex, x_old: Vertex) -> None:
        by_new = self.inter_by_new.get(y_new)
        if not by_new or by_new[x_old] <= 0:
            raise MappingError(
                f"no intermediate edge between new:{y_new} and old:{x_old}"
            )
        assert self.new is not None
        hy = self.new.host_of(y_new)
        hx = self.old.host_of(x_old)
        self._pair_remove(hy, hx)
        for h in (hy, hx):
            self._inter_endpoints[h] -= 1
            if self._inter_endpoints[h] <= 0:
                del self._inter_endpoints[h]
        by_new[x_old] -= 1
        if by_new[x_old] == 0:
            del by_new[x_old]
            if not by_new:
                del self.inter_by_new[y_new]
        by_old = self.inter_by_old[x_old]
        by_old[y_new] -= 1
        if by_old[y_new] == 0:
            del by_old[y_new]
            if not by_old:
                del self.inter_by_old[x_old]

    def intermediate_count(self) -> int:
        return sum(sum(c.values()) for c in self.inter_by_new.values())

    def intermediate_endpoints(self, u: NodeId) -> int:
        """Intermediate edge endpoints at node ``u``, O(1) from the
        incremental counter."""
        return self._inter_endpoints.get(u, 0)

    def scan_intermediate_endpoints(self, u: NodeId) -> int:
        """From-scratch recount of :meth:`intermediate_endpoints` -- the
        oracle the invariant checker compares the counter against."""
        total = 0
        for y, targets in self.inter_by_new.items():
            assert self.new is not None
            hy = self.new.host_of(y)
            for x, count in targets.items():
                hx = self.old.host_of(x)
                if hy == u:
                    total += count
                if hx == u:
                    total += count
        return total

    def verify_intermediate_cache(self) -> None:
        """Check the incremental endpoint counter against a full recount."""
        recount: Counter[NodeId] = Counter()
        for y, targets in self.inter_by_new.items():
            assert self.new is not None
            hy = self.new.host_of(y)
            for x, count in targets.items():
                recount[hy] += count
                recount[self.old.host_of(x)] += count
        if any(c <= 0 for c in self._inter_endpoints.values()):
            raise MappingError(
                "intermediate endpoint counter holds a non-positive entry"
            )
        if dict(self._inter_endpoints) != dict(recount):
            raise MappingError(
                "intermediate endpoint counters diverged from recount"
            )

    # ------------------------------------------------------------------
    # wholesale layer replacement (simplified type-2, Algorithms 4.5/4.6)
    # ------------------------------------------------------------------
    def replace_primary(self, pcycle: PCycle, hosts: dict[Vertex, NodeId]) -> None:
        """Swap the single live layer for a new p-cycle with the given
        (complete, surjective) host assignment, rebuilding all edges.

        This is the one-shot replacement of the simplified procedures: it
        costs O(n) topology changes, which is exactly what Lemma 5(d)
        charges.
        """
        if self.new is not None:
            raise MappingError("cannot replace the layer during a staggered op")
        if set(hosts) != set(range(pcycle.p)):
            raise MappingError("host assignment must cover every vertex")
        live_nodes = set(self.graph.nodes())
        if set(hosts.values()) != live_nodes:
            missing = live_nodes - set(hosts.values())
            raise MappingError(f"assignment not surjective; empty nodes: {missing}")
        self._teardown_all_old_edges()
        new_layer = LayerMapping(pcycle, self.old.low_threshold)
        for z, node in hosts.items():
            new_layer.assign(z, node)
        self.old.on_counts_delta = None
        self.old = new_layer
        self._wire_primary()
        for a, b in pcycle.edges():
            if a == b:
                self.graph.add_edge(hosts[a], hosts[a], mult=1)
            else:
                self._pair_add(hosts[a], hosts[b])
        self._emit_primary_replaced()

    def _teardown_all_old_edges(self) -> None:
        pcycle = self.old.pcycle
        host = self.old.host
        for a, b in pcycle.edges():
            if not (a in host and b in host):
                continue
            if a == b:
                self.graph.remove_edge(host[a], host[a], mult=1)
            else:
                self._pair_remove(host[a], host[b])
        self.old.host.clear()
        self.old.sim.clear()
        self.old.spare.clear()
        self.old.low.clear()

    # ------------------------------------------------------------------
    # staggered layer management
    # ------------------------------------------------------------------
    def open_new_layer(self, pcycle: PCycle) -> LayerMapping:
        if self.new is not None:
            raise MappingError("a staggered operation is already in progress")
        self.new = LayerMapping(pcycle, self.old.low_threshold)
        return self.new

    def promote_new_layer(self) -> None:
        """Finish a staggered op: the new layer becomes the primary."""
        if self.new is None:
            raise MappingError("no staggered operation in progress")
        if self.old.active_count != 0:
            raise MappingError(
                f"{self.old.active_count} old vertices still active at promotion"
            )
        if self.inter_by_new or self.inter_by_old:
            raise MappingError("intermediate edges remain at promotion")
        self.old.on_counts_delta = None
        self.old = self.new
        self.new = None
        self._wire_primary()
        self._emit_primary_replaced()

    # ------------------------------------------------------------------
    # verification (invariant I3/I4)
    # ------------------------------------------------------------------
    def expected_degree(self, u: NodeId) -> int:
        """Degree implied by the virtual state: one endpoint per live
        virtual edge incidence whose *neighbor is active* (intermediate
        edges stand in for the inactive ones and are counted separately).
        In steady state every neighbor is active and this is exactly
        ``3 * Load(u)``."""
        total = 0
        for lm in filter(None, (self.old, self.new)):
            for z in lm.sim.get(u, ()):
                for nb in lm.pcycle.neighbor_multiset(z):
                    if nb == z or lm.is_active(nb):
                        total += 1
        # O(1) cached count: check_all audits it against the recount
        # (verify_intermediate_cache) before the per-node degree sweep.
        return total + self.intermediate_endpoints(u)

    def rebuild_expected_graph(self) -> dict[tuple[NodeId, NodeId], int]:
        """Recompute the exact expected multigraph from the virtual state
        (used by the invariant checker to catch any bookkeeping drift)."""
        expected: Counter[tuple[NodeId, NodeId]] = Counter()

        def pair_key(a: NodeId, b: NodeId) -> tuple[NodeId, NodeId]:
            return (a, b) if a <= b else (b, a)

        for lm in filter(None, (self.old, self.new)):
            for a, b in lm.pcycle.edges():
                if not (lm.is_active(a) and lm.is_active(b)):
                    continue
                ha, hb = lm.host_of(a), lm.host_of(b)
                if a == b:
                    expected[(ha, ha)] += 1
                elif ha == hb:
                    expected[(ha, ha)] += 2
                else:
                    expected[pair_key(ha, hb)] += 1
        for y, targets in self.inter_by_new.items():
            assert self.new is not None
            hy = self.new.host_of(y)
            for x, count in targets.items():
                hx = self.old.host_of(x)
                if hy == hx:
                    expected[(hy, hy)] += 2 * count
                else:
                    expected[pair_key(hy, hx)] += count
        return dict(expected)
