"""Type-1 recovery: Algorithms 4.2 (``insertion``) and 4.3 (``deletion``).

Insertion: the attach point ``v`` walks a token of length O(log n)
(excluding the fresh node ``u``) to find a node in Spare, which donates
one virtual vertex to ``u``.  Deletion: a surviving neighbor ``v`` adopts
the deleted node's vertices and walks one token per vertex to spread them
onto Low nodes.  Redistribution walks run sequentially with live load
updates, which is what makes Lemma 3(a)'s 4*zeta bound hold exactly
(DESIGN.md substitution 4).

The module is split into token *generation* (:func:`insertion_token` /
:func:`redistribution_token` build :class:`~repro.net.walks.TokenSpec`
describing the recovery walk) and token *resolution*
(:func:`resolve_insertion` / :func:`resolve_redistribution` apply the
vertex transfer after re-checking the target still qualifies).  The
sequential recoveries below chain the two through :func:`random_walk`;
the batch engine of :mod:`repro.core.multi` schedules a whole batch's
tokens through :func:`~repro.net.walks.run_wave` under the Lemma 11
congestion rule (on the lockstep numpy engine or the scalar reference,
per ``DexConfig.wave_engine`` -- the two are transcript-identical for a
fixed seed) and resolves each wave in order, so both paths share the
exact same transfer semantics.

On walk failure the algorithm decides between retrying and type-2
recovery: in ``simplified`` mode by flooding ``computeSpare`` /
``computeLow`` (Fact 2 thresholds, :func:`spare_depleted` /
:func:`low_depleted`), in ``staggered`` mode by asking the coordinator
(Algorithm 4.7), whose counters trigger at ``3*theta*n``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.aggregation import compute_low, compute_spare
from repro.errors import RecoveryError
from repro.net.metrics import CostLedger
from repro.net.walks import TokenSpec, random_walk
from repro.types import Layer, NodeId, RecoveryType, Vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork


def walk_budget(dex: "DexNetwork", attempt: int = 0) -> int:
    """Walk length for the given retry attempt.

    Lemma 2 says a ``c * log n`` walk succeeds w.h.p. whenever the target
    set holds a theta fraction -- with a large analysis constant ``c``.
    We run with a practical constant and instead *double* the walk budget
    every few failed attempts (capped at 8x, still O(log n)), which
    recovers the lemma's success probability without paying the long walk
    on the common path."""
    boost = min(8, 1 << (attempt // 4))
    return boost * dex.config.walk_length(dex.size)


def walk_for(
    dex: "DexNetwork",
    start: NodeId,
    predicate: Callable[[NodeId], bool],
    ledger: CostLedger,
    exclude: frozenset[NodeId] = frozenset(),
    attempt: int = 0,
) -> NodeId | None:
    """One sequential token walk; returns the found node or None."""
    result = random_walk(
        dex.graph,
        start,
        walk_budget(dex, attempt),
        dex.rng,
        stop=predicate,
        excluded=exclude,
    )
    ledger.charge_walk(result.hops)
    return result.end if result.found else None


# ----------------------------------------------------------------------
# token generation (the batch engine schedules these through Lemma 11)
# ----------------------------------------------------------------------
def insertion_token(
    dex: "DexNetwork", u: NodeId, v: NodeId, attempt: int = 0
) -> TokenSpec:
    """The Algorithm 4.2 token: from the attach point ``v``, seek a node
    in Spare, never stepping onto the fresh node ``u``."""
    return TokenSpec(
        start=v,
        length=walk_budget(dex, attempt),
        stop=dex.overlay.old.in_spare,
        excluded=frozenset((u,)),
    )


def resolve_insertion(dex: "DexNetwork", u: NodeId, w: NodeId) -> bool:
    """Resolve an insertion token that landed on ``w``: if ``w`` is
    (still) in Spare it donates one transferable vertex to ``u``.
    Returns False when a concurrently resolved token already drained
    ``w`` below the Spare threshold -- the caller retries next round.

    NOTE: ``multi._heal_insertions_in_waves`` inlines this body on its
    hot path; any semantic change here must be mirrored there (the
    batch-vs-sequential equivalence tests guard the invariants, not the
    duplication)."""
    old = dex.overlay.old
    if not old.in_spare(w):
        return False
    z = old.pick_transferable(w, dex.rng)
    dex.overlay.move(Layer.OLD, z, u)
    return True


def redistribution_token(
    dex: "DexNetwork", v: NodeId, attempt: int = 0
) -> TokenSpec:
    """The Algorithm 4.3 token: from the adopter ``v``, seek a Low node
    willing to take one of the deleted node's vertices."""
    return TokenSpec(
        start=v,
        length=walk_budget(dex, attempt),
        stop=dex.overlay.old.in_low,
    )


def resolve_redistribution(
    dex: "DexNetwork", z: Vertex, w: NodeId
) -> bool:
    """Resolve a redistribution token for vertex ``z`` landing on ``w``:
    re-check ``w`` is still Low (a previous token of the same wave may
    have filled it) and move ``z`` there.

    NOTE: ``multi.delete_batch`` inlines this body on its hot path; any
    semantic change here must be mirrored there."""
    if not dex.overlay.old.in_low(w):
        return False
    dex.overlay.move(Layer.OLD, z, w)
    return True


# ----------------------------------------------------------------------
# type-2 threshold decisions (Fact 2, shared with the batch engine)
# ----------------------------------------------------------------------
def spare_depleted(dex: "DexNetwork", origin: NodeId, ledger: CostLedger) -> bool:
    """Flood ``computeSpare`` from ``origin``; True when |Spare| fell
    below the ``theta * n`` threshold (time for type-2 inflation)."""
    n, spare = compute_spare(dex.overlay, origin, dex.config, ledger)
    return spare < dex.config.type1_threshold(n)


def low_depleted(dex: "DexNetwork", origin: NodeId, ledger: CostLedger) -> bool:
    """Flood ``computeLow`` from ``origin``; True when |Low| fell below
    the ``theta * n`` threshold (time for type-2 deflation)."""
    n, low = compute_low(dex.overlay, origin, dex.config, ledger)
    return low < dex.config.type1_threshold(n)


# ----------------------------------------------------------------------
# insertion (Algorithm 4.2)
# ----------------------------------------------------------------------
def insertion_recovery(
    dex: "DexNetwork", u: NodeId, v: NodeId, ledger: CostLedger
) -> RecoveryType:
    """Heal the insertion of ``u`` attached to ``v``."""
    from repro.core import type2_simplified  # local import to avoid cycle

    for attempt in range(dex.config.max_type1_retries + 1):
        if dex.staggered is not None:
            if dex.staggered.try_assign_inserted(u, v, ledger):
                return RecoveryType.TYPE1_DURING_STAGGER
            ledger.retries += 1
            continue
        token = insertion_token(dex, u, v, attempt)
        result = random_walk(
            dex.graph, token.start, token.length, dex.rng,
            stop=token.stop, excluded=token.excluded,
        )
        ledger.charge_walk(result.hops)
        if result.found and resolve_insertion(dex, u, result.end):
            return RecoveryType.TYPE1
        # Walk failed: decide between type-2 recovery and retrying.
        if dex.config.type2_mode == "simplified":
            if spare_depleted(dex, v, ledger):
                type2_simplified.simplified_inflate(dex, ledger, inserted=u, attach=v)
                return RecoveryType.TYPE2_INFLATE
            ledger.retries += 1
        else:
            dex.coordinator.charge_update(v, ledger)
            if dex.coordinator.wants_inflate():
                dex.start_staggered_inflate(ledger)
                # next iteration assigns u from the freshly inflated chunk
            else:
                ledger.retries += 1
    raise RecoveryError(
        f"insertion of node {u} not healed within "
        f"{dex.config.max_type1_retries} type-1 attempts"
    )


# ----------------------------------------------------------------------
# deletion (Algorithm 4.3)
# ----------------------------------------------------------------------
def adopt_deleted(
    dex: "DexNetwork",
    u: NodeId,
    ledger: CostLedger,
    adopter: NodeId | None = None,
) -> tuple[NodeId, list[Vertex], list[Vertex]]:
    """Structural half of Algorithm 4.3: a surviving neighbor adopts all
    of ``u``'s vertices (old and new layer) and ``u`` leaves the graph.
    Returns ``(adopter, adopted old vertices, adopted new vertices)``;
    the caller redistributes the old vertices (sequentially here, or in
    congestion-synchronous waves in the batch engine)."""
    overlay = dex.overlay
    if adopter is None:
        neighbors = overlay.graph.distinct_neighbors(u)
        if not neighbors:
            raise RecoveryError(
                f"deleted node {u} had no neighbor to adopt its load"
            )
        v = min(neighbors)
    else:
        v = adopter

    old_vertices = sorted(overlay.old.vertices_of(u))
    new_vertices = (
        sorted(overlay.new.vertices_of(u)) if overlay.new is not None else []
    )
    was_coordinator = dex.coordinator.node == u

    # v attaches all of u's edges to itself == u's vertices move to v.
    for z in old_vertices:
        if dex.staggered is not None:
            dex.staggered.move_old(z, v)
        else:
            overlay.move(Layer.OLD, z, v)
    for z in new_vertices:
        overlay.move(Layer.NEW, z, v)
    overlay.graph.remove_node(u)

    if was_coordinator:
        # Neighbors replicate the coordinator state; the new host of
        # vertex 0 takes over with O(1) messages (Algorithm 4.7 line 2).
        ledger.messages += overlay.graph.connection_count(dex.coordinator.node) + 1
        ledger.rounds += 1
    return v, old_vertices, new_vertices


def deletion_recovery(
    dex: "DexNetwork", u: NodeId, ledger: CostLedger
) -> tuple[RecoveryType, NodeId]:
    """Heal the deletion of ``u``: a former neighbor adopts its vertices
    and redistributes them."""
    from repro.core import type2_simplified

    overlay = dex.overlay
    v, old_vertices, new_vertices = adopt_deleted(dex, u, ledger)

    if dex.staggered is not None:
        dex.staggered.redistribute_after_deletion(
            v, old_vertices, new_vertices, ledger
        )
        return RecoveryType.TYPE1_DURING_STAGGER, v

    # Normal operation: one walk per adopted vertex, sequential.
    remaining = list(old_vertices)
    while remaining:
        z = remaining.pop(0)
        placed = False
        for attempt in range(dex.config.max_type1_retries + 1):
            if dex.staggered is not None:
                break  # a deflate started mid-redistribution
            token = redistribution_token(dex, v, attempt)
            result = random_walk(
                dex.graph, token.start, token.length, dex.rng, stop=token.stop
            )
            ledger.charge_walk(result.hops)
            if result.found and resolve_redistribution(dex, z, result.end):
                placed = True
                break
            if dex.config.type2_mode == "simplified":
                if low_depleted(dex, v, ledger):
                    type2_simplified.simplified_deflate(dex, ledger)
                    return RecoveryType.TYPE2_DEFLATE, v
                ledger.retries += 1
            else:
                dex.coordinator.charge_update(v, ledger)
                if dex.coordinator.wants_deflate() and dex.can_deflate():
                    dex.start_staggered_deflate(ledger)
                    break
                ledger.retries += 1
        if dex.staggered is not None:
            # Hand the rest to the staggered machinery.
            leftover = ([] if placed else [z]) + remaining
            dex.staggered.redistribute_after_deletion(v, leftover, [], ledger)
            return RecoveryType.TYPE1_DURING_STAGGER, v
        if not placed:
            raise RecoveryError(
                f"vertex {z} of deleted node {u} could not be redistributed"
            )
    return RecoveryType.TYPE1, v


def pick_spare_vertex(dex: "DexNetwork", w: NodeId) -> Vertex:
    """Convenience used by tests: the vertex ``w`` would donate."""
    return dex.overlay.old.pick_transferable(w, dex.rng)
