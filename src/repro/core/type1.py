"""Type-1 recovery: Algorithms 4.2 (``insertion``) and 4.3 (``deletion``).

Insertion: the attach point ``v`` walks a token of length O(log n)
(excluding the fresh node ``u``) to find a node in Spare, which donates
one virtual vertex to ``u``.  Deletion: a surviving neighbor ``v`` adopts
the deleted node's vertices and walks one token per vertex to spread them
onto Low nodes.  Redistribution walks run sequentially with live load
updates, which is what makes Lemma 3(a)'s 4*zeta bound hold exactly
(DESIGN.md substitution 4).

On walk failure the algorithm decides between retrying and type-2
recovery: in ``simplified`` mode by flooding ``computeSpare`` /
``computeLow`` (Fact 2 thresholds), in ``staggered`` mode by asking the
coordinator (Algorithm 4.7), whose counters trigger at ``3*theta*n``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.aggregation import compute_low, compute_spare
from repro.errors import RecoveryError
from repro.net.metrics import CostLedger
from repro.net.walks import random_walk
from repro.types import Layer, NodeId, RecoveryType, Vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork


def walk_for(
    dex: "DexNetwork",
    start: NodeId,
    predicate: Callable[[NodeId], bool],
    ledger: CostLedger,
    exclude: frozenset[NodeId] = frozenset(),
    attempt: int = 0,
) -> NodeId | None:
    """One token walk; returns the found node or None.

    Lemma 2 says a ``c * log n`` walk succeeds w.h.p. whenever the target
    set holds a theta fraction -- with a large analysis constant ``c``.
    We run with a practical constant and instead *double* the walk budget
    every few failed attempts (capped at 8x, still O(log n)), which
    recovers the lemma's success probability without paying the long walk
    on the common path."""
    boost = min(8, 1 << (attempt // 4))
    length = boost * dex.config.walk_length(dex.size)
    result = random_walk(
        dex.graph, start, length, dex.rng, stop=predicate, excluded=exclude
    )
    ledger.charge_walk(result.hops)
    return result.end if result.found else None


# ----------------------------------------------------------------------
# insertion (Algorithm 4.2)
# ----------------------------------------------------------------------
def insertion_recovery(
    dex: "DexNetwork", u: NodeId, v: NodeId, ledger: CostLedger
) -> RecoveryType:
    """Heal the insertion of ``u`` attached to ``v``."""
    from repro.core import type2_simplified  # local import to avoid cycle

    old = dex.overlay.old
    exclude = frozenset((u,))
    for attempt in range(dex.config.max_type1_retries + 1):
        if dex.staggered is not None:
            if dex.staggered.try_assign_inserted(u, v, ledger):
                return RecoveryType.TYPE1_DURING_STAGGER
            ledger.retries += 1
            continue
        w = walk_for(dex, v, old.in_spare, ledger, exclude=exclude, attempt=attempt)
        if w is not None and old.in_spare(w):
            z = old.pick_transferable(w, dex.rng)
            dex.overlay.move(Layer.OLD, z, u)
            return RecoveryType.TYPE1
        # Walk failed: decide between type-2 recovery and retrying.
        if dex.config.type2_mode == "simplified":
            n, spare = compute_spare(dex.overlay, v, dex.config, ledger)
            if spare < dex.config.type1_threshold(n):
                type2_simplified.simplified_inflate(dex, ledger, inserted=u, attach=v)
                return RecoveryType.TYPE2_INFLATE
            ledger.retries += 1
        else:
            dex.coordinator.charge_update(v, ledger)
            if dex.coordinator.wants_inflate():
                dex.start_staggered_inflate(ledger)
                # next iteration assigns u from the freshly inflated chunk
            else:
                ledger.retries += 1
    raise RecoveryError(
        f"insertion of node {u} not healed within "
        f"{dex.config.max_type1_retries} type-1 attempts"
    )


# ----------------------------------------------------------------------
# deletion (Algorithm 4.3)
# ----------------------------------------------------------------------
def deletion_recovery(
    dex: "DexNetwork", u: NodeId, ledger: CostLedger
) -> tuple[RecoveryType, NodeId]:
    """Heal the deletion of ``u``: a former neighbor adopts its vertices
    and redistributes them."""
    from repro.core import type2_simplified

    overlay = dex.overlay
    neighbors = overlay.graph.distinct_neighbors(u)
    if not neighbors:
        raise RecoveryError(f"deleted node {u} had no neighbor to adopt its load")
    v = min(neighbors)

    old_vertices = sorted(overlay.old.vertices_of(u))
    new_vertices = (
        sorted(overlay.new.vertices_of(u)) if overlay.new is not None else []
    )
    was_coordinator = dex.coordinator.node == u

    # v attaches all of u's edges to itself == u's vertices move to v.
    for z in old_vertices:
        if dex.staggered is not None:
            dex.staggered.move_old(z, v)
        else:
            overlay.move(Layer.OLD, z, v)
    for z in new_vertices:
        overlay.move(Layer.NEW, z, v)
    overlay.graph.remove_node(u)

    if was_coordinator:
        # Neighbors replicate the coordinator state; the new host of
        # vertex 0 takes over with O(1) messages (Algorithm 4.7 line 2).
        ledger.messages += overlay.graph.connection_count(dex.coordinator.node) + 1
        ledger.rounds += 1

    if dex.staggered is not None:
        dex.staggered.redistribute_after_deletion(
            v, old_vertices, new_vertices, ledger
        )
        return RecoveryType.TYPE1_DURING_STAGGER, v

    # Normal operation: one walk per adopted vertex, sequential.
    remaining = list(old_vertices)
    while remaining:
        z = remaining.pop(0)
        placed = False
        for attempt in range(dex.config.max_type1_retries + 1):
            if dex.staggered is not None:
                break  # a deflate started mid-redistribution
            w = walk_for(dex, v, overlay.old.in_low, ledger, attempt=attempt)
            if w is not None and overlay.old.in_low(w):
                overlay.move(Layer.OLD, z, w)
                placed = True
                break
            if dex.config.type2_mode == "simplified":
                n, low = compute_low(overlay, v, dex.config, ledger)
                if low < dex.config.type1_threshold(n):
                    type2_simplified.simplified_deflate(dex, ledger)
                    return RecoveryType.TYPE2_DEFLATE, v
                ledger.retries += 1
            else:
                dex.coordinator.charge_update(v, ledger)
                if dex.coordinator.wants_deflate() and dex.can_deflate():
                    dex.start_staggered_deflate(ledger)
                    break
                ledger.retries += 1
        if dex.staggered is not None:
            # Hand the rest to the staggered machinery.
            leftover = ([] if placed else [z]) + remaining
            dex.staggered.redistribute_after_deletion(v, leftover, [], ledger)
            return RecoveryType.TYPE1_DURING_STAGGER, v
        if not placed:
            raise RecoveryError(
                f"vertex {z} of deleted node {u} could not be redistributed"
            )
    return RecoveryType.TYPE1, v


def pick_spare_vertex(dex: "DexNetwork", w: NodeId) -> Vertex:
    """Convenience used by tests: the vertex ``w`` would donate."""
    return dex.overlay.old.pick_transferable(w, dex.rng)
