"""Runtime verification of the DEX invariants (DESIGN.md I1-I8).

The paper *proves* these properties; the reproduction *checks* them after
every step in tests (and on demand via :meth:`DexNetwork.check_invariants`).
A failure raises :class:`InvariantViolation` with enough context to
reproduce the offending state.
"""

from __future__ import annotations

from repro.core.config import DexConfig
from repro.core.overlay import Overlay
from repro.errors import InvariantViolation
from repro.types import NodeId


def check_surjectivity(overlay: Overlay) -> None:
    """I1: every live node simulates at least one vertex of a live layer."""
    for u in overlay.graph.nodes():
        if overlay.total_load(u) < 1:
            raise InvariantViolation(f"node {u} simulates no virtual vertex")


def check_balance(overlay: Overlay, config: DexConfig) -> None:
    """I2: loads bounded by 4*zeta (8*zeta during staggered ops)."""
    staggered = overlay.new is not None
    bound = config.stagger_max_load if staggered else config.max_load
    for u in overlay.graph.nodes():
        load = overlay.total_load(u)
        if load > bound:
            raise InvariantViolation(
                f"node {u} simulates {load} vertices, exceeding "
                f"{'8*zeta' if staggered else '4*zeta'} = {bound}"
            )


def check_degrees(overlay: Overlay) -> None:
    """I3: degree(u) == 3 * load(u) + intermediate endpoints."""
    for u in overlay.graph.nodes():
        expected = overlay.expected_degree(u)
        actual = overlay.graph.degree(u)
        if expected != actual:
            raise InvariantViolation(
                f"node {u}: degree {actual} != expected {expected}"
            )


def check_edge_faithfulness(overlay: Overlay) -> None:
    """I4: the real multigraph is exactly the image of the live virtual
    edges plus intermediate edges."""
    expected = overlay.rebuild_expected_graph()
    graph = overlay.graph
    seen: set[tuple[NodeId, NodeId]] = set()
    for u in graph.nodes():
        for v, mult in graph.neighbor_multiplicities(u):
            key = (u, v) if u <= v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            if expected.get(key, 0) != mult:
                raise InvariantViolation(
                    f"edge {key}: multiplicity {mult} != expected "
                    f"{expected.get(key, 0)}"
                )
    for key, mult in expected.items():
        if key not in seen and mult != 0:
            raise InvariantViolation(f"expected edge {key} (x{mult}) missing")


def check_connectivity(overlay: Overlay) -> None:
    """I5: the healed network is connected."""
    if not overlay.graph.is_connected():
        raise InvariantViolation("real network is disconnected")


def check_mapping_sets(overlay: Overlay) -> None:
    """I7: Spare/Low sets match recomputed loads."""
    overlay.old.verify()
    if overlay.new is not None:
        overlay.new.verify()


def check_cached_aggregates(overlay: Overlay) -> None:
    """The incremental caches (degrees, node array, edge units, neighbor
    CDFs, sparse adjacency, intermediate endpoints) match a from-scratch
    recomputation."""
    overlay.graph.verify_caches()
    overlay.graph.verify_sparse_cache()
    overlay.verify_intermediate_cache()


def check_all(overlay: Overlay, config: DexConfig) -> None:
    check_mapping_sets(overlay)
    check_cached_aggregates(overlay)
    check_surjectivity(overlay)
    check_balance(overlay, config)
    check_degrees(overlay)
    check_edge_faithfulness(overlay)
    check_connectivity(overlay)
