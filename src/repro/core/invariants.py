"""Runtime verification of the DEX invariants (DESIGN.md I1-I8).

The paper *proves* these properties; the reproduction *checks* them after
every step in tests (and on demand via :meth:`DexNetwork.check_invariants`).
A failure raises :class:`InvariantViolation` with enough context to
reproduce the offending state.
"""

from __future__ import annotations

import random

from repro.core.config import DexConfig
from repro.core.overlay import Overlay
from repro.errors import InvariantViolation
from repro.net.walks import HAVE_NUMPY, run_wave
from repro.types import NodeId

#: fixed probe seed for the wave-engine equivalence audit (any value
#: works -- both engines must agree for *every* seed; pinning one keeps
#: the oracle deterministic)
_WAVE_PROBE_SEED = 0xD32

#: tokens/length of the probe wave: enough to cross congested edges and
#: excluded-node redraws, small enough to run after every churn step
_WAVE_PROBE_TOKENS = 16
_WAVE_PROBE_LENGTH = 6


def check_surjectivity(overlay: Overlay) -> None:
    """I1: every live node simulates at least one vertex of a live layer."""
    for u in overlay.graph.nodes():
        if overlay.total_load(u) < 1:
            raise InvariantViolation(f"node {u} simulates no virtual vertex")


def check_balance(overlay: Overlay, config: DexConfig) -> None:
    """I2: loads bounded by 4*zeta (8*zeta during staggered ops)."""
    staggered = overlay.new is not None
    bound = config.stagger_max_load if staggered else config.max_load
    for u in overlay.graph.nodes():
        load = overlay.total_load(u)
        if load > bound:
            raise InvariantViolation(
                f"node {u} simulates {load} vertices, exceeding "
                f"{'8*zeta' if staggered else '4*zeta'} = {bound}"
            )


def check_degrees(overlay: Overlay) -> None:
    """I3: degree(u) == 3 * load(u) + intermediate endpoints."""
    for u in overlay.graph.nodes():
        expected = overlay.expected_degree(u)
        actual = overlay.graph.degree(u)
        if expected != actual:
            raise InvariantViolation(
                f"node {u}: degree {actual} != expected {expected}"
            )


def check_edge_faithfulness(overlay: Overlay) -> None:
    """I4: the real multigraph is exactly the image of the live virtual
    edges plus intermediate edges."""
    expected = overlay.rebuild_expected_graph()
    graph = overlay.graph
    seen: set[tuple[NodeId, NodeId]] = set()
    for u in graph.nodes():
        for v, mult in graph.neighbor_multiplicities(u):
            key = (u, v) if u <= v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            if expected.get(key, 0) != mult:
                raise InvariantViolation(
                    f"edge {key}: multiplicity {mult} != expected "
                    f"{expected.get(key, 0)}"
                )
    for key, mult in expected.items():
        if key not in seen and mult != 0:
            raise InvariantViolation(f"expected edge {key} (x{mult}) missing")


def check_connectivity(overlay: Overlay) -> None:
    """I5: the healed network is connected."""
    if not overlay.graph.is_connected():
        raise InvariantViolation("real network is disconnected")


def check_mapping_sets(overlay: Overlay) -> None:
    """I7: Spare/Low sets match recomputed loads."""
    overlay.old.verify()
    if overlay.new is not None:
        overlay.new.verify()


def check_cached_aggregates(overlay: Overlay) -> None:
    """The incremental caches (degrees, node array, edge units, neighbor
    CDFs, sparse adjacency, intermediate endpoints) match a from-scratch
    recomputation."""
    overlay.graph.verify_caches()
    overlay.graph.verify_sparse_cache()
    overlay.verify_intermediate_cache()


def check_wave_engine_equivalence(overlay: Overlay) -> None:
    """The vectorized wave scheduler and the scalar reference produce
    identical transcripts on the live graph under a fixed seed.

    Waves never mutate the graph, so the audit runs a small probe wave
    through both engines -- exercising weighted hops, directed-edge
    claims (token count exceeds some nodes' out-edges) and excluded-node
    redraws -- and compares results *and* the per-round
    ``(positions, claimed edges)`` transcript.  A no-op when numpy is
    absent (the vector engine does not exist without it)."""
    if not HAVE_NUMPY:  # pragma: no cover - the CI image always has numpy
        return
    graph = overlay.graph
    if graph.num_nodes < 2:
        return
    starts = sorted(graph.nodes())[:_WAVE_PROBE_TOKENS]
    # Exclude each token's successor start: live nodes, so the redraw
    # path is exercised whenever a draw lands on one.
    excluded = [starts[(i + 1) % len(starts)] for i in range(len(starts))]
    members = overlay.old.spare
    scalar_t: list = []
    vector_t: list = []
    scalar = run_wave(
        graph, starts, _WAVE_PROBE_LENGTH, members,
        random.Random(_WAVE_PROBE_SEED), excluded,
        engine="scalar", transcript=scalar_t,
    )
    vector = run_wave(
        graph, starts, _WAVE_PROBE_LENGTH, members,
        random.Random(_WAVE_PROBE_SEED), excluded,
        engine="vector", transcript=vector_t,
    )
    if tuple(scalar[0]) != tuple(vector[0]) or tuple(scalar[1]) != tuple(
        vector[1]
    ) or scalar[2:] != vector[2:]:
        raise InvariantViolation(
            f"wave engines diverged: scalar {scalar[1:]} vs vector {vector[1:]}"
        )
    if scalar_t != vector_t:
        bad = next(i for i, (a, b) in enumerate(zip(scalar_t, vector_t)) if a != b)
        raise InvariantViolation(
            f"wave-engine transcripts diverged at round {bad}: "
            f"{scalar_t[bad]} != {vector_t[bad]}"
        )


def check_all(overlay: Overlay, config: DexConfig) -> None:
    check_mapping_sets(overlay)
    check_cached_aggregates(overlay)
    check_wave_engine_equivalence(overlay)
    check_surjectivity(overlay)
    check_balance(overlay, config)
    check_degrees(overlay)
    check_edge_faithfulness(overlay)
    check_connectivity(overlay)
