"""``computeSpare`` / ``computeLow`` (Algorithm 4.4).

When a type-1 walk fails, the initiator deterministically learns the
network size and the size of Spare (resp. Low) by a flood/echo
aggregation before deciding between retrying and type-2 recovery.  One
flood aggregates both counters (two O(log n)-bit fields per message,
within the CONGEST budget).

Fidelity follows :attr:`DexConfig.fidelity`: ``engine`` schedules every
message on the synchronous engine; ``analytic`` charges the identical
costs from BFS quantities (the equivalence is asserted by
``tests/test_net/test_flood.py``).
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import DexConfig
from repro.core.overlay import Overlay
from repro.net.flood import flood_echo_analytic, flood_echo_engine
from repro.net.metrics import CostLedger
from repro.types import NodeId


def _aggregate(
    overlay: Overlay,
    origin: NodeId,
    config: DexConfig,
    ledger: CostLedger,
    member: Callable[[NodeId], bool],
) -> tuple[int, int]:
    def value_of(u: NodeId) -> int:
        # Two counters packed in one flood: n in the high part, membership
        # in the low part (the engine carries them as one payload value;
        # a real implementation sends two O(log n)-bit fields).
        return (1 << 32) | (1 if member(u) else 0)

    flood = flood_echo_engine if config.fidelity == "engine" else flood_echo_analytic
    packed = flood(overlay.graph, origin, value_of, ledger=ledger)
    n = packed >> 32
    count = packed & 0xFFFFFFFF
    return n, count


def compute_spare(
    overlay: Overlay, origin: NodeId, config: DexConfig, ledger: CostLedger
) -> tuple[int, int]:
    """Returns ``(n, |Spare|)`` for the primary layer."""
    return _aggregate(overlay, origin, config, ledger, overlay.old.in_spare)


def compute_low(
    overlay: Overlay, origin: NodeId, config: DexConfig, ledger: CostLedger
) -> tuple[int, int]:
    """Returns ``(n, |Low|)`` for the primary layer."""
    return _aggregate(overlay, origin, config, ledger, overlay.old.in_low)
