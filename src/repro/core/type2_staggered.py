"""Staggered type-2 recovery (Section 4.4, Procedures ``inflate`` and
``deflate``) -- the variant that achieves Theorem 1's *worst-case*
O(log n) rounds/messages and O(1) topology changes per step.

The coordinator triggers the operation early (at the ``3*theta*n``
threshold) and the rebuild is spread over the recoveries of the following
Theta(n) steps:

* **Phase 1** processes the old vertices in chunks of ``ceil(1/theta)``
  per step (order ``1, 2, ..., p-1, 0`` -- the coordinator's vertex
  last).  For inflation each processed vertex spawns its cloud in the new
  p-cycle at its current host; for deflation each *dominating* vertex
  spawns its image.  Edges toward not-yet-generated neighbors become
  *intermediate edges* anchored at the old vertex that will generate them
  (locally computable: Eq. 7's inverse / the dominating-vertex formula),
  and are resolved into proper edges when that vertex activates.
* **Phase 2** drops the old cycle's vertices (and edges) chunk by chunk.
* Insertions and deletions continue to be healed with type-1 recovery
  throughout; per Lemma 9 each node carries at most ``8*zeta`` vertices
  and the network keeps a constant spectral gap (>= (1-lambda)^2/8).

Bookkeeping specific to deflation: a node none of whose old vertices is
dominating would end up with nothing; the first time such a node is
*active* (hosts a vertex of the current chunk) it walks for a donor with
two "guarantee units" (an unprocessed dominating old vertex, or an active
new vertex) and takes one over -- the concrete realization of the
contending/taken protocol of Procedure ``deflate``.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Callable

from repro.core.type1 import walk_for
from repro.errors import RecoveryError
from repro.net.metrics import CostLedger
from repro.net.routing import route_cost
from repro.types import Layer, NodeId, Vertex
from repro.virtual.clouds import (
    deflation_image,
    dominating_vertex,
    inflation_cloud,
    inflation_parent,
    is_dominating,
)
from repro.virtual.pcycle import PCycle
from repro.virtual.primes import deflation_prime, inflation_prime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork

_DIST_SAMPLE_PER_STEP = 3


class StaggeredOp:
    """One in-flight staggered inflation or deflation."""

    def __init__(self, dex: "DexNetwork", kind: str, ledger: CostLedger) -> None:
        if kind not in ("inflate", "deflate"):
            raise ValueError(f"unknown staggered kind {kind!r}")
        self.dex = dex
        self.kind = kind
        self.p_old = dex.overlay.old.p
        if kind == "inflate":
            self.p_new = inflation_prime(self.p_old)
        else:
            self.p_new = deflation_prime(self.p_old)
            if self.p_new < dex.size:
                raise RecoveryError(
                    f"deflation target p={self.p_new} below network size {dex.size}"
                )
        self.pcycle_new = PCycle(self.p_new)
        self.new = dex.overlay.open_new_layer(self.pcycle_new)
        self.phase = 1
        self.frontier = 0  # processed (phase 1) / dropped (phase 2) positions
        self.chunk = dex.config.chunk_size
        #: inactive new vertex -> Counter of active new vertices that
        #: registered an intermediate edge toward its generating old vertex
        self.pending: dict[Vertex, Counter[Vertex]] = {}
        #: deflation only: per-node count of unprocessed dominating vertices
        self.dom_unprocessed: Counter[NodeId] = Counter()
        #: deflation only: nodes whose contending status was resolved
        self.checked: set[NodeId] = set()
        self.forced = False
        self._dist_samples: list[int] = []
        if kind == "deflate":
            for x in range(self.p_old):
                if is_dominating(x, self.p_old, self.p_new):
                    self.dom_unprocessed[dex.overlay.old.host_of(x)] += 1
        # The trigger step processes the first chunk immediately
        # (Section 4.4.1: the coordinator contacts the first 1/theta
        # vertices during the recovery of step t0).
        self.advance(ledger)

    # ------------------------------------------------------------------
    # schedule
    # ------------------------------------------------------------------
    def vertex_at(self, position: int) -> Vertex:
        """Processing order 1, 2, ..., p-1, 0 (coordinator last)."""
        return position + 1 if position < self.p_old - 1 else 0

    def position_of(self, x: Vertex) -> int:
        return x - 1 if x >= 1 else self.p_old - 1

    def is_processed(self, x: Vertex) -> bool:
        if self.phase == 2:
            return True
        return self.position_of(x) < self.frontier

    @property
    def progress(self) -> float:
        done = self.frontier + (self.p_old if self.phase == 2 else 0)
        return done / (2 * self.p_old)

    # ------------------------------------------------------------------
    # per-step advancement
    # ------------------------------------------------------------------
    def advance(self, ledger: CostLedger) -> None:
        """Process one chunk (called during the recovery of every step,
        mirroring the coordinator forwarding the request to the nodes
        simulating the next 1/theta vertices)."""
        # Coordinator forwards the chunk request along the complete layer.
        first_old = self.vertex_at(min(self.frontier, self.p_old - 1))
        if self.phase == 1:
            lm = self.dex.overlay.old
            target = first_old
        else:
            lm = self.new
            target = self._parent_image(first_old)
        if lm.is_active(0) and lm.is_active(target):
            ledger.charge_route(route_cost(lm.pcycle, lm.host_of, 0, target))
        end = min(self.frontier + self.chunk, self.p_old)
        if self.phase == 1:
            processed = [self.vertex_at(pos) for pos in range(self.frontier, end)]
            for x in processed:
                self._process_phase1(x, ledger)
            self.dex.notify_chunk(processed, ledger)
            self.frontier = end
            if self.frontier == self.p_old:
                self._prepare_phase2(ledger)
                self.phase = 2
                self.frontier = 0
        else:
            for pos in range(self.frontier, end):
                self.dex.overlay.deactivate(Layer.OLD, self.vertex_at(pos))
            self.frontier = end
            if self.frontier == self.p_old:
                self._finish(ledger)

    def force_complete(self, ledger: CostLedger) -> None:
        """Run the operation to completion within the current step
        (robustness fallback; flagged in the step report)."""
        self.forced = True
        while self.dex.staggered is self:
            self.advance(ledger)

    # ------------------------------------------------------------------
    # phase 1 processing
    # ------------------------------------------------------------------
    def _process_phase1(self, x: Vertex, ledger: CostLedger) -> None:
        if self.kind == "inflate":
            self._process_inflate(x, ledger)
        else:
            self._process_deflate(x, ledger)

    def _activate_new(self, y: Vertex, node: NodeId, ledger: CostLedger) -> None:
        """Activate new vertex ``y`` at ``node``: wire edges to active
        neighbors (resolving their intermediates) and register
        intermediates for inactive ones."""
        overlay = self.dex.overlay
        overlay.activate(Layer.NEW, y, node)
        parent_of_y = self._parent(y)
        riders = self.pending.pop(y, None)
        if riders:
            for src, count in riders.items():
                for _ in range(count):
                    overlay.remove_intermediate(src, parent_of_y)
        for nb in self.pcycle_new.neighbor_multiset(y):
            if nb == y:
                continue  # self-loop handled by activate()
            if not self.new.is_active(nb):
                anchor = self._parent(nb)
                overlay.add_intermediate(y, anchor)
                self.pending.setdefault(nb, Counter())[y] += 1
                self._charge_edge_establishment(parent_of_y, anchor, ledger)

    def _parent(self, y: Vertex) -> Vertex:
        """The old vertex that generates new vertex ``y``."""
        if self.kind == "inflate":
            return inflation_parent(y, self.p_old, self.p_new)
        return dominating_vertex(y, self.p_old, self.p_new)

    def _parent_image(self, x: Vertex) -> Vertex:
        """A new vertex generated by old vertex ``x``."""
        if self.kind == "inflate":
            return inflation_cloud(x, self.p_old, self.p_new)[0]
        return deflation_image(x, self.p_old, self.p_new)

    def _charge_edge_establishment(
        self, from_old: Vertex, to_old: Vertex, ledger: CostLedger
    ) -> None:
        """Connection request routed along the old cycle.  Exact distances
        are sampled a few times per step and the mean reused, keeping the
        per-step cost model honest without a BFS per edge."""
        if len(self._dist_samples) < _DIST_SAMPLE_PER_STEP:
            old = self.dex.overlay.old
            d = old.pcycle.distance(from_old, to_old)
            self._dist_samples.append(d)
            ledger.charge_route(d)
        else:
            mean = round(sum(self._dist_samples) / len(self._dist_samples))
            ledger.messages += mean

    def _process_inflate(self, x: Vertex, ledger: CostLedger) -> None:
        overlay = self.dex.overlay
        w = overlay.old.host_of(x)
        for y in inflation_cloud(x, self.p_old, self.p_new):
            self._activate_new(y, w, ledger)
        # Redistribute if w now simulates too many new vertices
        # (Procedure inflate line 6: |NewLoad| > 4*zeta).
        self._shed_new_overload(w, ledger)

    def _shed_new_overload(self, w: NodeId, ledger: CostLedger) -> None:
        config = self.dex.config
        attempts = 0
        while self.new.load(w) > config.max_load:
            target = walk_for(
                self.dex,
                w,
                lambda m: m != w and self.new.load(m) < config.max_load,
                ledger,
            )
            if target is None or target == w:
                attempts += 1
                ledger.retries += 1
                if attempts > config.max_type1_retries:
                    raise RecoveryError(
                        f"could not shed new-layer overload of node {w}"
                    )
                continue
            donate = self._pick_new_vertex(w)
            self.dex.overlay.move(Layer.NEW, donate, target)

    def _pick_new_vertex(self, w: NodeId) -> Vertex:
        vertices = sorted(self.new.vertices_of(w))
        if len(vertices) > 1 and vertices[0] == 0:
            return vertices[1]
        return vertices[0] if len(vertices) == 1 else vertices[-1]

    def _process_deflate(self, x: Vertex, ledger: CostLedger) -> None:
        overlay = self.dex.overlay
        w = overlay.old.host_of(x)
        if w not in self.checked:
            self.checked.add(w)
            if self.guarantee(w) == 0:
                self._resolve_contending(w, ledger)
        if is_dominating(x, self.p_old, self.p_new):
            w = overlay.old.host_of(x)  # may have changed if x was donated
            self.dom_unprocessed[w] -= 1
            if self.dom_unprocessed[w] <= 0:
                del self.dom_unprocessed[w]
            y = deflation_image(x, self.p_old, self.p_new)
            self._activate_new(y, w, ledger)

    # ------------------------------------------------------------------
    # deflation guarantees (contending/taken protocol)
    # ------------------------------------------------------------------
    def guarantee(self, u: NodeId) -> int:
        """Units ensuring ``u`` owns a vertex of the next cycle: its
        unprocessed dominating old vertices plus its active new vertices."""
        return self.dom_unprocessed.get(u, 0) + self.new.load(u)

    def _resolve_contending(self, u: NodeId, ledger: CostLedger) -> None:
        config = self.dex.config
        for _ in range(config.max_type1_retries + 1):
            donor = walk_for(
                self.dex, u, lambda m: m != u and self.guarantee(m) >= 2, ledger
            )
            if donor is not None and donor != u and self.guarantee(donor) >= 2:
                self._donate_guarantee(donor, u)
                return
            ledger.retries += 1
        raise RecoveryError(f"contending node {u} found no guarantee donor")

    def _donate_guarantee(self, donor: NodeId, receiver: NodeId) -> None:
        """Transfer one guarantee unit: an unprocessed dominating old
        vertex if the donor has a spare one, else an active new vertex."""
        overlay = self.dex.overlay
        if self.dom_unprocessed.get(donor, 0) >= 1 and self.guarantee(donor) >= 2:
            for x in sorted(overlay.old.vertices_of(donor)):
                if not self.is_processed(x) and is_dominating(
                    x, self.p_old, self.p_new
                ):
                    self.move_old(x, receiver)
                    return
        donate = self._pick_new_vertex(donor)
        overlay.move(Layer.NEW, donate, receiver)

    # ------------------------------------------------------------------
    # moves that keep the dom_unprocessed ledger current
    # ------------------------------------------------------------------
    def move_old(self, x: Vertex, target: NodeId) -> None:
        overlay = self.dex.overlay
        previous = overlay.old.host_of(x)
        if previous == target:
            return
        overlay.move(Layer.OLD, x, target)
        if (
            self.kind == "deflate"
            and not self.is_processed(x)
            and is_dominating(x, self.p_old, self.p_new)
        ):
            self.dom_unprocessed[previous] -= 1
            if self.dom_unprocessed[previous] <= 0:
                del self.dom_unprocessed[previous]
            self.dom_unprocessed[target] += 1

    # ------------------------------------------------------------------
    # churn handling during the operation
    # ------------------------------------------------------------------
    def try_assign_inserted(
        self, u: NodeId, v: NodeId, ledger: CostLedger
    ) -> bool:
        """Give the freshly inserted node ``u`` a vertex that guarantees
        it survives the swap (Section 4.4.1: 'we can simply assign one of
        the newly inflated vertices')."""
        overlay = self.dex.overlay
        exclude = frozenset((u,))

        if self.kind == "inflate" and self.phase == 1:
            def pred(m: NodeId) -> bool:
                if m == u:
                    return False
                if self.new.load(m) >= 2:
                    return True
                return overlay.old.load(m) >= 2 and any(
                    not self.is_processed(x) for x in overlay.old.vertices_of(m)
                )
        elif self.kind == "deflate" and self.phase == 1:
            def pred(m: NodeId) -> bool:
                return m != u and self.guarantee(m) >= 2
        else:  # phase 2 of either kind: the new cycle is complete
            def pred(m: NodeId) -> bool:
                return m != u and self.new.load(m) >= 2

        donor = walk_for(self.dex, v, pred, ledger, exclude=exclude)
        if donor is None or not pred(donor):
            return False

        if self.kind == "inflate" and self.phase == 1:
            if self.new.load(donor) >= 2:
                self.dex.overlay.move(Layer.NEW, self._pick_new_vertex(donor), u)
            else:
                unprocessed = sorted(
                    x
                    for x in overlay.old.vertices_of(donor)
                    if not self.is_processed(x)
                )
                self.move_old(unprocessed[-1], u)
        elif self.kind == "deflate" and self.phase == 1:
            self._donate_guarantee(donor, u)
        else:
            self.dex.overlay.move(Layer.NEW, self._pick_new_vertex(donor), u)
        return True

    def redistribute_after_deletion(
        self,
        v: NodeId,
        old_vertices: list[Vertex],
        new_vertices: list[Vertex],
        ledger: CostLedger,
    ) -> None:
        """Spread a deleted node's adopted vertices from ``v`` while the
        operation is in flight.  Primary targets are the usual Low /
        below-4*zeta nodes; the fallback accepts any node below the
        staggered 8*zeta bound (Lemma 9a); leftovers stay at ``v`` if
        within bound, else the operation is force-completed."""
        overlay = self.dex.overlay
        config = self.dex.config

        for x in old_vertices:
            if not overlay.old.is_active(x) or overlay.old.host_of(x) != v:
                continue  # already dropped by phase 2 or rehomed
            placed = self._place_with_retries(
                ledger,
                start=v,
                primary=lambda m: m != v and overlay.old.in_low(m),
                fallback=lambda m: m != v
                and overlay.total_load(m) < config.stagger_max_load,
                apply=lambda m, x=x: self.move_old(x, m),
            )
            if not placed:
                break
        for y in new_vertices:
            if not self.new.is_active(y) or self.new.host_of(y) != v:
                continue
            self._place_with_retries(
                ledger,
                start=v,
                primary=lambda m: m != v and 0 < self.new.load(m) < config.max_load,
                fallback=lambda m: m != v
                and overlay.total_load(m) < config.stagger_max_load,
                apply=lambda m, y=y: overlay.move(Layer.NEW, y, m),
            )
        if overlay.total_load(v) > config.stagger_max_load:
            self.force_complete(ledger)

    def _place_with_retries(
        self,
        ledger: CostLedger,
        start: NodeId,
        primary: Callable[[NodeId], bool],
        fallback: Callable[[NodeId], bool],
        apply: Callable[[NodeId], None],
    ) -> bool:
        config = self.dex.config
        for predicate in (primary, fallback):
            for _ in range(max(2, config.max_type1_retries // 4)):
                m = walk_for(self.dex, start, predicate, ledger)
                if m is not None and predicate(m):
                    apply(m)
                    return True
                ledger.retries += 1
        return False

    # ------------------------------------------------------------------
    # phase transitions
    # ------------------------------------------------------------------
    def _prepare_phase2(self, ledger: CostLedger) -> None:
        """Every node must own a vertex of the new cycle before the old
        one is dismantled; stragglers (rare, see module docstring) pull
        one over now."""
        overlay = self.dex.overlay
        config = self.dex.config
        if self.pending:
            raise RecoveryError(
                f"{len(self.pending)} new vertices still pending at phase 2"
            )
        for u in sorted(overlay.graph.nodes()):
            if self.new.load(u) > 0:
                continue
            placed = self._place_with_retries(
                ledger,
                start=u,
                primary=lambda m: m != u and self.new.load(m) >= 2,
                fallback=lambda m: m != u and self.new.load(m) >= 2,
                apply=lambda m, u=u: overlay.move(
                    Layer.NEW, self._pick_new_vertex(m), u
                ),
            )
            if not placed:
                donor = max(
                    (m for m in overlay.graph.nodes() if m != u),
                    key=self.new.load,
                )
                overlay.move(Layer.NEW, self._pick_new_vertex(donor), u)
                self.forced = True

    def _finish(self, ledger: CostLedger) -> None:
        overlay = self.dex.overlay
        overlay.promote_new_layer()
        self.dex.on_staggered_complete(self, ledger)
