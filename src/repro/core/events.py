"""Per-step reports: what the adversary did, how DEX healed it, and what
it cost -- the raw material for every benchmark table."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.metrics import CostLedger
from repro.types import NodeId, RecoveryType, StepKind


@dataclass
class StepReport:
    """Outcome of one adversarial step and its recovery."""

    step: int
    kind: StepKind
    recovery: RecoveryType
    node: NodeId
    n_after: int
    p: int
    costs: CostLedger = field(default_factory=CostLedger)
    p_next: int | None = None
    staggered_active: bool = False
    staggered_progress: float | None = None
    forced_completion: bool = False
    notes: tuple[str, ...] = ()

    @property
    def rounds(self) -> int:
        return self.costs.rounds

    @property
    def messages(self) -> int:
        return self.costs.messages

    @property
    def topology_changes(self) -> int:
        return self.costs.topology_changes

    def summary_line(self) -> str:
        tail = ""
        if self.staggered_active:
            tail = f" [stagger {self.staggered_progress:.0%}]"
        if self.forced_completion:
            tail += " [forced]"
        return (
            f"step {self.step:>6d} {self.kind.value:<7s} node={self.node:<6d} "
            f"{self.recovery.value:<24s} n={self.n_after:<6d} p={self.p:<7d} "
            f"rounds={self.rounds:<5d} msgs={self.messages:<6d} "
            f"topo={self.topology_changes:<4d}{tail}"
        )
