"""Configuration of the DEX algorithm.

The structural constant is ``zeta = 8``: the maximum cloud size of the
p-cycle construction (inflation/deflation factors lie in (4, 8), so
clouds have at most 8 vertices).  From it the paper derives the load
bounds ``2*zeta`` (the Low threshold), ``4*zeta`` (the balanced-mapping
bound, Definition 3 usage) and ``8*zeta`` (the transient bound during
staggered type-2 recovery, Lemma 9a).

``theta`` is the *rebuilding parameter*: type-1 recovery is expected to
succeed while ``|Spare| >= theta*n`` (insertions) or ``|Low| >= theta*n``
(deletions); type-2 recovery triggers below the threshold (Fact 2), and
the coordinator of the staggered variant triggers early at ``3*theta*n``
(Section 4.4).  The proof needs ``theta <= 1/(68*zeta + 1)`` (Eq. 3);
:meth:`DexConfig.paper` restores that value, while the default 0.02 keeps
identical trigger structure at laptop-scale n (DESIGN.md substitution 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError

PAPER_ZETA = 8


@dataclass(frozen=True)
class DexConfig:
    """Immutable algorithm parameters."""

    zeta: int = PAPER_ZETA
    theta: float = 0.02
    walk_multiplier: float = 3.0
    max_type1_retries: int = 60
    type2_mode: str = "staggered"  # "staggered" (worst-case) or "simplified" (amortized)
    fidelity: str = "analytic"  # "analytic" or "engine" cost accounting for primitives
    stagger_chunk: int | None = None  # old vertices processed per step; default ceil(1/theta)
    min_network_size: int = 3
    validate_every_step: bool = False
    #: batched churn validates the adversary's batch up front (attach
    #: fan-out, surviving neighbors, remainder connectivity).  Single
    #: steps perform no such model check, so perf comparisons of the
    #: *healing* engines disable it; leave on whenever the batch source
    #: is untrusted.
    validate_batches: bool = True
    #: scheduler for the batch healing waves: "vector" (lockstep numpy
    #: over the patched CSR), "scalar" (the per-token reference loop,
    #: also the numpy-free fallback) or "auto" (vector for large waves).
    #: Both implement the same draw protocol, so for a fixed seed the
    #: choice never changes results -- only wall-clock.
    wave_engine: str = "auto"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.zeta < 8:
            raise ConfigError(
                f"zeta must be >= 8 (the p-cycle cloud-size bound), got {self.zeta}"
            )
        if not (0.0 < self.theta <= 1.0 / 3.0):
            raise ConfigError(f"theta must be in (0, 1/3], got {self.theta}")
        if self.walk_multiplier <= 0:
            raise ConfigError("walk_multiplier must be positive")
        if self.type2_mode not in ("staggered", "simplified"):
            raise ConfigError(f"unknown type2_mode {self.type2_mode!r}")
        if self.fidelity not in ("analytic", "engine"):
            raise ConfigError(f"unknown fidelity {self.fidelity!r}")
        if self.wave_engine not in ("auto", "vector", "scalar"):
            raise ConfigError(f"unknown wave_engine {self.wave_engine!r}")
        if self.min_network_size < 2:
            raise ConfigError("min_network_size must be >= 2")
        if self.stagger_chunk is not None and self.stagger_chunk < 1:
            raise ConfigError("stagger_chunk must be >= 1")

    # ------------------------------------------------------------------
    # derived thresholds
    # ------------------------------------------------------------------
    @property
    def low_threshold(self) -> int:
        """Load at or below which a node is in Low (Eq. 1): ``2*zeta``."""
        return 2 * self.zeta

    @property
    def max_load(self) -> int:
        """The balanced-mapping bound: ``4*zeta`` (Lemma 3/5)."""
        return 4 * self.zeta

    @property
    def stagger_max_load(self) -> int:
        """Transient bound during staggered type-2 recovery: ``8*zeta``
        (Lemma 9a)."""
        return 8 * self.zeta

    @property
    def chunk_size(self) -> int:
        """Old vertices processed per step of a staggered operation
        (the paper's ``ceil(1/theta)`` active vertices)."""
        if self.stagger_chunk is not None:
            return self.stagger_chunk
        return max(1, math.ceil(1.0 / self.theta))

    def walk_length(self, n: int) -> int:
        """Type-1 walk budget: ``ceil(walk_multiplier * log2(n))`` hops."""
        return max(2, math.ceil(self.walk_multiplier * math.log2(max(n, 2))))

    def type1_threshold(self, n: int) -> int:
        """``theta * n`` as an integer count (Fact 2 comparisons)."""
        return math.ceil(self.theta * n)

    def coordinator_threshold(self, n: int) -> int:
        """``3 * theta * n`` -- the staggered early trigger (Section 4.4)."""
        return math.ceil(3.0 * self.theta * n)

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, **overrides: object) -> "DexConfig":
        """The analysis constants: ``theta = 1/(68*zeta + 1)`` (Eq. 3)."""
        base = cls(theta=1.0 / (68.0 * PAPER_ZETA + 1.0))
        return replace(base, **overrides) if overrides else base

    def with_(self, **overrides: object) -> "DexConfig":
        """Functional update helper."""
        return replace(self, **overrides)
