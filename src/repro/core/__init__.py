"""DEX proper: the paper's algorithms.

* :mod:`repro.core.config` -- tunable constants (Section 4's theta, zeta,
  walk lengths) with a paper-faithful preset.
* :mod:`repro.core.mapping` / :mod:`repro.core.overlay` -- the balanced
  virtual mapping (Definitions 2-3) and its edge synchronization with the
  real multigraph, including the two-layer state used by staggered type-2
  recovery.
* :mod:`repro.core.type1` -- Algorithms 4.2/4.3.
* :mod:`repro.core.type2_simplified` -- Algorithms 4.5/4.6.
* :mod:`repro.core.coordinator`, :mod:`repro.core.type2_staggered` --
  Algorithms 4.7-4.9.
* :mod:`repro.core.multi` -- Section 5 batched churn.
* :mod:`repro.core.dex` -- the public facade :class:`DexNetwork`.
"""

from repro.core.config import DexConfig
from repro.core.events import StepReport
from repro.core.dex import DexNetwork

__all__ = ["DexConfig", "StepReport", "DexNetwork"]
