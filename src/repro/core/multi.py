"""Batched churn (Section 5, Corollary 2): the batch-parallel healing
engine.

The adversary may insert or delete up to ``eps * n`` nodes per step,
subject to the model's restrictions:

* insertions attach only O(1) new nodes to any single existing node
  (otherwise the constant-degree CONGEST network around the attach point
  becomes a congestion bottleneck),
* deletions must leave the remainder graph connected and every deleted
  node must retain at least one surviving neighbor.

Healing is *batch-parallel*: every pending recovery generates a token
(the :mod:`repro.core.type1` generation/resolution split) and the whole
wave is scheduled through :func:`~repro.net.walks.run_wave` (the
specialized fast path of :func:`~repro.net.walks.scheduled_walks`)
under the Lemma 11 one-token-per-edge-per-round rule.  The wave hop
itself runs on the engine selected by ``DexConfig.wave_engine`` -- by
default the lockstep numpy engine, which advances all active tokens of
a round as vectorized operations over the incrementally patched CSR;
the scalar reference produces bit-identical results for a fixed seed
and serves as the differential oracle.  Rounds are charged as the
scheduler's *actual* round count (and messages as the total hops), not a
post-hoc max over sequential recoveries.  Tokens whose landing node was
drained by an earlier resolution of the same wave simply retry in the
next congestion-synchronous round.

Large batches may deplete Spare (resp. Low) within O(1) steps, so after
a wave with failures the engine makes *one* type-2 decision for the
whole round: in ``simplified`` mode a single ``computeSpare`` /
``computeLow`` flood (every node of the batch learns the counts from the
same flood) followed, below the Fact 2 threshold, by one simplified
inflation that heals every still-pending insertion in the same rebuild;
in ``staggered`` mode one coordinator query, after which still-pending
recoveries ride the staggered machinery exactly as single-step churn
does.  The corollary's bounds -- O(n log^2 n) messages and O(log^3 n)
rounds per batch step w.h.p. -- come from these procedures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.events import StepReport
from repro.core.type1 import (
    adopt_deleted,
    insertion_recovery,
    low_depleted,
    spare_depleted,
    walk_budget,
)
from repro.errors import AdversaryError, RecoveryError
from repro.net.metrics import CostLedger
from repro.net.walks import run_wave
from repro.types import Layer, NodeId, RecoveryType, StepKind, Vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork

MAX_ATTACH_PER_NODE = 4


# ----------------------------------------------------------------------
# insertion batches
# ----------------------------------------------------------------------
def _validate_insert_batch(
    dex: "DexNetwork", attachments: Sequence[tuple[NodeId, NodeId]]
) -> None:
    """Reject a malformed batch *before* any mutation, so a bad entry
    mid-batch can never leave earlier insertions applied."""
    if not attachments:
        raise AdversaryError("empty insertion batch")
    if len(attachments) > max(1, dex.size):
        raise AdversaryError(
            f"batch of {len(attachments)} exceeds eps*n for n={dex.size}"
        )
    per_host: dict[NodeId, int] = {}
    seen_new: set[NodeId] = set()
    for new_id, attach in attachments:
        per_host[attach] = per_host.get(attach, 0) + 1
        if per_host[attach] > MAX_ATTACH_PER_NODE:
            raise AdversaryError(
                f"more than {MAX_ATTACH_PER_NODE} insertions attached to "
                f"node {attach} in one batch"
            )
        if new_id in seen_new:
            raise AdversaryError(f"node id {new_id} repeated in the batch")
        seen_new.add(new_id)
        if dex.graph.has_node(new_id):
            raise AdversaryError(f"node id {new_id} already exists")
        if not dex.graph.has_node(attach):
            raise AdversaryError(f"attach point {attach} does not exist")


def insert_batch(
    dex: "DexNetwork", attachments: Sequence[tuple[NodeId, NodeId]]
) -> StepReport:
    """Insert a batch of ``(new_id, attach_to)`` pairs in one step,
    healing the whole batch in congestion-synchronous token waves."""
    _validate_insert_batch(dex, attachments)

    ledger = CostLedger()
    topo_before = dex.graph.topology_changes
    recovery = RecoveryType.TYPE1

    # Structural phase: all new nodes join with their adversarial
    # attachment edge at once (Section 5's batch step).
    for new_id, attach in attachments:
        dex._next_id = max(dex._next_id, new_id + 1)
        dex.graph.add_node(new_id)
        dex.graph.add_edge(new_id, attach)

    pending: list[tuple[NodeId, NodeId]] = list(attachments)
    if dex.staggered is None:
        pending, recovery = _heal_insertions_in_waves(
            dex, pending, ledger, recovery
        )
    # A staggered op in flight (from the start, or triggered by a failed
    # wave): the remaining insertions ride it one by one, exactly like
    # single-step churn (Section 4.4.1).
    for u, v in pending:
        insertion_recovery(dex, u, v, ledger)
        recovery = RecoveryType.TYPE1_DURING_STAGGER

    # Algorithm 4.2 line 3: drop the adversary's attachments unless a
    # virtual edge requires the connection (reference counting makes
    # this exactly "remove one multiplicity unit").
    for new_id, attach in attachments:
        dex.graph.remove_edge(new_id, attach, 1)
    return dex._finish_step(
        StepKind.BATCH,
        attachments[0][0],
        attachments[0][1],
        recovery,
        ledger,
        topo_before,
    )


def _heal_insertions_in_waves(
    dex: "DexNetwork",
    pending: list[tuple[NodeId, NodeId]],
    ledger: CostLedger,
    recovery: RecoveryType,
) -> tuple[list[tuple[NodeId, NodeId]], RecoveryType]:
    """Token waves under Lemma 11 until every insertion found a Spare
    donor, a type-2 inflation healed the leftovers, or a staggered op
    took over (the caller finishes those sequentially)."""
    from repro.core import type2_simplified

    overlay = dex.overlay
    for wave in range(dex.config.max_type1_retries + 1):
        if not pending or dex.staggered is not None:
            break
        length = walk_budget(dex, wave)
        old = overlay.old
        ends, founds, hops, rounds = run_wave(
            dex.graph,
            [v for _u, v in pending],
            length,
            old.spare,
            dex.rng,
            excluded=[u for u, _v in pending],
            engine=dex.config.wave_engine,
        )
        ledger.charge_walk_wave(walks=len(pending), hops=hops, rounds=rounds)
        still: list[tuple[NodeId, NodeId]] = []
        spare = old.spare
        pick = old.pick_transferable
        move = overlay.move
        rng = dex.rng
        for i, (u, v) in enumerate(pending):
            w = ends[i]
            # Re-check Spare membership: an earlier resolution of the
            # same wave may have drained w (same semantics as
            # resolve_insertion, inlined for the hot path).
            if founds[i] and w in spare:
                move(Layer.OLD, pick(w, rng), u)
                continue
            still.append((u, v))
        pending = still
        if not pending:
            break
        # One type-2 decision per round for the whole batch.
        origin = pending[0][1]
        if dex.config.type2_mode == "simplified":
            if spare_depleted(dex, origin, ledger):
                type2_simplified.simplified_inflate(
                    dex, ledger, pending=pending
                )
                return [], RecoveryType.TYPE2_INFLATE
            ledger.retries += len(pending)
        else:
            dex.coordinator.charge_update(origin, ledger)
            if dex.coordinator.wants_inflate():
                dex.start_staggered_inflate(ledger)
                return pending, recovery
            ledger.retries += len(pending)
    if pending and dex.staggered is None:
        raise RecoveryError(
            f"{len(pending)} batched insertions not healed within "
            f"{dex.config.max_type1_retries} token waves"
        )
    return pending, recovery


# ----------------------------------------------------------------------
# deletion batches
# ----------------------------------------------------------------------
def delete_batch(dex: "DexNetwork", nodes: Sequence[NodeId]) -> StepReport:
    """Delete a batch of nodes in one step, enforcing the connectivity
    conditions of Corollary 2, then redistribute every adopted vertex in
    congestion-synchronous token waves."""
    from repro.core import type2_simplified

    victims = list(dict.fromkeys(nodes))
    if not victims:
        raise AdversaryError("empty deletion batch")
    if dex.size - len(victims) < dex.config.min_network_size:
        raise AdversaryError("batch would shrink the network below minimum size")
    victim_set = set(victims)
    adopter: dict[NodeId, NodeId] = {}
    for u in victims:
        if not dex.graph.has_node(u):
            raise AdversaryError(f"node {u} does not exist")
        survivors = [
            w for w in dex.graph.distinct_neighbors(u) if w not in victim_set
        ]
        if not survivors:
            raise AdversaryError(
                f"deleted node {u} would have no surviving neighbor "
                "(violates the Section 5 deletion condition)"
            )
        # The smallest surviving neighbor adopts (edges toward survivors
        # only appear during the structural sweep, so the choice made at
        # validation time stays live).
        adopter[u] = min(survivors)
    if dex.config.validate_batches and not _remainder_connected(dex, victim_set):
        raise AdversaryError("batch deletion would disconnect the network")

    ledger = CostLedger()
    topo_before = dex.graph.topology_changes
    recovery = RecoveryType.TYPE1

    # Structural phase: each victim's vertices move to its smallest
    # *surviving* neighbor (adoption never targets a later victim, so
    # vertices move exactly once).  Outside a staggered op the adoption
    # is the bulk contraction primitive -- O(connections + load) per
    # victim instead of per-vertex edge rewiring; during one, the
    # adopted load is redistributed immediately through the staggered
    # machinery, mirroring single-step deletions.
    pending: list[tuple[Vertex, NodeId]] = []
    coord = dex.coordinator.node
    for u in victims:
        v = adopter[u]
        if dex.staggered is None:
            old_vertices = dex.overlay.adopt_node(u, v)
            if u == coord:
                # O(1) takeover by the new host of vertex 0 (Alg. 4.7).
                coord = dex.coordinator.node
                ledger.messages += dex.graph.connection_count(coord) + 1
                ledger.rounds += 1
            pending.extend((z, v) for z in old_vertices)
        else:
            _, old_vertices, new_vertices = adopt_deleted(
                dex, u, ledger, adopter=v
            )
            dex.staggered.redistribute_after_deletion(
                v, old_vertices, new_vertices, ledger
            )
            recovery = RecoveryType.TYPE1_DURING_STAGGER
            coord = dex.coordinator.node  # vertex 0 may have rehomed

    overlay = dex.overlay
    for wave in range(dex.config.max_type1_retries + 1):
        if not pending or dex.staggered is not None:
            break
        length = walk_budget(dex, wave)
        low = overlay.old.low
        ends, founds, hops, rounds = run_wave(
            dex.graph,
            [v for _z, v in pending],
            length,
            low,
            dex.rng,
            engine=dex.config.wave_engine,
        )
        ledger.charge_walk_wave(walks=len(pending), hops=hops, rounds=rounds)
        still: list[tuple[Vertex, NodeId]] = []
        move = overlay.move
        for i, (z, v) in enumerate(pending):
            # Re-check Low membership (a previous token of this wave may
            # have filled the landing node) -- resolve_redistribution,
            # inlined for the hot path.
            if founds[i] and ends[i] in low:
                move(Layer.OLD, z, ends[i])
                continue
            still.append((z, v))
        pending = still
        if not pending:
            break
        origin = pending[0][1]
        if dex.config.type2_mode == "simplified":
            if low_depleted(dex, origin, ledger):
                # The deflation rebuilds the whole cycle; the adopted
                # old-layer vertices cease to exist with it.
                type2_simplified.simplified_deflate(dex, ledger)
                pending = []
                recovery = RecoveryType.TYPE2_DEFLATE
                break
            ledger.retries += len(pending)
        else:
            dex.coordinator.charge_update(origin, ledger)
            if dex.coordinator.wants_deflate() and dex.can_deflate():
                dex.start_staggered_deflate(ledger)
                break
            ledger.retries += len(pending)

    if pending and dex.staggered is not None:
        # A deflate started mid-heal: hand each adopter's leftovers to
        # the staggered machinery (Lemma 9a bounds keep loads legal).
        by_adopter: dict[NodeId, list[Vertex]] = {}
        for z, v in pending:
            by_adopter.setdefault(v, []).append(z)
        for v, leftovers in by_adopter.items():
            dex.staggered.redistribute_after_deletion(v, leftovers, [], ledger)
        pending = []
        recovery = RecoveryType.TYPE1_DURING_STAGGER
    if pending:
        raise RecoveryError(
            f"{len(pending)} adopted vertices not redistributed within "
            f"{dex.config.max_type1_retries} token waves"
        )
    return dex._finish_step(
        StepKind.BATCH,
        victims[0],
        dex.coordinator.node,
        recovery,
        ledger,
        topo_before,
    )


def _remainder_connected(dex: "DexNetwork", victims: set[NodeId]) -> bool:
    """Survivor-subgraph connectivity on the incrementally patched CSR
    (vectorized frontier BFS), replacing the former pure-Python BFS that
    dominated batch validation at large n."""
    return dex.graph.survivors_connected(victims)
