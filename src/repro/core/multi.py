"""Batched churn (Section 5, Corollary 2).

The adversary may insert or delete up to ``eps * n`` nodes per step,
subject to the model's restrictions:

* insertions attach only O(1) new nodes to any single existing node
  (otherwise the constant-degree CONGEST network around the attach point
  becomes a congestion bottleneck),
* deletions must leave the remainder graph connected and every deleted
  node must retain at least one surviving neighbor.

Large batches may deplete Spare (resp. Low) within O(1) steps, so the
batch handler uses the *simplified* type-2 procedures when thresholds
break (the corollary's bounds -- O(n log^2 n) messages and O(log^3 n)
rounds per batch step w.h.p. -- come from these procedures; parallel
token-level scheduling inside a batch is accounted as the max over the
batch for rounds and the sum for messages).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.events import StepReport
from repro.errors import AdversaryError
from repro.net.metrics import CostLedger
from repro.types import NodeId, RecoveryType, StepKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork

MAX_ATTACH_PER_NODE = 4


def insert_batch(
    dex: "DexNetwork", attachments: Sequence[tuple[NodeId, NodeId]]
) -> StepReport:
    """Insert a batch of ``(new_id, attach_to)`` pairs in one step."""
    from repro.core.type1 import insertion_recovery

    if not attachments:
        raise AdversaryError("empty insertion batch")
    if len(attachments) > max(1, dex.size):
        raise AdversaryError(
            f"batch of {len(attachments)} exceeds eps*n for n={dex.size}"
        )
    per_host: dict[NodeId, int] = {}
    for new_id, attach in attachments:
        per_host[attach] = per_host.get(attach, 0) + 1
        if per_host[attach] > MAX_ATTACH_PER_NODE:
            raise AdversaryError(
                f"more than {MAX_ATTACH_PER_NODE} insertions attached to "
                f"node {attach} in one batch"
            )
        if dex.graph.has_node(new_id):
            raise AdversaryError(f"node id {new_id} already exists")

    ledger = CostLedger()
    topo_before = dex.graph.topology_changes
    max_rounds = 0
    total_messages = 0
    for new_id, attach in attachments:
        if not dex.graph.has_node(attach):
            raise AdversaryError(f"attach point {attach} does not exist")
        sub = CostLedger()
        dex._next_id = max(dex._next_id, new_id + 1)
        dex.graph.add_node(new_id)
        dex.graph.add_edge(new_id, attach)
        insertion_recovery(dex, new_id, attach, sub)
        dex.graph.remove_edge(new_id, attach, 1)
        max_rounds = max(max_rounds, sub.rounds)
        total_messages += sub.messages
        ledger.walks += sub.walks
        ledger.retries += sub.retries
        ledger.floods += sub.floods
    ledger.rounds += max_rounds  # token-parallel healing within the batch
    ledger.messages += total_messages
    return dex._finish_step(
        StepKind.BATCH,
        attachments[0][0],
        attachments[0][1],
        RecoveryType.TYPE1,
        ledger,
        topo_before,
    )


def delete_batch(dex: "DexNetwork", nodes: Sequence[NodeId]) -> StepReport:
    """Delete a batch of nodes in one step, enforcing the connectivity
    conditions of Corollary 2."""
    from repro.core.type1 import deletion_recovery

    victims = list(dict.fromkeys(nodes))
    if not victims:
        raise AdversaryError("empty deletion batch")
    if dex.size - len(victims) < dex.config.min_network_size:
        raise AdversaryError("batch would shrink the network below minimum size")
    victim_set = set(victims)
    for u in victims:
        if not dex.graph.has_node(u):
            raise AdversaryError(f"node {u} does not exist")
        survivors = [
            w for w in dex.graph.distinct_neighbors(u) if w not in victim_set
        ]
        if not survivors:
            raise AdversaryError(
                f"deleted node {u} would have no surviving neighbor "
                "(violates the Section 5 deletion condition)"
            )
    if not _remainder_connected(dex, victim_set):
        raise AdversaryError("batch deletion would disconnect the network")

    ledger = CostLedger()
    topo_before = dex.graph.topology_changes
    max_rounds = 0
    total_messages = 0
    for u in victims:
        sub = CostLedger()
        deletion_recovery(dex, u, sub)
        max_rounds = max(max_rounds, sub.rounds)
        total_messages += sub.messages
        ledger.walks += sub.walks
        ledger.retries += sub.retries
        ledger.floods += sub.floods
    ledger.rounds += max_rounds
    ledger.messages += total_messages
    return dex._finish_step(
        StepKind.BATCH,
        victims[0],
        dex.coordinator.node,
        RecoveryType.TYPE1,
        ledger,
        topo_before,
    )


def _remainder_connected(dex: "DexNetwork", victims: set[NodeId]) -> bool:
    survivors = [u for u in dex.graph.nodes() if u not in victims]
    if not survivors:
        return False
    seen = {survivors[0]}
    stack = [survivors[0]]
    while stack:
        u = stack.pop()
        for w in dex.graph.distinct_neighbors(u):
            if w not in victims and w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(survivors)
