"""Batched churn (Section 5, Corollary 2): the batch-parallel healing
engine.

The adversary may insert or delete up to ``eps * n`` nodes per step,
subject to the model's restrictions:

* insertions attach only O(1) new nodes to any single existing node
  (otherwise the constant-degree CONGEST network around the attach point
  becomes a congestion bottleneck),
* deletions must leave the remainder graph connected and every deleted
  node must retain at least one surviving neighbor.

Healing is *batch-parallel*: every pending recovery generates a token
(the :mod:`repro.core.type1` generation/resolution split) and the whole
wave is scheduled through :func:`~repro.net.walks.run_wave` (the
specialized fast path of :func:`~repro.net.walks.scheduled_walks`)
under the Lemma 11 one-token-per-edge-per-round rule.  The wave hop
itself runs on the engine selected by ``DexConfig.wave_engine`` -- by
default the lockstep numpy engine, which advances all active tokens of
a round as vectorized operations over the incrementally patched CSR;
the scalar reference produces bit-identical results for a fixed seed
and serves as the differential oracle.  Rounds are charged as the
scheduler's *actual* round count (and messages as the total hops), not a
post-hoc max over sequential recoveries.  Tokens whose landing node was
drained by an earlier resolution of the same wave simply retry in the
next congestion-synchronous round.

Large batches may deplete Spare (resp. Low) within O(1) steps, so after
a wave with failures the engine makes *one* type-2 decision for the
whole round: in ``simplified`` mode a single ``computeSpare`` /
``computeLow`` flood (every node of the batch learns the counts from the
same flood) followed, below the Fact 2 threshold, by one simplified
inflation that heals every still-pending insertion in the same rebuild;
in ``staggered`` mode one coordinator query, after which still-pending
recoveries ride the staggered machinery exactly as single-step churn
does.  The corollary's bounds -- O(n log^2 n) messages and O(log^3 n)
rounds per batch step w.h.p. -- come from these procedures.

**Partial-batch outcomes** (PR 5): validation no longer has to be
all-or-nothing.  :func:`partition_insert_batch` /
:func:`partition_delete_batch` split a submitted batch into the legal
actions (healed together in one wave) and a per-action
:class:`BatchRejection` carrying the offending node and the reason, and
:func:`insert_batch_partial` / :func:`delete_batch_partial` heal the
legal majority while reporting every rejection -- the per-request
accountability the membership-service gateway
(:mod:`repro.service.gateway`) and the campaign driver's single-pass
fallback path need.  The strict :func:`insert_batch` /
:func:`delete_batch` are thin wrappers that raise on the first
rejection, preserving the historical all-or-nothing surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.events import StepReport
from repro.core.type1 import (
    adopt_deleted,
    insertion_recovery,
    low_depleted,
    spare_depleted,
    walk_budget,
)
from repro.errors import AdversaryError, RecoveryError
from repro.net.metrics import CostLedger
from repro.net.walks import run_wave
from repro.obs import trace as _trace
from repro.types import Layer, NodeId, RecoveryType, StepKind, Vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork
    from repro.net.topology import DynamicMultigraph

MAX_ATTACH_PER_NODE = 4


# ----------------------------------------------------------------------
# partial-batch outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchRejection:
    """One action of a submitted batch that validation refused, with the
    reason the caller (a gateway client, the campaign driver) can act
    on.  ``index`` is the position in the *submitted* batch; ``node`` is
    the new id (insertions) or the victim (deletions)."""

    index: int
    node: NodeId
    reason: str


@dataclass
class BatchOutcome:
    """Result of a partial batch step: the legal actions that healed in
    one wave, the per-action rejections, and the engine's
    :class:`~repro.core.events.StepReport` (``None`` when nothing was
    legal, in which case no step ran and the network is untouched)."""

    kind: str  # "insert" | "delete"
    #: legal payload entries, submission order preserved -- ``(new_id,
    #: attach_to)`` pairs for insertions, victim ids for deletions
    accepted: list = field(default_factory=list)
    rejected: list[BatchRejection] = field(default_factory=list)
    report: StepReport | None = None

    @property
    def ok(self) -> bool:
        return not self.rejected

    def rejection_reasons(self) -> dict[NodeId, str]:
        return {r.node: r.reason for r in self.rejected}


# ----------------------------------------------------------------------
# insertion batches
# ----------------------------------------------------------------------
def partition_insert_batch(
    dex: "DexNetwork",
    attachments: Sequence[tuple[NodeId, NodeId]],
    *,
    has_node: "Callable[[NodeId], bool] | None" = None,
    size: int | None = None,
) -> tuple[list[tuple[NodeId, NodeId]], list[BatchRejection]]:
    """Partition an insertion batch into the legal attachments and a
    per-entry rejection list, *before* any mutation.  Checks per entry:
    fresh id not already scheduled or present, live attach point, the
    O(1) attach fan-out bound, and the ``eps*n`` batch-size cap (counted
    over *accepted* entries, so illegal entries do not eat the budget).

    Every check is **membership-determined**: it needs only "which ids
    are live" and "how many", never the topology.  ``has_node``/``size``
    therefore accept an overriding membership view, which is how the
    pipelined gateway partitions flush k+1 against the *predicted*
    post-flush-k membership while flush k's token wave is still healing
    (the engine re-partitions against the real graph at execute time, so
    a wrong prediction degrades to a per-request rejection, never to a
    corrupt wave)."""
    cap = max(1, dex.size if size is None else size)
    per_host: dict[NodeId, int] = {}
    scheduled: set[NodeId] = set()
    legal: list[tuple[NodeId, NodeId]] = []
    rejected: list[BatchRejection] = []
    if has_node is None:
        has_node = dex.graph.has_node
    for index, (new_id, attach) in enumerate(attachments):
        if new_id in scheduled:
            reason = f"node id {new_id} repeated in the batch"
        elif has_node(new_id):
            reason = f"node id {new_id} already exists"
        elif not has_node(attach):
            reason = f"attach point {attach} does not exist"
        elif per_host.get(attach, 0) >= MAX_ATTACH_PER_NODE:
            reason = (
                f"more than {MAX_ATTACH_PER_NODE} insertions attached to "
                f"node {attach} in one batch"
            )
        elif len(legal) >= cap:
            reason = f"batch of {len(attachments)} exceeds eps*n for n={cap}"
        else:
            per_host[attach] = per_host.get(attach, 0) + 1
            scheduled.add(new_id)
            legal.append((new_id, attach))
            continue
        rejected.append(BatchRejection(index, new_id, reason))
    return legal, rejected


def _validate_insert_batch(
    dex: "DexNetwork", attachments: Sequence[tuple[NodeId, NodeId]]
) -> None:
    """All-or-nothing validation *before* any mutation, so a bad entry
    mid-batch can never leave earlier insertions applied."""
    if not attachments:
        raise AdversaryError("empty insertion batch")
    if len(attachments) > max(1, dex.size):
        raise AdversaryError(
            f"batch of {len(attachments)} exceeds eps*n for n={dex.size}"
        )
    _legal, rejected = partition_insert_batch(dex, attachments)
    if rejected:
        raise AdversaryError(rejected[0].reason)


def insert_batch(
    dex: "DexNetwork", attachments: Sequence[tuple[NodeId, NodeId]]
) -> StepReport:
    """Insert a batch of ``(new_id, attach_to)`` pairs in one step,
    healing the whole batch in congestion-synchronous token waves.
    All-or-nothing: any illegal entry rejects the whole batch
    (:func:`insert_batch_partial` heals the legal majority instead)."""
    _validate_insert_batch(dex, attachments)
    return _execute_insert_batch(dex, attachments)


def insert_batch_partial(
    dex: "DexNetwork", attachments: Sequence[tuple[NodeId, NodeId]]
) -> BatchOutcome:
    """Heal the legal subset of an insertion batch in one wave and
    report every rejected entry with its reason.  An empty or fully
    illegal batch runs no step (``report is None``)."""
    legal, rejected = partition_insert_batch(dex, attachments)
    report = _execute_insert_batch(dex, legal) if legal else None
    return BatchOutcome("insert", accepted=legal, rejected=rejected, report=report)


def _execute_insert_batch(
    dex: "DexNetwork", attachments: Sequence[tuple[NodeId, NodeId]]
) -> StepReport:
    """Apply a pre-validated insertion batch (structural phase + healing
    waves); shared by the strict and partial entry points."""
    if _trace.current().enabled:
        with _trace.span("core.insert_batch", batch=len(attachments)) as sp:
            report = _insert_batch_impl(dex, attachments)
            sp.set(recovery=report.recovery.name.lower())
            return report
    return _insert_batch_impl(dex, attachments)


def _insert_batch_impl(
    dex: "DexNetwork", attachments: Sequence[tuple[NodeId, NodeId]]
) -> StepReport:
    ledger = CostLedger()
    topo_before = dex.graph.topology_changes
    recovery = RecoveryType.TYPE1

    # Structural phase: all new nodes join with their adversarial
    # attachment edge at once (Section 5's batch step).
    for new_id, attach in attachments:
        dex._next_id = max(dex._next_id, new_id + 1)
        dex.graph.add_node(new_id)
        dex.graph.add_edge(new_id, attach)

    pending: list[tuple[NodeId, NodeId]] = list(attachments)
    if dex.staggered is None:
        pending, recovery = _heal_insertions_in_waves(
            dex, pending, ledger, recovery
        )
    # A staggered op in flight (from the start, or triggered by a failed
    # wave): the remaining insertions ride it one by one, exactly like
    # single-step churn (Section 4.4.1).
    for u, v in pending:
        insertion_recovery(dex, u, v, ledger)
        recovery = RecoveryType.TYPE1_DURING_STAGGER

    # Algorithm 4.2 line 3: drop the adversary's attachments unless a
    # virtual edge requires the connection (reference counting makes
    # this exactly "remove one multiplicity unit").
    for new_id, attach in attachments:
        dex.graph.remove_edge(new_id, attach, 1)
    return dex._finish_step(
        StepKind.BATCH,
        attachments[0][0],
        attachments[0][1],
        recovery,
        ledger,
        topo_before,
    )


def _heal_insertions_in_waves(
    dex: "DexNetwork",
    pending: list[tuple[NodeId, NodeId]],
    ledger: CostLedger,
    recovery: RecoveryType,
) -> tuple[list[tuple[NodeId, NodeId]], RecoveryType]:
    """Token waves under Lemma 11 until every insertion found a Spare
    donor, a type-2 inflation healed the leftovers, or a staggered op
    took over (the caller finishes those sequentially)."""
    from repro.core import type2_simplified

    overlay = dex.overlay
    for wave in range(dex.config.max_type1_retries + 1):
        if not pending or dex.staggered is not None:
            break
        length = walk_budget(dex, wave)
        old = overlay.old
        ends, founds, hops, rounds = run_wave(
            dex.graph,
            [v for _u, v in pending],
            length,
            old.spare,
            dex.rng,
            excluded=[u for u, _v in pending],
            engine=dex.config.wave_engine,
        )
        ledger.charge_walk_wave(walks=len(pending), hops=hops, rounds=rounds)
        still: list[tuple[NodeId, NodeId]] = []
        spare = old.spare
        pick = old.pick_transferable
        move = overlay.move
        rng = dex.rng
        for i, (u, v) in enumerate(pending):
            w = ends[i]
            # Re-check Spare membership: an earlier resolution of the
            # same wave may have drained w (same semantics as
            # resolve_insertion, inlined for the hot path).
            if founds[i] and w in spare:
                move(Layer.OLD, pick(w, rng), u)
                continue
            still.append((u, v))
        pending = still
        if not pending:
            break
        # One type-2 decision per round for the whole batch.
        origin = pending[0][1]
        if dex.config.type2_mode == "simplified":
            if spare_depleted(dex, origin, ledger):
                with _trace.span(
                    "core.type2.inflate", wave=wave, pending=len(pending)
                ):
                    type2_simplified.simplified_inflate(
                        dex, ledger, pending=pending
                    )
                return [], RecoveryType.TYPE2_INFLATE
            ledger.retries += len(pending)
        else:
            dex.coordinator.charge_update(origin, ledger)
            if dex.coordinator.wants_inflate():
                dex.start_staggered_inflate(ledger)
                return pending, recovery
            ledger.retries += len(pending)
    if pending and dex.staggered is None:
        raise RecoveryError(
            f"{len(pending)} batched insertions not healed within "
            f"{dex.config.max_type1_retries} token waves"
        )
    return pending, recovery


# ----------------------------------------------------------------------
# deletion batches
# ----------------------------------------------------------------------
def partition_delete_batch(
    dex: "DexNetwork",
    nodes: Sequence[NodeId],
    check_connectivity: bool | None = None,
) -> tuple[list[NodeId], list[BatchRejection], dict[NodeId, NodeId]]:
    """Partition a deletion batch into the legal victims, per-victim
    rejections, and each legal victim's adopter (its smallest surviving
    neighbor).

    A victim is rejected when it is a duplicate of an accepted victim,
    does not exist, would shrink the network below the minimum size
    (the budget is ``n - min_network_size`` accepted victims, consumed
    in submission order), would itself keep no surviving neighbor, or
    would strand an *earlier accepted* victim without one (earlier
    requests win, mirroring the service gateway's FIFO fairness).  When
    ``check_connectivity`` (default: ``DexConfig.validate_batches``)
    holds and the accepted set would disconnect the remainder, victims
    are re-admitted latest-first -- a union-find restore sweep, not a
    bisection -- until the survivor graph is connected again, and the
    re-admitted victims are rejected with a connectivity reason.

    When every victim is accepted, the result is exactly the historical
    all-or-nothing validation: same victim order, same adopters."""
    if check_connectivity is None:
        check_connectivity = dex.config.validate_batches
    graph = dex.graph
    budget = dex.size - dex.config.min_network_size
    legal: list[NodeId] = []
    accepted: set[NodeId] = set()
    rejected: list[BatchRejection] = []
    #: live survivors of each accepted victim (shrinks as later victims
    #: are accepted; never empties -- that is the stranding check)
    survivors_of: dict[NodeId, set[NodeId]] = {}
    #: live node -> accepted victims currently counting on it
    guards: dict[NodeId, list[NodeId]] = {}
    for index, u in enumerate(nodes):
        if u in accepted:
            reason = f"node {u} already deleted in this batch"
        elif not graph.has_node(u):
            reason = f"node {u} does not exist"
        elif len(legal) >= budget:
            reason = (
                f"deleting node {u} would shrink the network below the "
                f"minimum size {dex.config.min_network_size}"
            )
        else:
            survivors = {
                w for w in graph.distinct_neighbors(u) if w not in accepted
            }
            if not survivors:
                reason = (
                    f"deleted node {u} would have no surviving neighbor "
                    "(violates the Section 5 deletion condition)"
                )
            else:
                stranded = next(
                    (
                        v
                        for v in guards.get(u, ())
                        if len(survivors_of[v]) == 1
                    ),
                    None,
                )
                if stranded is not None:
                    reason = (
                        f"node {u} is the last surviving neighbor of "
                        f"batch victim {stranded}"
                    )
                else:
                    for v in guards.pop(u, ()):
                        survivors_of[v].discard(u)
                    accepted.add(u)
                    legal.append(u)
                    survivors_of[u] = survivors
                    for w in survivors:
                        guards.setdefault(w, []).append(u)
                    continue
        rejected.append(BatchRejection(index, u, reason))
    if (
        check_connectivity
        and legal
        and not _remainder_connected(dex, accepted)
    ):
        for u in _restore_for_connectivity(graph, legal):
            accepted.discard(u)
            rejected.append(
                BatchRejection(
                    nodes.index(u),
                    u,
                    f"deleting node {u} would disconnect the network",
                )
            )
        legal = [u for u in legal if u in accepted]
        rejected.sort(key=lambda r: r.index)
    adopter = {
        u: min(w for w in graph.distinct_neighbors(u) if w not in accepted)
        for u in legal
    }
    return legal, rejected, adopter


def _restore_for_connectivity(
    graph: "DynamicMultigraph", legal: Sequence[NodeId]
) -> list[NodeId]:
    """The victims to re-admit (reject) so the remainder reconnects.

    Union-find over the survivor graph, then restore sweeps latest-first
    that only re-admit victims actually *bridging* two or more live
    components (a victim whose live neighbors all sit in one component
    cannot help connectivity, so restoring it would reject a perfectly
    legal request).  When a sweep makes no progress -- components joined
    only through a chain of victims -- the latest remaining victim is
    force-restored to expose the chain, which guarantees termination:
    restoring every victim yields the original, connected graph."""
    victim_set = set(legal)
    parent: dict[NodeId, NodeId] = {}

    def find(x: NodeId) -> NodeId:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    components = 0
    for u in graph.nodes():
        if u not in victim_set:
            parent[u] = u
            components += 1
    for u in list(parent):
        for w in graph.distinct_neighbors(u):
            if w in parent:
                ru, rw = find(u), find(w)
                if ru != rw:
                    parent[rw] = ru
                    components -= 1

    def restore(u: NodeId) -> None:
        nonlocal components
        parent[u] = u
        components += 1
        for w in graph.distinct_neighbors(u):
            if w in parent:
                ru, rw = find(u), find(w)
                if ru != rw:
                    parent[rw] = ru
                    components -= 1

    restored: list[NodeId] = []
    remaining = list(legal)
    while components > 1 and remaining:
        progressed = False
        keep: list[NodeId] = []
        for u in reversed(remaining):
            if components > 1:
                roots = {
                    find(w)
                    for w in graph.distinct_neighbors(u)
                    if w in parent
                }
                if len(roots) >= 2:
                    restore(u)
                    restored.append(u)
                    progressed = True
                    continue
            keep.append(u)
        keep.reverse()
        remaining = keep
        if components > 1 and not progressed and remaining:
            u = remaining.pop()
            restore(u)
            restored.append(u)
    return restored


def delete_batch(dex: "DexNetwork", nodes: Sequence[NodeId]) -> StepReport:
    """Delete a batch of nodes in one step, enforcing the connectivity
    conditions of Corollary 2, then redistribute every adopted vertex in
    congestion-synchronous token waves.  All-or-nothing: any illegal
    victim rejects the whole batch (:func:`delete_batch_partial` heals
    the legal majority instead)."""
    victims = list(dict.fromkeys(nodes))
    if not victims:
        raise AdversaryError("empty deletion batch")
    if dex.size - len(victims) < dex.config.min_network_size:
        raise AdversaryError("batch would shrink the network below minimum size")
    legal, rejected, adopter = partition_delete_batch(dex, victims)
    if rejected:
        raise AdversaryError(rejected[0].reason)
    return _execute_delete_batch(dex, legal, adopter)


def delete_batch_partial(dex: "DexNetwork", nodes: Sequence[NodeId]) -> BatchOutcome:
    """Heal the legal subset of a deletion batch in one wave and report
    every rejected victim with its reason.  An empty or fully illegal
    batch runs no step (``report is None``)."""
    legal, rejected, adopter = partition_delete_batch(dex, list(nodes))
    report = _execute_delete_batch(dex, legal, adopter) if legal else None
    return BatchOutcome("delete", accepted=legal, rejected=rejected, report=report)


def _execute_delete_batch(
    dex: "DexNetwork", victims: list[NodeId], adopter: dict[NodeId, NodeId]
) -> StepReport:
    """Apply a pre-validated deletion batch (structural adoption sweep +
    redistribution waves); shared by the strict and partial entry
    points."""
    if _trace.current().enabled:
        with _trace.span("core.delete_batch", batch=len(victims)) as sp:
            report = _delete_batch_impl(dex, victims, adopter)
            sp.set(recovery=report.recovery.name.lower())
            return report
    return _delete_batch_impl(dex, victims, adopter)


def _delete_batch_impl(
    dex: "DexNetwork", victims: list[NodeId], adopter: dict[NodeId, NodeId]
) -> StepReport:
    from repro.core import type2_simplified

    ledger = CostLedger()
    topo_before = dex.graph.topology_changes
    recovery = RecoveryType.TYPE1

    # Structural phase: each victim's vertices move to its smallest
    # *surviving* neighbor (adoption never targets a later victim, so
    # vertices move exactly once).  Outside a staggered op the adoption
    # is the bulk contraction primitive -- O(connections + load) per
    # victim instead of per-vertex edge rewiring; during one, the
    # adopted load is redistributed immediately through the staggered
    # machinery, mirroring single-step deletions.
    pending: list[tuple[Vertex, NodeId]] = []
    coord = dex.coordinator.node
    for u in victims:
        v = adopter[u]
        if dex.staggered is None:
            old_vertices = dex.overlay.adopt_node(u, v)
            if u == coord:
                # O(1) takeover by the new host of vertex 0 (Alg. 4.7).
                coord = dex.coordinator.node
                ledger.messages += dex.graph.connection_count(coord) + 1
                ledger.rounds += 1
            pending.extend((z, v) for z in old_vertices)
        else:
            _, old_vertices, new_vertices = adopt_deleted(
                dex, u, ledger, adopter=v
            )
            dex.staggered.redistribute_after_deletion(
                v, old_vertices, new_vertices, ledger
            )
            recovery = RecoveryType.TYPE1_DURING_STAGGER
            coord = dex.coordinator.node  # vertex 0 may have rehomed

    overlay = dex.overlay
    for wave in range(dex.config.max_type1_retries + 1):
        if not pending or dex.staggered is not None:
            break
        length = walk_budget(dex, wave)
        low = overlay.old.low
        ends, founds, hops, rounds = run_wave(
            dex.graph,
            [v for _z, v in pending],
            length,
            low,
            dex.rng,
            engine=dex.config.wave_engine,
        )
        ledger.charge_walk_wave(walks=len(pending), hops=hops, rounds=rounds)
        still: list[tuple[Vertex, NodeId]] = []
        move = overlay.move
        for i, (z, v) in enumerate(pending):
            # Re-check Low membership (a previous token of this wave may
            # have filled the landing node) -- resolve_redistribution,
            # inlined for the hot path.
            if founds[i] and ends[i] in low:
                move(Layer.OLD, z, ends[i])
                continue
            still.append((z, v))
        pending = still
        if not pending:
            break
        origin = pending[0][1]
        if dex.config.type2_mode == "simplified":
            if low_depleted(dex, origin, ledger):
                # The deflation rebuilds the whole cycle; the adopted
                # old-layer vertices cease to exist with it.
                with _trace.span(
                    "core.type2.deflate", wave=wave, pending=len(pending)
                ):
                    type2_simplified.simplified_deflate(dex, ledger)
                pending = []
                recovery = RecoveryType.TYPE2_DEFLATE
                break
            ledger.retries += len(pending)
        else:
            dex.coordinator.charge_update(origin, ledger)
            if dex.coordinator.wants_deflate() and dex.can_deflate():
                dex.start_staggered_deflate(ledger)
                break
            ledger.retries += len(pending)

    if pending and dex.staggered is not None:
        # A deflate started mid-heal: hand each adopter's leftovers to
        # the staggered machinery (Lemma 9a bounds keep loads legal).
        by_adopter: dict[NodeId, list[Vertex]] = {}
        for z, v in pending:
            by_adopter.setdefault(v, []).append(z)
        for v, leftovers in by_adopter.items():
            dex.staggered.redistribute_after_deletion(v, leftovers, [], ledger)
        pending = []
        recovery = RecoveryType.TYPE1_DURING_STAGGER
    if pending:
        raise RecoveryError(
            f"{len(pending)} adopted vertices not redistributed within "
            f"{dex.config.max_type1_retries} token waves"
        )
    return dex._finish_step(
        StepKind.BATCH,
        victims[0],
        dex.coordinator.node,
        recovery,
        ledger,
        topo_before,
    )


def _remainder_connected(dex: "DexNetwork", victims: set[NodeId]) -> bool:
    """Survivor-subgraph connectivity on the incrementally patched CSR
    (vectorized frontier BFS), replacing the former pure-Python BFS that
    dominated batch validation at large n."""
    return dex.graph.survivors_connected(victims)
