"""Simplified type-2 recovery (Algorithms 4.5 and 4.6).

The whole virtual graph is replaced within a single step:

* **Inflation** (``simplifiedInfl``): every old vertex is replaced by its
  cloud in the next p-cycle ``Z(p')`` with ``p' in (4p, 8p)`` (Phase 1:
  flood the request, compute clouds, establish cycle edges locally and
  inverse edges by permutation routing), then nodes carrying more than
  ``4*zeta`` new vertices rebalance by random walks *on the new virtual
  graph* in epochs, with walk collisions resolved per Algorithm 4.5
  (Phase 2).
* **Deflation** (``simplifiedDefl``): each old vertex maps to
  ``floor(x/alpha)``; the *dominating* (smallest) old vertex of each
  deflation cloud keeps the new vertex.  Nodes left without any new
  vertex mark themselves *contending* and walk on the new virtual graph
  for a non-``taken`` vertex (Phase 2), guaranteeing surjectivity.

Costs per Lemma 5: O(n) topology changes, O(n log^2 n) messages and
O(log^3 n) rounds w.h.p. -- expensive, but separated by Omega(n) type-1
steps (Lemma 8), giving the amortized bounds of Corollary 1.

Implementation note: both phases mutate a host *plan* (a dict) and the
overlay is rebuilt once via :meth:`Overlay.replace_primary`, so the real
network never materializes an unbalanced intermediate state; the charged
costs are those of the distributed procedure (see module docstrings of
:mod:`repro.net.flood` and :mod:`repro.net.routing` for fidelity modes).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import RecoveryError
from repro.net.metrics import CostLedger
from repro.net.routing import permutation_routing
from repro.types import NodeId, Vertex
from repro.virtual.clouds import (
    dominating_vertex,
    inflation_cloud,
    inflation_parent,
)
from repro.virtual.pcycle import PCycle
from repro.virtual.primes import deflation_prime, inflation_prime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dex import DexNetwork

_MAX_EPOCHS_FACTOR = 12
_ROUTING_SAMPLE = 48


def _charge_broadcast(dex: "DexNetwork", origin: NodeId, ledger: CostLedger) -> None:
    """Flooding the inflation/deflation request to every node."""
    dist = dex.graph.bfs_distances(origin)
    ecc = max(dist.values()) if dist else 0
    deg_sum = sum(dex.graph.connection_count(u) for u in dist)
    ledger.charge_flood(rounds=ecc + 1, messages=deg_sum)


def _charge_inverse_edges(
    dex: "DexNetwork",
    old_pcycle: PCycle,
    packets: list[tuple[Vertex, Vertex]],
    ledger: CostLedger,
) -> None:
    """Cost of establishing the chord (inverse) edges of the new cycle by
    routing on the old cycle (stand-in for Cor. 7.7.3 of [28]).

    ``engine`` fidelity schedules the full permutation; ``analytic``
    samples path lengths and extrapolates (DESIGN.md substitution 2).
    """
    if not packets:
        return
    if dex.config.fidelity == "engine":
        rounds, msgs = permutation_routing(old_pcycle, packets, rng=dex.rng)
        ledger.charge_parallel(rounds=rounds, messages=msgs)
        return
    sample = packets
    if len(packets) > _ROUTING_SAMPLE:
        idx = sorted(dex.rng.sample(range(len(packets)), _ROUTING_SAMPLE))
        sample = [packets[i] for i in idx]
    lengths = [old_pcycle.distance(a, b) for a, b in sample]
    mean_len = sum(lengths) / len(lengths)
    max_len = max(lengths)
    congestion = math.ceil(math.log2(max(old_pcycle.p, 2))) ** 2
    ledger.charge_parallel(
        rounds=max_len + congestion,
        messages=round(mean_len * len(packets)),
    )


def _chord_packets(
    pcycle_new: PCycle,
    parent_of: Callable[[Vertex, int, int], Vertex],
    old_p: int,
    new_p: int,
) -> list[tuple[Vertex, Vertex]]:
    """One routing packet per chord edge of the new cycle, addressed
    between the old vertices whose clouds host the endpoints."""
    packets: list[tuple[Vertex, Vertex]] = []
    for y in range(1, new_p):
        inv = pcycle_new.chord_target(y)
        if inv <= y:
            continue  # each chord once, skip self-loops
        packets.append((parent_of(y, old_p, new_p), parent_of(inv, old_p, new_p)))
    return packets


# ----------------------------------------------------------------------
# Phase-2 epoch engine (shared by inflation and deflation)
# ----------------------------------------------------------------------
def _virtual_epoch_walks(
    dex: "DexNetwork",
    pcycle_new: PCycle,
    hosts: dict[Vertex, NodeId],
    per_node: dict[NodeId, list[Vertex]],
    tokens: list[NodeId],
    accept: "callable",
    ledger: CostLedger,
) -> list[tuple[NodeId, Vertex] | None]:
    """One epoch: every token walks once on the new virtual graph
    (simulated on the real network with constant overhead).  Collisions
    -- two tokens landing on the same vertex -- eliminate all but the
    first (Algorithm 4.5 line 14 / 4.6 line 12).  Returns per-token
    ``(owner, landing_vertex)`` for the winners, None for the losers."""
    length = dex.config.walk_length(max(dex.size, pcycle_new.p))
    landings: list[tuple[int, NodeId, Vertex]] = []
    for i, owner in enumerate(tokens):
        start_options = per_node.get(owner)
        if start_options:
            at = start_options[dex.rng.randrange(len(start_options))]
        else:
            at = dex.rng.randrange(pcycle_new.p)
        hops = 0
        for _ in range(length):
            options = pcycle_new.neighbor_multiset(at)
            nxt = options[dex.rng.randrange(3)]
            if hosts.get(nxt) != hosts.get(at):
                hops += 1
            at = nxt
        ledger.messages += hops
        landings.append((i, owner, at))
    ledger.rounds += length  # tokens advance in parallel, one hop per round
    results: list[tuple[NodeId, Vertex] | None] = [None] * len(tokens)
    claimed: set[Vertex] = set()
    for i, owner, vertex in landings:
        if vertex in claimed:
            continue  # simultaneous arrival: nobody wins this vertex twice
        if accept(owner, vertex):
            claimed.add(vertex)
            results[i] = (owner, vertex)
    return results


# ----------------------------------------------------------------------
# simplifiedInfl (Algorithm 4.5)
# ----------------------------------------------------------------------
def simplified_inflate(
    dex: "DexNetwork",
    ledger: CostLedger,
    inserted: NodeId | None = None,
    attach: NodeId | None = None,
    pending: "Sequence[tuple[NodeId, NodeId | None]] | None" = None,
) -> None:
    """Replace the cycle with the next p-cycle (Algorithm 4.5).

    ``pending`` lists freshly inserted nodes still waiting for their
    first vertex as ``(node, attach point)`` pairs -- the batch engine
    passes every unhealed insertion of the batch so the single inflation
    heals them all (Section 5 applies Corollary 2's accounting to the
    whole batch).  The legacy ``inserted``/``attach`` pair is the
    single-step special case."""
    config = dex.config
    old = dex.overlay.old
    p_old = old.p
    p_new = inflation_prime(p_old)
    pcycle_new = PCycle(p_new)
    pending_list: list[tuple[NodeId, NodeId | None]] = list(pending or ())
    if inserted is not None:
        pending_list.append((inserted, attach))
    first_attach = next((a for _, a in pending_list if a is not None), None)
    origin = first_attach if first_attach is not None else dex.coordinator.node

    # ---- Phase 1: everyone computes the same new p-cycle ----
    _charge_broadcast(dex, origin, ledger)
    hosts: dict[Vertex, NodeId] = {}
    for x in range(p_old):
        w = old.host_of(x)
        for y in inflation_cloud(x, p_old, p_new):
            hosts[y] = w
    # Cycle edges come from old cycle adjacency: O(1) rounds, one message
    # per new vertex.
    ledger.charge_parallel(rounds=2, messages=p_new)
    _charge_inverse_edges(
        dex, old.pcycle, _chord_packets(pcycle_new, inflation_parent, p_old, p_new), ledger
    )

    # Line 6: each freshly inserted node receives one newly generated
    # vertex from its attach point (or, should repeated donations drain
    # the attach point, from the currently fullest node -- every old
    # vertex spawned a >= 4-vertex cloud, so a donor always exists).
    if pending_list:
        owner_count = Counter(hosts.values())
        for node, node_attach in pending_list:
            donor = node_attach if node_attach is not None else dex.coordinator.node
            if owner_count.get(donor, 0) < 2:
                donor = max(owner_count, key=owner_count.get)
            donated = _take_vertex_from(hosts, donor)
            hosts[donated] = node
            owner_count[donor] -= 1
            owner_count[node] += 1
            ledger.charge_route(1)

    # ---- Phase 2: rebalance loads above 4*zeta ----
    loads = Counter(hosts.values())
    per_node: dict[NodeId, list[Vertex]] = defaultdict(list)
    for y, w in hosts.items():
        per_node[w].append(y)
    full: set[NodeId] = {w for w, load in loads.items() if load > config.low_threshold}

    def excess_tokens() -> list[NodeId]:
        tokens: list[NodeId] = []
        for w, load in loads.items():
            tokens.extend([w] * max(0, load - config.max_load))
        return tokens

    def accept(owner: NodeId, vertex: Vertex) -> bool:
        w = hosts[vertex]
        return w != owner and w not in full

    max_epochs = _MAX_EPOCHS_FACTOR * max(
        1, math.ceil(math.log2(max(dex.size, 2)))
    )
    epoch = 0
    tokens = excess_tokens()
    while tokens:
        epoch += 1
        if epoch > max_epochs:
            _force_place(hosts, per_node, loads, tokens, config.max_load)
            ledger.retries += len(tokens)
            break
        outcomes = _virtual_epoch_walks(
            dex, pcycle_new, hosts, per_node, tokens, accept, ledger
        )
        for outcome in outcomes:
            if outcome is None:
                continue
            owner, _vertex = outcome
            target = hosts[_vertex]
            moved = _pop_vertex(per_node, owner)
            hosts[moved] = target
            per_node[target].append(moved)
            loads[owner] -= 1
            loads[target] += 1
            if loads[target] > config.low_threshold:
                full.add(target)
        tokens = excess_tokens()

    dex.overlay.replace_primary(pcycle_new, hosts)
    dex.on_cycle_replaced(pcycle_new, ledger)


# ----------------------------------------------------------------------
# simplifiedDefl (Algorithm 4.6)
# ----------------------------------------------------------------------
def simplified_deflate(dex: "DexNetwork", ledger: CostLedger) -> None:
    config = dex.config
    old = dex.overlay.old
    p_old = old.p
    p_new = deflation_prime(p_old)
    if p_new < dex.size:
        raise RecoveryError(
            f"deflation target p={p_new} smaller than network size {dex.size}"
        )
    pcycle_new = PCycle(p_new)
    origin = dex.coordinator.node

    # ---- Phase 1 ----
    _charge_broadcast(dex, origin, ledger)
    hosts: dict[Vertex, NodeId] = {
        y: old.host_of(dominating_vertex(y, p_old, p_new)) for y in range(p_new)
    }
    ledger.charge_parallel(rounds=2, messages=p_new)
    _charge_inverse_edges(
        dex,
        old.pcycle,
        [
            (dominating_vertex(a, p_old, p_new), dominating_vertex(b, p_old, p_new))
            for a, b in _new_chords(pcycle_new)
        ],
        ledger,
    )

    # ---- Phase 2: ensure surjectivity ----
    per_node: dict[NodeId, list[Vertex]] = defaultdict(list)
    for y, w in hosts.items():
        per_node[w].append(y)
    taken: set[Vertex] = set()
    for w, vertices in per_node.items():
        taken.add(min(vertices))  # each node reserves one vertex (line 9)
    contending = sorted(
        u for u in dex.graph.nodes() if not per_node.get(u)
    )

    def accept(owner: NodeId, vertex: Vertex) -> bool:
        return vertex not in taken

    max_epochs = _MAX_EPOCHS_FACTOR * max(1, math.ceil(math.log2(max(dex.size, 2))))
    epoch = 0
    while contending:
        epoch += 1
        if epoch > max_epochs:
            _force_claim(hosts, per_node, taken, contending)
            ledger.retries += len(contending)
            break
        outcomes = _virtual_epoch_walks(
            dex, pcycle_new, hosts, per_node, list(contending), accept, ledger
        )
        resolved: set[NodeId] = set()
        for outcome in outcomes:
            if outcome is None:
                continue
            owner, vertex = outcome
            previous = hosts[vertex]
            per_node[previous].remove(vertex)
            hosts[vertex] = owner
            per_node[owner].append(vertex)
            taken.add(vertex)
            resolved.add(owner)
        contending = [u for u in contending if u not in resolved]

    dex.overlay.replace_primary(pcycle_new, hosts)
    dex.on_cycle_replaced(pcycle_new, ledger)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _new_chords(pcycle_new: PCycle) -> list[tuple[Vertex, Vertex]]:
    chords = []
    for y in range(1, pcycle_new.p):
        inv = pcycle_new.chord_target(y)
        if inv > y:
            chords.append((y, inv))
    return chords


def _take_vertex_from(hosts: dict[Vertex, NodeId], donor: NodeId) -> Vertex:
    candidates = sorted(y for y, w in hosts.items() if w == donor and y != 0)
    if not candidates:
        candidates = sorted(y for y, w in hosts.items() if w == donor)
    if not candidates:
        raise RecoveryError(f"attach node {donor} has no vertex to donate")
    return candidates[-1]


def _pop_vertex(per_node: dict[NodeId, list[Vertex]], owner: NodeId) -> Vertex:
    vertices = per_node[owner]
    vertices.sort()
    # keep vertex 0 at its host when possible (coordinator continuity)
    if len(vertices) > 1 and vertices[0] == 0:
        return vertices.pop(1)
    return vertices.pop()


def _force_place(
    hosts: dict[Vertex, NodeId],
    per_node: dict[NodeId, list[Vertex]],
    loads: Counter,
    tokens: list[NodeId],
    max_load: int,
) -> None:
    """Deterministic fallback if the epoch budget runs out (never taken on
    healthy configurations; keeps long benchmark runs robust)."""
    targets = sorted(loads, key=lambda w: loads[w])
    ti = 0
    for owner in tokens:
        while loads[targets[ti]] >= max_load:
            ti = (ti + 1) % len(targets)
        target = targets[ti]
        moved = _pop_vertex(per_node, owner)
        hosts[moved] = target
        per_node[target].append(moved)
        loads[owner] -= 1
        loads[target] += 1


def _force_claim(
    hosts: dict[Vertex, NodeId],
    per_node: dict[NodeId, list[Vertex]],
    taken: set[Vertex],
    contending: list[NodeId],
) -> None:
    free = sorted(y for y in hosts if y not in taken)
    for owner, vertex in zip(contending, free):
        previous = hosts[vertex]
        per_node[previous].remove(vertex)
        hosts[vertex] = owner
        per_node[owner].append(vertex)
        taken.add(vertex)
