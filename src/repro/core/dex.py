"""The public facade: :class:`DexNetwork`.

A :class:`DexNetwork` is a self-healing expander overlay.  The adversary
(or any caller) drives it with :meth:`insert` and :meth:`delete`, one
node per step (Section 2); the network heals itself and returns a
:class:`~repro.core.events.StepReport` with the exact communication costs
of the recovery.  Batched churn (Section 5) lives in
:mod:`repro.core.multi`; the DHT of Section 4.4.4 in :mod:`repro.dht`.

>>> from repro import DexNetwork
>>> net = DexNetwork.bootstrap(16, seed=7)
>>> report = net.insert()
>>> report.recovery.value
'type1'
>>> net.spectral_gap() > 0.01
True
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.analysis.spectral import SpectralTracker
from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.coordinator import Coordinator
from repro.core.events import StepReport
from repro.core.mapping import LayerMapping
from repro.core.overlay import Overlay
from repro.core.type1 import deletion_recovery, insertion_recovery
from repro.core.type2_staggered import StaggeredOp
from repro.errors import AdversaryError, TopologyError
from repro.net.metrics import CostLedger, MetricsLog
from repro.net.topology import DynamicMultigraph
from repro.types import Layer, NodeId, RecoveryType, StepKind, Vertex
from repro.virtual.pcycle import PCycle
from repro.virtual.primes import deflation_prime, initial_prime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.multi import BatchOutcome
    from repro.dht.dht import DexDHT


class DexNetwork:
    """A dynamically self-healing constant-degree expander (Theorem 1)."""

    def __init__(
        self,
        overlay: Overlay,
        config: DexConfig,
        rng: random.Random,
    ) -> None:
        self.overlay = overlay
        self.config = config
        self.rng = rng
        self.coordinator = Coordinator(overlay, config)
        self.staggered: StaggeredOp | None = None
        self.step_count = 0
        self.reports: list[StepReport] = []
        self.metrics = MetricsLog()
        self._next_id = max(overlay.graph.nodes(), default=-1) + 1
        self._observers: list["DexDHT"] = []
        self._spectral = SpectralTracker()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bootstrap(
        cls,
        n0: int,
        config: DexConfig | None = None,
        seed: int | None = None,
        *,
        id_base: int = 0,
    ) -> "DexNetwork":
        """Build the constant-size initial network ``G_0``: the smallest
        prime ``p0 in (4 n0, 8 n0)`` (Bertrand's postulate) and contiguous
        arcs of the p-cycle assigned to nodes ``id_base..id_base+n0-1``
        -- a balanced virtual mapping with loads in [4, 8].  ``id_base``
        offsets the bootstrap ids (and therefore every ``fresh_id`` that
        follows) so a sharded deployment can give each shard its own
        contiguous, non-overlapping id region."""
        config = config or DexConfig()
        if n0 < config.min_network_size:
            raise AdversaryError(
                f"initial size {n0} below minimum {config.min_network_size}"
            )
        if id_base < 0:
            raise AdversaryError(f"id_base must be >= 0, got {id_base}")
        rng = random.Random(seed if seed is not None else config.seed)
        p0 = initial_prime(n0)
        pcycle = PCycle(p0)
        graph = DynamicMultigraph()
        layer = LayerMapping(pcycle, config.low_threshold)
        overlay = Overlay(graph, layer)
        for u in range(n0):
            graph.add_node(id_base + u)
        bounds = [u * p0 // n0 for u in range(n0)] + [p0]
        for u in range(n0):
            for z in range(bounds[u], bounds[u + 1]):
                overlay.activate(Layer.OLD, z, id_base + u)
        graph.topology_changes = 0  # bootstrap is free (Section 4 start)
        return cls(overlay, config, rng)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicMultigraph:
        return self.overlay.graph

    @property
    def size(self) -> int:
        return self.graph.num_nodes

    @property
    def p(self) -> int:
        return self.overlay.old.p

    @property
    def pcycle(self) -> PCycle:
        return self.overlay.old.pcycle

    def nodes(self) -> Iterator[NodeId]:
        return self.graph.nodes()

    def load_of(self, u: NodeId) -> int:
        return self.overlay.total_load(u)

    def degree_of(self, u: NodeId) -> int:
        return self.graph.degree(u)

    def loads(self) -> dict[NodeId, int]:
        return {u: self.overlay.total_load(u) for u in self.graph.nodes()}

    def max_degree(self) -> int:
        return self.graph.max_degree()

    def max_connections(self) -> int:
        return max(self.graph.connection_count(u) for u in self.graph.nodes())

    def spectral_gap(self) -> float:
        """Measured ``1 - lambda(G_t)`` of the live multigraph.  Repeated
        calls are incremental end to end: the graph patches its cached
        CSR from the dirty set and the tracker warm-starts Lanczos from
        the previous second eigenvector."""
        return self._spectral.measure(self.graph)

    def spare_count(self) -> int:
        return self.overlay.old.spare_count()

    def low_count(self) -> int:
        return self.overlay.old.low_count()

    def fresh_id(self) -> NodeId:
        while self.graph.has_node(self._next_id):
            self._next_id += 1
        return self._next_id

    def random_node(self) -> NodeId:
        """Uniform node sample from the network's own RNG; O(1) via the
        topology's live-node array."""
        return self.graph.random_node(self.rng)

    def sample_node(self, rng: random.Random) -> NodeId:
        """Uniform node sample from a caller-supplied RNG (adversaries
        keep their own randomness stream, Section 2)."""
        return self.graph.random_node(rng)

    # ------------------------------------------------------------------
    # adversarial steps
    # ------------------------------------------------------------------
    def insert(
        self, node_id: NodeId | None = None, attach_to: NodeId | None = None
    ) -> StepReport:
        """One insertion step: the adversary connects a new node to an
        existing one; the network heals (Algorithm 4.2)."""
        u = node_id if node_id is not None else self.fresh_id()
        v = attach_to if attach_to is not None else self.random_node()
        if self.graph.has_node(u):
            raise AdversaryError(f"node id {u} already in the network")
        if not self.graph.has_node(v):
            raise AdversaryError(f"attach point {v} does not exist")
        self._next_id = max(self._next_id, u + 1)
        ledger = CostLedger()
        topo_before = self.graph.topology_changes
        self.graph.add_node(u)
        self.graph.add_edge(u, v)
        recovery = insertion_recovery(self, u, v, ledger)
        # Algorithm 4.2 line 3: drop the adversary's attachment unless a
        # virtual edge requires the connection (reference counting makes
        # this exactly "remove one multiplicity unit").
        self.graph.remove_edge(u, v, 1)
        return self._finish_step(StepKind.INSERT, u, v, recovery, ledger, topo_before)

    def delete(self, node_id: NodeId) -> StepReport:
        """One deletion step (Algorithm 4.3)."""
        if not self.graph.has_node(node_id):
            raise AdversaryError(f"node {node_id} does not exist")
        if self.size - 1 < self.config.min_network_size:
            raise AdversaryError(
                f"deleting node {node_id} would shrink the network below "
                f"the minimum size {self.config.min_network_size}"
            )
        ledger = CostLedger()
        topo_before = self.graph.topology_changes
        recovery, adopter = deletion_recovery(self, node_id, ledger)
        return self._finish_step(
            StepKind.DELETE, node_id, adopter, recovery, ledger, topo_before
        )

    def insert_batch(
        self, attachments: "Sequence[tuple[NodeId, NodeId]]"
    ) -> StepReport:
        """Batched insertion step (Section 5); see
        :func:`repro.core.multi.insert_batch`."""
        from repro.core.multi import insert_batch

        return insert_batch(self, attachments)

    def delete_batch(self, nodes: "Sequence[NodeId]") -> StepReport:
        """Batched deletion step (Section 5); see
        :func:`repro.core.multi.delete_batch`."""
        from repro.core.multi import delete_batch

        return delete_batch(self, nodes)

    def insert_batch_partial(
        self, attachments: "Sequence[tuple[NodeId, NodeId]]"
    ) -> "BatchOutcome":
        """Partial-batch insertion: heal the legal subset in one wave
        and report per-entry rejections; see
        :func:`repro.core.multi.insert_batch_partial`."""
        from repro.core.multi import insert_batch_partial

        return insert_batch_partial(self, attachments)

    def delete_batch_partial(self, nodes: "Sequence[NodeId]") -> "BatchOutcome":
        """Partial-batch deletion: heal the legal victims in one wave
        and report per-victim rejections; see
        :func:`repro.core.multi.delete_batch_partial`."""
        from repro.core.multi import delete_batch_partial

        return delete_batch_partial(self, nodes)

    # ------------------------------------------------------------------
    # step plumbing
    # ------------------------------------------------------------------
    def _finish_step(
        self,
        kind: StepKind,
        node: NodeId,
        locus: NodeId,
        recovery: RecoveryType,
        ledger: CostLedger,
        topo_before: int,
    ) -> StepReport:
        forced = False
        # Staggered op: the recovery of every step advances one chunk
        # (Procedures inflate/deflate), and may thereby complete.
        if self.staggered is not None:
            op = self.staggered
            op.advance(ledger)
            forced = op.forced
        # Coordinator bookkeeping (Algorithm 4.7): the initiator reports
        # the step's deltas along a virtual shortest path (the counters
        # themselves are already current via the change-listener hooks).
        if self.graph.has_node(locus):
            self.coordinator.charge_update(locus, ledger)
        # Early staggered triggers.
        if self.config.type2_mode == "staggered" and self.staggered is None:
            if self.coordinator.wants_inflate():
                self.start_staggered_inflate(ledger)
            elif self.coordinator.wants_deflate() and self.can_deflate():
                self.start_staggered_deflate(ledger)

        self.step_count += 1
        ledger.topology_changes = self.graph.topology_changes - topo_before
        op = self.staggered
        report = StepReport(
            step=self.step_count,
            kind=kind,
            recovery=recovery,
            node=node,
            n_after=self.size,
            p=self.p,
            costs=ledger,
            p_next=op.p_new if op is not None else None,
            staggered_active=op is not None,
            staggered_progress=op.progress if op is not None else None,
            forced_completion=forced or (op.forced if op is not None else False),
        )
        self.reports.append(report)
        self.metrics.append(ledger)
        if self.config.validate_every_step:
            self.check_invariants()
        return report

    # ------------------------------------------------------------------
    # type-2 orchestration hooks
    # ------------------------------------------------------------------
    def can_deflate(self) -> bool:
        if self.p < 41:
            return False
        try:
            return deflation_prime(self.p) >= self.size
        except Exception:  # pragma: no cover - defensive
            return False

    def start_staggered_inflate(self, ledger: CostLedger) -> None:
        self.staggered = StaggeredOp(self, "inflate", ledger)

    def start_staggered_deflate(self, ledger: CostLedger) -> None:
        self.staggered = StaggeredOp(self, "deflate", ledger)

    def on_staggered_complete(self, op: StaggeredOp, ledger: CostLedger) -> None:
        self.staggered = None
        for observer in self._observers:
            observer.on_cycle_swapped(self, ledger)

    def on_cycle_replaced(self, pcycle: PCycle, ledger: CostLedger) -> None:
        """Called by the simplified type-2 procedures after the swap (the
        coordinator resnapshots via the overlay's primary-swap event)."""
        for observer in self._observers:
            observer.on_cycle_swapped(self, ledger)

    # ------------------------------------------------------------------
    # observers (the DHT of Section 4.4.4 subscribes here)
    # ------------------------------------------------------------------
    def attach_observer(self, observer: "DexDHT") -> None:
        self._observers.append(observer)

    def notify_chunk(self, vertices: list[Vertex], ledger: CostLedger) -> None:
        for observer in self._observers:
            observer.on_chunk_processed(self, vertices, ledger)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        invariants.check_all(self.overlay, self.config)
        if not self.coordinator.verify():
            raise TopologyError("coordinator counters diverged from ground truth")
