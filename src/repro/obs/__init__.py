"""repro.obs -- the tracing + telemetry spine (PR 10).

A stdlib-only observability layer at the *bottom* of the import tower
(rank 0, beside ``types``/``errors``), so every layer -- engine, net,
service, persist, harness, cli -- may instrument itself without a
cycle.  Two halves:

* :mod:`repro.obs.trace` -- monotonic-clock spans, trace/span ids, the
  ring-buffer/streaming recorder, and the no-op recorder that makes
  disabled tracing cost one attribute check.
* :mod:`repro.obs.registry` -- one metrics registry (counters, gauges,
  exact-quantile histograms) with JSON + Prometheus-text exposition;
  the home of :func:`exact_quantile`.

Render recorded traces with ``python -m repro.obs trace.jsonl`` or
``python -m repro.cli trace trace.jsonl``.
"""

from repro.obs.trace import (
    TRACE_SCHEMA,
    NOOP_RECORDER,
    NOOP_SPAN,
    Span,
    SpanRecorder,
    current,
    current_span,
    enabled,
    install,
    recording_to,
    span,
    uninstall,
)
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exact_quantile,
    quantile_sorted,
)

__all__ = [
    "TRACE_SCHEMA",
    "NOOP_RECORDER",
    "NOOP_SPAN",
    "Span",
    "SpanRecorder",
    "current",
    "current_span",
    "enabled",
    "install",
    "recording_to",
    "span",
    "uninstall",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exact_quantile",
    "quantile_sorted",
]
