"""``python -m repro.obs trace.jsonl`` -- render a recorded trace."""

import sys

from repro.obs.render import main

if __name__ == "__main__":
    sys.exit(main())
