"""Load and render recorded trace JSONL artifacts.

The loader is **truncated-tail tolerant**: a SIGKILL'd worker may leave
a partial final line (or, with an unflushed buffer, a partial batch);
unparseable lines are counted and skipped, never fatal, so the evidence
a dead process did leave stays readable.

Two text views over one artifact:

* **rollup** -- per-span-name totals (count, total/mean ms, exact
  p50/p99), the per-phase cost attribution ROADMAP direction #1 needs;
* **timeline** -- one trace's spans in start order, indented by
  parentage, the request-to-wave narrative of a single join/leave.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.registry import exact_quantile
from repro.obs.trace import TRACE_SCHEMA


def load_trace(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]], int]:
    """Parse a trace JSONL file into ``(header, spans, skipped)``.
    ``skipped`` counts unparseable lines (truncated tails of a killed
    writer).  A missing or wrong-schema header raises ``ValueError`` --
    that is a wrong *file*, not a truncated one."""
    header: dict[str, Any] | None = None
    spans: list[dict[str, Any]] = []
    skipped = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            if header is None and "schema" in record:
                header = record
                continue
            if "span" in record and "name" in record:
                spans.append(record)
            else:
                skipped += 1
    if header is None:
        raise ValueError(f"{path}: no schema header line found")
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: schema {header.get('schema')!r} != {TRACE_SCHEMA!r}"
        )
    return header, spans, skipped


def render_rollup(spans: list[dict[str, Any]]) -> str:
    """Per-name aggregate table over every span of the artifact."""
    by_name: dict[str, list[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span.get("dur_s", 0.0))
    if not by_name:
        return "(no spans)"
    rows = []
    for name, durs in sorted(
        by_name.items(), key=lambda kv: -sum(kv[1])
    ):
        total_ms = sum(durs) * 1e3
        p50 = exact_quantile(durs, 0.50)
        p99 = exact_quantile(durs, 0.99)
        rows.append(
            (
                name,
                len(durs),
                f"{total_ms:.3f}",
                f"{total_ms / len(durs):.3f}",
                f"{(p50 or 0.0) * 1e3:.3f}",
                f"{(p99 or 0.0) * 1e3:.3f}",
            )
        )
    headers = ("span", "count", "total_ms", "mean_ms", "p50_ms", "p99_ms")
    widths = [
        max(len(headers[i]), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(v).ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)


def busiest_trace(spans: list[dict[str, Any]]) -> str | None:
    """The trace id with the most spans (the default timeline pick)."""
    counts: dict[str, int] = {}
    for span in spans:
        trace = span.get("trace")
        if trace:
            counts[trace] = counts.get(trace, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda t: (counts[t], t))


def render_timeline(
    spans: list[dict[str, Any]], trace_id: str | None = None, limit: int = 200
) -> str:
    """One trace's spans in start order, indented by parent depth."""
    if trace_id is None:
        trace_id = busiest_trace(spans)
        if trace_id is None:
            return "(no spans)"
    selected = [s for s in spans if s.get("trace") == trace_id]
    if not selected:
        return f"(no spans for trace {trace_id})"
    selected.sort(key=lambda s: s.get("t_s", 0.0))
    by_id = {s["span"]: s for s in selected}

    def depth(span: dict[str, Any]) -> int:
        d = 0
        parent = span.get("parent")
        while parent in by_id and d < 32:
            d += 1
            parent = by_id[parent].get("parent")
        return d

    t0 = selected[0].get("t_s", 0.0)
    lines = [f"trace {trace_id} ({len(selected)} spans)"]
    for span in selected[:limit]:
        offset_ms = (span.get("t_s", 0.0) - t0) * 1e3
        dur_ms = span.get("dur_s", 0.0) * 1e3
        attrs = span.get("attrs") or {}
        attr_text = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if attrs
            else ""
        )
        lines.append(
            f"  {offset_ms:9.3f}ms  {'  ' * depth(span)}{span['name']} "
            f"[{dur_ms:.3f}ms]{attr_text}"
        )
    if len(selected) > limit:
        lines.append(f"  ... {len(selected) - limit} more spans elided")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs <trace.jsonl>``: render an artifact."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Render a recorded dex-trace JSONL as a per-phase "
        "rollup and/or a single-trace timeline.",
    )
    parser.add_argument("trace", help="trace JSONL artifact")
    parser.add_argument(
        "--rollup", action="store_true", help="per-span-name aggregate only"
    )
    parser.add_argument(
        "--timeline", action="store_true", help="single-trace timeline only"
    )
    parser.add_argument(
        "--trace-id", default=None, help="timeline trace id (default: busiest)"
    )
    parser.add_argument(
        "--limit", type=int, default=200, help="max timeline rows printed"
    )
    args = parser.parse_args(argv)
    header, spans, skipped = load_trace(args.trace)
    both = not args.rollup and not args.timeline
    print(
        f"{args.trace}: {len(spans)} spans, created {header.get('created')}"
        + (f", {skipped} unparseable line(s) skipped" if skipped else "")
    )
    if args.rollup or both:
        print()
        print(render_rollup(spans))
    if args.timeline or both:
        print()
        print(render_timeline(spans, args.trace_id, args.limit))
    return 0
