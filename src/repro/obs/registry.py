"""One metrics registry: counters, gauges, and exact-quantile
histograms with JSON and Prometheus-text exposition.

Before this module each surface kept private counters --
``ServiceMetrics`` its deques, ``CostLedger`` its ints, the policies
their state dicts, the router its rid bookkeeping -- and every consumer
(serve table, soak row, campaign series) re-derived summaries from a
different window.  The registry is the meeting point: producers publish
into named metrics, every exposition renders the *same* samples, so two
views of one quantity can never disagree.

Histograms keep a bounded sample window and compute **exact** quantiles
(sort + linear interpolation, bit-matching ``numpy.quantile``'s default
method -- :func:`exact_quantile` moved here from
``repro.service.metrics`` so every layer may use it).  The sort is
memoized per snapshot and invalidated on append, so a summary that
reads several quantiles (p50/p90/p99) sorts the window once instead of
per call.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Sequence


def quantile_sorted(data: Sequence[float], q: float) -> float | None:
    """The ``q``-quantile of an already **sorted** sequence by linear
    interpolation between closest ranks.  ``None`` on an empty window
    -- an empty soak interval is a fact to report, not an exception."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not data:
        return None
    position = q * (len(data) - 1)
    lower = int(position)
    upper = min(lower + 1, len(data) - 1)
    fraction = position - lower
    return data[lower] * (1.0 - fraction) + data[upper] * fraction


def exact_quantile(values: Sequence[float], q: float) -> float | None:
    """The ``q``-quantile of ``values`` by linear interpolation between
    closest ranks (``numpy.quantile``'s default ``linear`` method).
    Sorts per call; summaries that need several quantiles of one window
    should use :class:`Histogram`'s memoized sort instead."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not values:
        return None
    return quantile_sorted(sorted(values), q)


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


class Counter:
    """A monotone total.  ``set_total`` exists for publish-on-read
    producers that keep the authoritative count elsewhere (e.g.
    ``CostLedger`` fields synced at exposition time)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (by {amount})")
        self.value += amount

    def set_total(self, total: float) -> None:
        self.value = total


class Gauge:
    """A point-in-time value (queue depth, policy window, shard count)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Histogram:
    """Bounded-window sample store with memoized exact quantiles and a
    rolling mark for disjoint-window summaries.

    * ``samples`` -- the newest ``window`` observations (deque; the
      exposition / cumulative-snapshot window).
    * ``window_samples`` -- observations since the last
      :meth:`take_window` (the ``repro.cli serve`` progress row); the
      same list the service metrics' rolling window reads, so the serve
      table and the exposition can never disagree about what was
      observed.
    * The sorted view is computed at most once per append
      (:meth:`sorted_samples` memo, invalidated by :meth:`observe`), so
      a p50/p90/p99 summary costs one sort, not three.
    """

    __slots__ = (
        "name",
        "help",
        "samples",
        "window_samples",
        "count",
        "sum",
        "max",
        "_sorted",
        "_window_cap",
    )

    def __init__(self, name: str, help: str = "", window: int = 200_000) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.name = name
        self.help = help
        self.samples: deque[float] = deque(maxlen=window)
        self.window_samples: list[float] = []
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._sorted: list[float] | None = None
        self._window_cap = window

    def observe(self, value: float) -> None:
        self.samples.append(value)
        if len(self.window_samples) < self._window_cap:
            self.window_samples.append(value)
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        self._sorted = None

    def sorted_samples(self) -> list[float]:
        """The retained window in sorted order, sorted at most once per
        append (the satellite-1 memo: invalidated by :meth:`observe`,
        reused across repeated snapshots and across the p50/p90/p99
        reads of one snapshot)."""
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return self._sorted

    def quantile(self, q: float) -> float | None:
        return quantile_sorted(self.sorted_samples(), q)

    def quantiles(self, qs: Iterable[float]) -> list[float | None]:
        data = self.sorted_samples()
        return [quantile_sorted(data, q) for q in qs]

    def take_window(self) -> list[float]:
        """Return-and-reset the rolling samples since the last call."""
        marks = self.window_samples
        self.window_samples = []
        return marks

    def reset_window(self) -> None:
        self.window_samples = []

    def clear(self) -> None:
        self.samples.clear()
        self.window_samples = []
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._sorted = None

    def summary(self) -> dict[str, Any]:
        p50, p90, p99 = self.quantiles((0.50, 0.90, 0.99))
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "max": self.max,
            "p50": p50,
            "p90": p90,
            "p99": p99,
        }


class MetricsRegistry:
    """Name -> metric, with get-or-create accessors (re-registering an
    existing name returns the live instance; a kind mismatch is a
    programming error and raises)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type, factory: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "", window: int = 200_000) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, help, window))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON exposition: one object per metric kind."""
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.summary()
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (counters/gauges verbatim,
        histograms as summary-style quantile series plus _count/_sum)."""
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            pname = _prom_name(name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {metric.value}")
            else:
                lines.append(f"# TYPE {pname} summary")
                summary = metric.summary()
                for q in ("p50", "p90", "p99"):
                    value = summary[q]
                    if value is not None:
                        quantile = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}[q]
                        lines.append(f'{pname}{{quantile="{quantile}"}} {value}')
                lines.append(f"{pname}_count {summary['count']}")
                lines.append(f"{pname}_sum {summary['sum']}")
        return "\n".join(lines) + "\n"


#: the process-default registry (surfaces may still build private ones,
#: e.g. per-shard registries aggregated by the router)
REGISTRY = MetricsRegistry()
