"""Monotonic-clock tracing spans: the request-to-wave evidence spine.

A **span** is one timed phase of work -- a gateway flush, one healing
wave, one handoff leg -- with a name, a start offset, a duration, and
free-form JSON-serializable attributes.  Spans belong to a **trace**
(one request's journey, or one flush cycle), identified by a trace id
that survives process boundaries: the shard router generates it at the
client surface and ships it across the worker pipe protocol, so a
cross-shard join renders as one coherent timeline.

Design constraints, in priority order:

1. **Disabled tracing must be free.**  The module-level recorder
   defaults to a no-op whose ``enabled`` attribute is ``False``; hot
   paths guard with a single attribute check (``current().enabled``)
   and the :func:`span` context manager short-circuits to a shared
   no-op span.  The perf harness measures this cost and
   ``scripts/perf_gate.py`` fails CI if it exceeds ~1%.
2. **Tracing must not perturb the engine.**  Span timing uses
   ``time.perf_counter`` (monotonic) only -- the staticcheck
   determinism rule enforces this for the ``obs`` layer -- and span
   bookkeeping never touches an engine rng, so transcripts are
   bit-identical with the recorder on or off (a differential test
   holds this).
3. **A killed process must leave evidence.**  A recorder opened with a
   stream appends finished spans as JSONL lines (flushed every
   ``flush_every`` spans), so a SIGKILL'd soak worker leaves a
   parseable file with at most a truncated tail -- which the loader
   tolerates.

Synchronous code uses the ambient context manager (parents nest via a
thread-local stack)::

    with span("shard.flush", shard=0) as sp:
        with span("shard.flush.heal"):       # child of shard.flush
            outcome = net.insert_batch_partial(payload)
        sp.set(batch=len(payload))

Async code (the router) uses explicit start/finish with explicit
parentage -- the thread-local stack would cross-contaminate
interleaved tasks::

    rec = current()
    sp = rec.start("router.handoff.pin", trace_id=tid, parent_id=root)
    ack = await self._control(owner, "pin", ...)
    rec.finish(sp)
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import IO, Any, Callable, Iterator

#: JSONL trace artifact schema (header line + one span object per line)
TRACE_SCHEMA = "dex-trace/1"


def _created_stamp() -> str:
    """User-facing wall-clock stamp of the export header -- the one
    allowlisted wall-clock site of the ``obs`` layer (the determinism
    rule names this function; span *timing* stays monotonic)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class Span:
    """One timed phase.  Mutable until :meth:`~SpanRecorder.finish`
    seals it into the recorder's ring (and stream, when one is open)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "t_s", "dur_s", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        t_s: float,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_s = t_s
        self.dur_s = 0.0
        self.attrs = attrs

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; values must be
        JSON-serializable."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t_s": round(self.t_s, 6),
            "dur_s": round(self.dur_s, 6),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _NoopSpan:
    """The shared span handed out while tracing is disabled: every
    operation is a no-op, so instrumented code never branches."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _NoopRecorder:
    """Stands in for :class:`SpanRecorder` while tracing is off.
    ``enabled`` is the hot-path guard: one attribute check, nothing
    else ever runs."""

    __slots__ = ()

    enabled = False

    def start(self, name: str, **kwargs: Any) -> _NoopSpan:
        return NOOP_SPAN

    def finish(self, span: Any) -> None:
        return None

    def new_trace_id(self) -> None:
        return None


NOOP_RECORDER = _NoopRecorder()


class SpanRecorder:
    """Bounded ring-buffer span sink with optional JSONL streaming.

    ``capacity`` bounds in-memory retention (oldest spans evicted);
    ``stream`` (a writable text file) additionally receives every
    finished span as one JSON line, flushed every ``flush_every``
    spans so a killed process loses at most a buffer's tail.  Ids are
    prefixed with the owning pid, so per-process files never collide
    when inspected side by side."""

    enabled = True

    def __init__(
        self,
        capacity: int = 65_536,
        *,
        clock: Callable[[], float] = time.perf_counter,
        stream: IO[str] | None = None,
        flush_every: int = 32,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.spans: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.clock = clock
        self._t0 = clock()
        self._tag = f"{os.getpid():x}"
        self._seq = 0
        self._lock = threading.Lock()
        self._stream = stream
        self._flush_every = max(1, flush_every)
        self._unflushed = 0
        if stream is not None:
            stream.write(
                json.dumps({"schema": TRACE_SCHEMA, "created": _created_stamp()})
                + "\n"
            )
            stream.flush()

    # ------------------------------------------------------------------
    # ids
    # ------------------------------------------------------------------
    def _next_id(self, kind: str) -> str:
        with self._lock:
            self._seq += 1
            return f"{kind}{self._tag}-{self._seq:x}"

    def new_trace_id(self) -> str:
        return self._next_id("t")

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  Omitted ``trace_id`` starts a fresh trace;
        ``parent_id`` is the caller's span id (or ``None`` for a
        root)."""
        return Span(
            name,
            trace_id if trace_id is not None else self.new_trace_id(),
            self._next_id("s"),
            parent_id,
            self.clock() - self._t0,
            dict(attrs),
        )

    def finish(self, span: Span) -> None:
        """Seal ``span``: compute its duration and record it."""
        span.dur_s = self.clock() - self._t0 - span.t_s
        record = span.as_dict()
        self.spans.append(record)
        stream = self._stream
        if stream is not None:
            with self._lock:
                stream.write(json.dumps(record, separators=(",", ":")) + "\n")
                self._unflushed += 1
                if self._unflushed >= self._flush_every:
                    stream.flush()
                    self._unflushed = 0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def flush_stream(self) -> None:
        if self._stream is not None:
            with self._lock:
                self._stream.flush()
                self._unflushed = 0

    def export_jsonl(self, path: str | Path) -> Path:
        """Write the retained ring as a fresh JSONL artifact (header
        line first).  Streaming recorders usually just
        :meth:`flush_stream` instead -- their file already holds every
        span, including ones the ring has evicted."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w") as fh:
            fh.write(
                json.dumps({"schema": TRACE_SCHEMA, "created": _created_stamp()})
                + "\n"
            )
            for record in self.spans:
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        return out


# ----------------------------------------------------------------------
# the module-level recorder and the ambient span stack
# ----------------------------------------------------------------------
_RECORDER: SpanRecorder | _NoopRecorder = NOOP_RECORDER
_AMBIENT = threading.local()


def current() -> SpanRecorder | _NoopRecorder:
    """The active recorder.  Hot paths keep the result local and guard
    on ``.enabled`` -- the whole cost of disabled tracing."""
    return _RECORDER


def enabled() -> bool:
    return _RECORDER.enabled


def install(recorder: SpanRecorder | _NoopRecorder) -> SpanRecorder | _NoopRecorder:
    """Make ``recorder`` the process-wide sink; returns the previous
    one so callers can restore it."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def uninstall() -> None:
    """Back to the no-op recorder (disabled tracing)."""
    install(NOOP_RECORDER)


def _stack() -> list[Span]:
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = []
        _AMBIENT.stack = stack
    return stack


def current_span() -> Span | None:
    """The innermost ambient span of this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def span(
    name: str,
    *,
    trace_id: str | None = None,
    parent_id: str | None = None,
    **attrs: Any,
) -> Iterator[Span | _NoopSpan]:
    """Ambient span context manager (synchronous code).  Parentage
    defaults to the innermost open span of this thread; pass
    ``trace_id``/``parent_id`` explicitly to continue a remote trace
    (e.g. one shipped over the shard pipe).  While tracing is disabled
    this yields the shared no-op span and records nothing."""
    rec = _RECORDER
    if not rec.enabled:
        yield NOOP_SPAN
        return
    stack = _stack()
    if trace_id is None and parent_id is None and stack:
        ambient = stack[-1]
        trace_id, parent_id = ambient.trace_id, ambient.span_id
    sp = rec.start(name, trace_id=trace_id, parent_id=parent_id, **attrs)
    stack.append(sp)
    try:
        yield sp
    finally:
        stack.pop()
        rec.finish(sp)


@contextmanager
def recording_to(
    path: str | Path | None = None,
    *,
    capacity: int = 65_536,
    flush_every: int = 32,
) -> Iterator[SpanRecorder]:
    """Install a fresh recorder for the duration of the block; restore
    the previous one (and close the stream) on exit.  With ``path`` the
    recorder streams spans to that JSONL file as they finish --
    kill-tolerant; without, spans stay in the ring (export them with
    :meth:`SpanRecorder.export_jsonl`)."""
    stream: IO[str] | None = None
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        stream = open(out, "w")
    recorder = SpanRecorder(capacity, stream=stream, flush_every=flush_every)
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
        if stream is not None:
            recorder.flush_stream()
            stream.close()
