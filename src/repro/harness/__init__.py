"""Experiment harness: drive any maintained overlay with any adversary,
collect per-step costs and periodic structure snapshots, and format the
paper-style tables."""

from repro.harness.runner import (
    CampaignResult,
    ChurnResult,
    run_campaign,
    run_churn,
)
from repro.harness.report import Table, format_table
from repro.harness.experiments import (
    dex_factory,
    lawsiu_factory,
    skipgraph_factory,
    flip_factory,
    flooding_factory,
    global_knowledge_factory,
    OVERLAY_FACTORIES,
)

__all__ = [
    "CampaignResult",
    "ChurnResult",
    "run_campaign",
    "run_churn",
    "Table",
    "format_table",
    "dex_factory",
    "lawsiu_factory",
    "skipgraph_factory",
    "flip_factory",
    "flooding_factory",
    "global_knowledge_factory",
    "OVERLAY_FACTORIES",
]
