"""Churn experiment runner.

``run_churn(overlay, adversary, steps)`` applies the adversary's actions
one step at a time, records the per-step cost ledgers, and samples
structure snapshots (spectral gap, max degree) every ``sample_every``
steps -- the raw series behind every benchmark table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adversary.base import Adversary, ChurnAction
from repro.analysis.spectral import spectral_gap
from repro.analysis.stats import Summary, summarize
from repro.errors import AdversaryError
from repro.net.metrics import CostLedger


@dataclass
class ChurnResult:
    """Everything measured during one churn run."""

    name: str
    steps: int
    ledgers: list[CostLedger] = field(default_factory=list)
    gap_samples: list[tuple[int, float]] = field(default_factory=list)
    degree_samples: list[tuple[int, int]] = field(default_factory=list)
    size_samples: list[tuple[int, int]] = field(default_factory=list)
    skipped_actions: int = 0

    def cost_summary(self, attribute: str) -> Summary:
        return summarize([getattr(ledger, attribute) for ledger in self.ledgers])

    @property
    def min_gap(self) -> float:
        return min((g for _, g in self.gap_samples), default=float("nan"))

    @property
    def max_degree_seen(self) -> int:
        return max((d for _, d in self.degree_samples), default=0)

    def final_gap(self) -> float:
        return self.gap_samples[-1][1] if self.gap_samples else float("nan")


def _ledger_of(report_or_ledger) -> CostLedger:
    if isinstance(report_or_ledger, CostLedger):
        return report_or_ledger
    return report_or_ledger.costs  # a DEX StepReport


def run_churn(
    overlay,
    adversary: Adversary,
    steps: int,
    sample_every: int = 50,
    name: str | None = None,
) -> ChurnResult:
    """Drive ``steps`` adversarial actions against ``overlay``."""
    result = ChurnResult(name=name or getattr(overlay, "name", "dex"), steps=steps)

    def sample(step: int) -> None:
        adjacency = overlay.adjacency() if hasattr(overlay, "adjacency") else None
        if adjacency is not None:
            gap = spectral_gap(adjacency)
        elif hasattr(overlay, "spectral_gap"):
            # DEX networks carry a warm-started tracker; repeated samples
            # reuse the previous Lanczos eigenvector.
            gap = overlay.spectral_gap()
        else:
            # Incrementally patched CSR (dirty rows only, not O(n)).
            _, adjacency = overlay.graph.to_sparse_adjacency()
            gap = spectral_gap(adjacency)
        result.gap_samples.append((step, gap))
        result.degree_samples.append((step, overlay.max_degree()))
        result.size_samples.append((step, overlay.size))

    sample(0)
    for step in range(1, steps + 1):
        action: ChurnAction = adversary.next_action(overlay)
        try:
            if action.kind == "insert":
                out = overlay.insert(node_id=action.node, attach_to=action.attach_to)
            elif action.kind == "delete":
                out = overlay.delete(action.node)
            else:
                raise AdversaryError(f"unknown action kind {action.kind!r}")
        except AdversaryError:
            result.skipped_actions += 1
            continue
        result.ledgers.append(_ledger_of(out))
        if step % sample_every == 0 or step == steps:
            sample(step)
    return result
