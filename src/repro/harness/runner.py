"""Churn experiment runners.

``run_churn(overlay, adversary, steps)`` applies the adversary's actions
one step at a time, records the per-step cost ledgers, and samples
structure snapshots (spectral gap, max degree) every ``sample_every``
steps -- the raw series behind every benchmark table.

``run_campaign(overlay, adversary, events)`` is the batch-aware driver:
the adversary emits whole Section 5 batches (native ``next_batch``, or
any single-action strategy through
:func:`repro.adversary.base.as_batch_adversary`), and each same-kind run
heals through the overlay's batch engine when it has one.  Overlays
with **partial-batch outcomes**
(:meth:`~repro.core.dex.DexNetwork.insert_batch_partial` /
:meth:`~repro.core.dex.DexNetwork.delete_batch_partial`) take the
single-pass path: one engine call heals the legal majority of the run
and reports each illegal action individually (counted in
``CampaignResult.fallbacks``), replacing the historical
bisect-and-replay fallback.  Overlays speaking only the all-or-nothing
batch protocol replay an engine-rejected run per step; overlays without
batch support heal per step throughout.  Both drivers end a scripted
run cleanly when the trace raises
:class:`~repro.errors.TraceExhausted`, reporting the steps actually
executed, and always sample the terminal state -- even when the final
action was skipped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.adversary.base import Adversary, ChurnAction, as_batch_adversary
from repro.analysis.spectral import spectral_gap
from repro.analysis.stats import Summary, summarize
from repro.baselines.interface import supports_batch, supports_partial_batch
from repro.errors import AdversaryError, TraceExhausted
from repro.net.metrics import CostLedger


@dataclass
class ChurnResult:
    """Everything measured during one churn run."""

    name: str
    steps: int
    ledgers: list[CostLedger] = field(default_factory=list)
    gap_samples: list[tuple[int, float]] = field(default_factory=list)
    degree_samples: list[tuple[int, int]] = field(default_factory=list)
    size_samples: list[tuple[int, int]] = field(default_factory=list)
    message_samples: list[tuple[int, int]] = field(default_factory=list)
    skipped_actions: int = 0
    #: wall-clock seconds spent inside the overlay's heal calls (the
    #: adversary's decision making and the samplers are not healing)
    heal_s: float = 0.0

    def cost_summary(self, attribute: str) -> Summary:
        return summarize([getattr(ledger, attribute) for ledger in self.ledgers])

    @property
    def min_gap(self) -> float:
        return min((g for _, g in self.gap_samples), default=float("nan"))

    @property
    def max_degree_seen(self) -> int:
        return max((d for _, d in self.degree_samples), default=0)

    def final_gap(self) -> float:
        return self.gap_samples[-1][1] if self.gap_samples else float("nan")

    def heal_per_event_ms(self) -> float:
        return self.heal_s / max(self.steps, 1) * 1e3

    def messages_total(self) -> int:
        return sum(ledger.messages for ledger in self.ledgers)


@dataclass
class CampaignResult(ChurnResult):
    """A :class:`ChurnResult` healed batch-at-a-time.  ``steps`` counts
    churn *events* (individual joins/leaves); ``ledgers`` holds one
    entry per heal call, so a batch of 64 insertions contributes one
    ledger covering all 64."""

    batches: int = 0
    #: same-kind runs a strict (all-or-nothing) batch engine rejected
    #: wholesale, which the driver re-applied by per-step replay; always
    #: 0 for overlays with partial-batch outcomes
    fallback_batches: int = 0
    #: events healed through a true batch call (vs. per-step healing)
    batched_events: int = 0
    #: individual actions the engine rejected: the per-victim/per-entry
    #: rejections reported by the partial-batch path.  Every one is also
    #: counted in ``skipped_actions`` -- the driver-agnostic
    #: rejected-action total that batched and sequential campaigns must
    #: agree on.
    fallbacks: int = 0


def _ledger_of(report_or_ledger) -> CostLedger:
    if isinstance(report_or_ledger, CostLedger):
        return report_or_ledger
    return report_or_ledger.costs  # a DEX StepReport


class _Sampler:
    """Shared snapshot logic: spectral gap, max degree, live size and
    cumulative message cost at a given event index."""

    def __init__(self, overlay, result: ChurnResult):
        self.overlay = overlay
        self.result = result

    def __call__(self, step: int) -> None:
        overlay, result = self.overlay, self.result
        adjacency = overlay.adjacency() if hasattr(overlay, "adjacency") else None
        if adjacency is not None:
            gap = spectral_gap(adjacency)
        elif hasattr(overlay, "spectral_gap"):
            # DEX networks carry a warm-started tracker; repeated samples
            # reuse the previous Lanczos eigenvector.
            gap = overlay.spectral_gap()
        else:
            # Incrementally patched CSR (dirty rows only, not O(n)).
            _, adjacency = overlay.graph.to_sparse_adjacency()
            gap = spectral_gap(adjacency)
        result.gap_samples.append((step, gap))
        result.degree_samples.append((step, overlay.max_degree()))
        result.size_samples.append((step, overlay.size))
        result.message_samples.append((step, result.messages_total()))

    def last_step(self) -> int:
        return self.result.gap_samples[-1][0] if self.result.gap_samples else -1


def run_churn(
    overlay,
    adversary: Adversary,
    steps: int,
    sample_every: int = 50,
    name: str | None = None,
) -> ChurnResult:
    """Drive ``steps`` adversarial actions against ``overlay``, one
    healed step at a time."""
    result = ChurnResult(name=name or getattr(overlay, "name", "dex"), steps=steps)
    sample = _Sampler(overlay, result)

    sample(0)
    executed = 0
    for step in range(1, steps + 1):
        try:
            action: ChurnAction = adversary.next_action(overlay)
        except TraceExhausted:
            # A scripted adversary ran dry: end cleanly with the steps
            # actually executed (the terminal sample happens below).
            result.steps = executed
            break
        executed = step
        t0 = time.perf_counter()
        try:
            if action.kind == "insert":
                out = overlay.insert(node_id=action.node, attach_to=action.attach_to)
            elif action.kind == "delete":
                out = overlay.delete(action.node)
            else:
                raise AdversaryError(f"unknown action kind {action.kind!r}")
        except AdversaryError:
            result.skipped_actions += 1
        else:
            result.ledgers.append(_ledger_of(out))
        finally:
            result.heal_s += time.perf_counter() - t0
        # Sampling is unconditional on the boundary: a skipped action
        # still advances the run, and dropping the ``step == steps``
        # sample used to leave ``final_gap()`` stale.
        if step % sample_every == 0 or step == steps:
            sample(step)
    if sample.last_step() != result.steps:
        sample(result.steps)
    return result


def run_campaign(
    overlay,
    adversary,
    events: int,
    max_batch: int = 64,
    sample_every: int = 256,
    name: str | None = None,
) -> CampaignResult:
    """Drive up to ``events`` churn events against ``overlay`` in
    adversary-emitted batches, healing every same-kind run through the
    overlay's batch engine when it has one."""
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    result = CampaignResult(
        name=name or getattr(overlay, "name", "dex"), steps=events
    )
    sample = _Sampler(overlay, result)
    batch_adversary = as_batch_adversary(adversary)

    sample(0)
    applied = 0
    next_boundary = sample_every
    while applied < events:
        try:
            batch = batch_adversary.next_batch(
                overlay, min(max_batch, events - applied)
            )
        except TraceExhausted:
            batch = []
        if not batch:
            result.steps = applied  # trace ran dry: end cleanly
            break
        result.batches += 1
        for run in _same_kind_runs(batch):
            applied += _apply_run(overlay, run, result)
        if applied >= next_boundary or applied >= events:
            sample(applied)
            next_boundary = (applied // sample_every + 1) * sample_every
    if sample.last_step() != result.steps:
        sample(result.steps)
    return result


def _same_kind_runs(batch: list[ChurnAction]) -> list[list[ChurnAction]]:
    """Split a (possibly mixed) batch into maximal same-kind runs,
    preserving order -- the units the batch engine heals in one wave."""
    runs: list[list[ChurnAction]] = []
    for action in batch:
        if runs and runs[-1][0].kind == action.kind:
            runs[-1].append(action)
        else:
            runs.append([action])
    return runs


def _apply_run(
    overlay, run: list[ChurnAction], result: CampaignResult
) -> int:
    """Heal one same-kind run, batched when possible; returns the number
    of churn events consumed (every attempted action counts, skipped
    ones included, mirroring ``run_churn``'s step accounting)."""
    kind = run[0].kind
    if kind == "insert":
        attribute = "insert_batch"
    elif kind == "delete":
        attribute = "delete_batch"
    else:
        result.skipped_actions += len(run)
        return len(run)
    batch_call = getattr(overlay, attribute, None) if supports_batch(overlay) else None
    partial_call = (
        getattr(overlay, attribute + "_partial")
        if supports_partial_batch(overlay)
        else None
    )
    if len(run) > 1 and partial_call is not None:
        # Single-pass path: the engine heals the legal majority in one
        # wave and reports each illegal action individually -- no
        # bisection, no replay against intermediate states.
        payload = (
            _assign_insert_ids(overlay, run)
            if kind == "insert"
            else [action.node for action in run]
        )
        t0 = time.perf_counter()
        outcome = partial_call(payload)
        result.heal_s += time.perf_counter() - t0
        if outcome.report is not None:
            result.ledgers.append(_ledger_of(outcome.report))
        result.batched_events += len(outcome.accepted)
        result.fallbacks += len(outcome.rejected)
        result.skipped_actions += len(outcome.rejected)
        return len(run)
    if len(run) > 1 and batch_call is not None:
        payload = (
            _assign_insert_ids(overlay, run)
            if kind == "insert"
            else [action.node for action in run]
        )
        t0 = time.perf_counter()
        try:
            out = batch_call(payload)
        except AdversaryError:
            # A strict (all-or-nothing) engine rejected the run; replay
            # it per step below so the legal actions still apply.
            result.heal_s += time.perf_counter() - t0
            result.fallback_batches += 1
        else:
            result.heal_s += time.perf_counter() - t0
            result.ledgers.append(_ledger_of(out))
            result.batched_events += len(run)
            return len(run)
    for action in run:
        # An action decided against the pre-batch view may reference a
        # node a preceding run already deleted; DEX rejects that itself,
        # but the baselines assume live arguments -- skip it here.
        if kind == "insert":
            stale = action.attach_to is not None and not _has_node(
                overlay, action.attach_to
            )
        else:
            stale = not _has_node(overlay, action.node)
        if stale:
            result.skipped_actions += 1
            continue
        t0 = time.perf_counter()
        try:
            if kind == "insert":
                out = overlay.insert(node_id=action.node, attach_to=action.attach_to)
            else:
                out = overlay.delete(action.node)
        except AdversaryError:
            result.skipped_actions += 1
        else:
            result.ledgers.append(_ledger_of(out))
        finally:
            result.heal_s += time.perf_counter() - t0
    return len(run)


def _has_node(overlay, node) -> bool:
    graph = getattr(overlay, "graph", None)
    if graph is not None and hasattr(graph, "has_node"):
        return graph.has_node(node)
    # Baseline overlays expose dict key views, so membership is O(1).
    return node in overlay.nodes()


def _assign_insert_ids(overlay, run: list[ChurnAction]) -> list[tuple[int, int]]:
    """Concrete ``(new_id, attach_to)`` pairs for an insert run: actions
    that named an id keep it, the rest get fresh consecutive ids (ids
    grow monotonically in every overlay here, so ``fresh_id() + i`` is
    free; ``has_node`` guards the DEX path against collisions with
    explicitly named ids).  Actions without an attach point get a
    uniform live sample from the overlay's own rng -- the same choice
    ``overlay.insert(attach_to=None)`` would make per step."""
    explicit = {action.node for action in run if action.node is not None}
    has_node = getattr(getattr(overlay, "graph", None), "has_node", None)
    sampler = getattr(overlay, "random_node", None)
    pairs: list[tuple[int, int]] = []
    nid: int | None = None
    for action in run:
        attach = action.attach_to
        if attach is None and sampler is not None:
            attach = sampler()
        if action.node is not None:
            pairs.append((action.node, attach))
            continue
        nid = overlay.fresh_id() if nid is None else nid + 1
        while nid in explicit or (has_node is not None and has_node(nid)):
            nid += 1
        pairs.append((nid, attach))
    return pairs
