"""Canned overlay factories so benchmarks and examples build comparable
instances with one call."""

from __future__ import annotations

from typing import Callable

from repro.baselines.flip import FlipChainOverlay
from repro.baselines.flooding import FloodingExpander
from repro.baselines.global_knowledge import GlobalKnowledgeExpander
from repro.baselines.lawsiu import LawSiuNetwork
from repro.baselines.skipgraph import SkipGraphOverlay
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork


def dex_factory(n0: int, seed: int = 0, **config_overrides) -> DexNetwork:
    config = DexConfig(seed=seed, **config_overrides)
    return DexNetwork.bootstrap(n0, config, seed=seed)


def lawsiu_factory(n0: int, seed: int = 0, d: int = 3) -> LawSiuNetwork:
    return LawSiuNetwork(n0, d=d, seed=seed)


def skipgraph_factory(n0: int, seed: int = 0) -> SkipGraphOverlay:
    return SkipGraphOverlay(n0, seed=seed)


def flip_factory(n0: int, seed: int = 0, d: int = 6) -> FlipChainOverlay:
    return FlipChainOverlay(n0, d=d, seed=seed)


def flooding_factory(n0: int, seed: int = 0) -> FloodingExpander:
    return FloodingExpander(n0, seed=seed)


def global_knowledge_factory(n0: int, seed: int = 0) -> GlobalKnowledgeExpander:
    return GlobalKnowledgeExpander(n0, seed=seed)


OVERLAY_FACTORIES: dict[str, Callable] = {
    "dex": dex_factory,
    "law-siu": lawsiu_factory,
    "skip-graph": skipgraph_factory,
    "flip-chain": flip_factory,
    "flooding": flooding_factory,
    "global-knowledge": global_knowledge_factory,
}
