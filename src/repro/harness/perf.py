"""Perf-regression harness: hot-path timings -> ``BENCH_perf.json``.

Times the four hot paths of the simulator -- bootstrap, the
insert/delete churn step, random-walk hops, and repeated spectral-gap
measurements -- at several network sizes, and merges the results into a
machine-readable report so successive PRs can compare against a recorded
baseline instead of folklore.

Report format (schema ``dex-perf/1``)::

    {
      "schema": "dex-perf/1",
      "churn_steps": 200,            # steps per churn loop
      "sizes": [256, 1024, 4096],
      "runs": {
        "<label>": {                 # e.g. "before" / "after"
          "meta": {"python": "...", "platform": "...", "created": "..."},
          "n256": {
            "bootstrap_s": 0.004,
            "churn_total_s": 0.055,  # insert+delete loop, validation off
            "churn_per_step_ms": 0.274,
            "walk_us_per_hop": 1.9,
            "spectral_ms_per_call": 1.2
          },
          ...
        }
      },
      "speedup": {"n4096": {"churn": 8.1, ...}}   # before/after ratios
    }

Timings use ``time.perf_counter`` around single passes (the loops are
long enough to dominate timer noise); the churn loop runs with
``validate_every_step=False`` -- the invariant oracle is what the *tests*
exercise, the harness measures the production path.

CLI::

    PYTHONPATH=src python -m repro.harness.perf \
        --label after --sizes 256 1024 4096 --steps 200 --out BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys
import time
from datetime import datetime, timezone
from typing import Sequence

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.net.walks import random_walk

SCHEMA = "dex-perf/1"
DEFAULT_SIZES = (256, 1024, 4096)
DEFAULT_STEPS = 200
#: ratios are reported for these (label_before, label_after) pairs
_SPEEDUP_PAIR = ("before", "after")


def _build(n: int, seed: int) -> DexNetwork:
    config = DexConfig(validate_every_step=False)
    return DexNetwork.bootstrap(n, config=config, seed=seed)


def bench_bootstrap(n: int, seed: int) -> float:
    t0 = time.perf_counter()
    _build(n, seed)
    return time.perf_counter() - t0


def bench_churn(n: int, steps: int, seed: int) -> tuple[float, DexNetwork]:
    """Alternating insert/delete loop at size ~n; returns (seconds, net)."""
    net = _build(n, seed)
    t0 = time.perf_counter()
    for i in range(steps):
        if i % 2 == 0:
            net.insert()
        else:
            net.delete(net.random_node())
    return time.perf_counter() - t0, net


def bench_walks(net: DexNetwork, tokens: int, length: int, seed: int) -> float:
    """Microseconds per walk hop over ``tokens`` weighted walks."""
    rng = random.Random(seed)
    starts = [net.random_node() for _ in range(tokens)]
    hops = 0
    t0 = time.perf_counter()
    for start in starts:
        result = random_walk(net.graph, start, length, rng)
        hops += max(result.hops, 1)
    elapsed = time.perf_counter() - t0
    return elapsed / max(hops, 1) * 1e6


def bench_spectral(net: DexNetwork, repeats: int) -> float:
    """Milliseconds per spectral-gap measurement under light churn (the
    repeated-measurement pattern of the experiment runner)."""
    t0 = time.perf_counter()
    for i in range(repeats):
        net.spectral_gap()
        if i + 1 < repeats:  # perturb so repeats are not trivially cached
            net.insert()
            net.delete(net.random_node())
    elapsed = time.perf_counter() - t0
    return elapsed / max(repeats, 1) * 1e3


def run_suite(
    sizes: Sequence[int] = DEFAULT_SIZES,
    churn_steps: int = DEFAULT_STEPS,
    seed: int = 11,
    spectral_repeats: int = 5,
    progress: bool = False,
) -> dict:
    """Run every benchmark at every size; returns the per-size mapping."""
    suite: dict[str, dict[str, float]] = {}
    for n in sizes:
        boot = bench_bootstrap(n, seed)
        churn_s, net = bench_churn(n, churn_steps, seed)
        walk_us = bench_walks(net, tokens=50, length=4 * max(net.size, 2).bit_length(), seed=seed)
        spectral_ms = bench_spectral(net, spectral_repeats)
        suite[f"n{n}"] = {
            "bootstrap_s": round(boot, 6),
            "churn_total_s": round(churn_s, 6),
            "churn_per_step_ms": round(churn_s / max(churn_steps, 1) * 1e3, 6),
            "walk_us_per_hop": round(walk_us, 3),
            "spectral_ms_per_call": round(spectral_ms, 3),
        }
        if progress:
            print(f"  n={n}: {suite[f'n{n}']}", file=sys.stderr)
    return suite


def _speedups(runs: dict) -> dict:
    before, after = (runs.get(label) for label in _SPEEDUP_PAIR)
    if not before or not after:
        return {}
    out: dict[str, dict[str, float]] = {}
    for key, b in before.items():
        a = after.get(key)
        if key == "meta" or not isinstance(b, dict) or not a:
            continue
        ratios: dict[str, float] = {}
        for metric, short in (
            ("churn_per_step_ms", "churn"),
            ("bootstrap_s", "bootstrap"),
            ("walk_us_per_hop", "walk"),
            ("spectral_ms_per_call", "spectral"),
        ):
            if a.get(metric):
                ratios[short] = round(b[metric] / a[metric], 2)
        out[key] = ratios
    return out


def load_report(path: pathlib.Path) -> dict:
    if path.exists():
        text = path.read_text().strip()
        if text:
            try:
                report = json.loads(text)
            except json.JSONDecodeError as exc:
                # Never silently clobber a recorded baseline.
                raise SystemExit(
                    f"{path} exists but is not valid JSON ({exc}); "
                    "move it aside or fix it before recording a new run"
                ) from None
            if report.get("schema") == SCHEMA:
                return report
    return {"schema": SCHEMA, "runs": {}}


def write_report(
    path: pathlib.Path,
    label: str,
    suite: dict,
    sizes: Sequence[int],
    churn_steps: int,
) -> dict:
    """Merge one labelled run into the report at ``path``."""
    report = load_report(path)
    suite = dict(suite)
    suite["meta"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    report["churn_steps"] = churn_steps
    report["sizes"] = list(sizes)
    report.setdefault("runs", {})[label] = suite
    report["speedup"] = _speedups(report["runs"])
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after", help="run label (e.g. before/after)")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", type=pathlib.Path, default=pathlib.Path("BENCH_perf.json"))
    args = parser.parse_args(argv)

    load_report(args.out)  # refuse a corrupt report before the long run
    print(f"perf suite: sizes={args.sizes} steps={args.steps} label={args.label!r}")
    suite = run_suite(args.sizes, args.steps, args.seed, progress=True)
    report = write_report(args.out, args.label, suite, args.sizes, args.steps)
    if report.get("speedup"):
        print(f"speedup (before/after): {json.dumps(report['speedup'])}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
