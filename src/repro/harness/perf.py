"""Perf-regression harness: hot-path timings -> ``BENCH_perf.json``.

Times the hot paths of the simulator -- bootstrap, the insert/delete
churn step, random-walk hops, repeated spectral-gap measurements, the
batch-parallel healing engine and the incremental CSR patch -- at
several network sizes, and merges the results into a machine-readable
report so successive PRs can compare against a recorded baseline
instead of folklore.

Report format (schema ``dex-perf/8``; ``dex-perf/1`` through
``dex-perf/7`` reports are upgraded in place, their recorded runs
kept)::

    {
      "schema": "dex-perf/8",
      "churn_steps": 200,              # steps per churn loop
      "sizes": [256, 1024, 4096],
      "runs": {
        "<label>": {                   # e.g. "before" / "after" / "pr2"
          "meta": {"python": "...", "platform": "...", "created": "..."},
          "n4096": {
            "bootstrap_s": 0.078,
            "churn_total_s": 0.028,    # insert+delete loop, validation off
            "churn_per_step_ms": 0.14,
            "walk_us_per_hop": 3.1,
            "spectral_ms_per_call": 32.3,
            # --- batch-parallel healing engine (PR 2) ---
            "batch_churn_per_node_ms": 0.04,   # waves, validation off
            "batch_churn_validated_per_node_ms": 0.08,  # + batch validation
            "seq_churn_per_node_ms": 0.13,     # same churn, one step/node
            "batch_speedup_x": 3.2,            # seq / batch
            # --- incremental CSR (PR 2) ---
            "csr_patch_ms": 0.9,       # to_sparse_adjacency() under churn
            "csr_rebuild_ms": 5.4,     # force_rebuild=True
            "csr_speedup_x": 5.8,
            # --- lockstep wave engine (PR 3) ---
            "wave_hop_us": 0.3,        # vector engine, us per wave hop
            "wave_scalar_hop_us": 1.2, # scalar reference, same wave
            "wave_speedup_x": 4.0      # scalar / vector (identical hops)
          },
          ...
        }
      },
      "speedup": {"n4096": {"churn": 6.5, ...}},  # before/after ratios
      "sweeps": {
        "<label>": {                   # one multiprocess run per label
          "meta": {..., "workers": 8},
          "n100000_s11": {
            "bootstrap_s": 2.1,
            "batch_churn_per_node_ms": 0.05,
            "nodes_healed": 1536,
            "wall_s": 3.4
          }
        }
      },
      "campaigns": {                   # scenario campaigns (PR 4); see
        "<label>": {                   # repro.harness.scenarios
          "meta": {"python": "...", "workers": 4, ...},
          "flash-crowd/dex/n4096_s11": {
            "events": 2048, "batches": 34, "heal_per_event_ms": 0.05,
            "min_gap": 0.11, "final_gap": 0.13, "max_degree": 16,
            "messages_total": 180321, "skipped": 0, "wall_s": 4.2,
            # only with --compare-sequential:
            "seq_heal_per_event_ms": 0.15, "campaign_speedup_x": 3.0
            # only with --series: the full sampled time series
            # {"gap": [[event, value], ...], "degree": ..., ...}
          }
        }
      },
      "service": {                     # membership-gateway soak (PR 5);
        "<label>": {                   # repro.service / cli soak
          "meta": {"python": "...", "created": "..."},
          "n4096": {
            "duration_s": 2.0, "clients": 256,
            "max_batch": 128, "batch_window_ms": 2.0,
            "policy": "fixed", "deadline_ms": null,
            "events": 31873, "events_per_s": 15936.0,
            "goodput_per_s": 15730.0,  # healed acks only (PR 7)
            "ack_p50_ms": 7.9, "ack_p99_ms": 16.2, "ack_max_ms": 31.0,
            "batches": 270, "mean_batch": 118.0,
            "rejected": 12, "backpressure": 0,
            "shed": 0, "deadline_timeouts": 0, "retries": 0,
            "final_n": 4103,
            # the per-request twin (max_batch=1, window=0) and the
            # micro-batching receipt:
            "per_request_events_per_s": 5213.0,
            "per_request_ack_p50_ms": 41.0,
            "service_speedup_x": 3.06
          },
          # --- policy frontier sweep (PR 7): offered load x admission
          # policy under an open loop; the capacity-planning curves ---
          "n4096/shed-oldest/r12000": {
            "policy": "shed-oldest", "offered_rate_hz": 12000.0,
            "duration_s": 2.0, "offered": 23998, "completed": 23998,
            "ok": 13890, "backpressure": 0, "shed": 9983,
            "deadline_timeouts": 0, "retries": 0,
            "shed_rate": 0.416, "goodput_per_s": 6903.0,
            "events_per_s": 7012.0, "ack_p99_ms": 74.0,
            "queue_depth_max": 520, "heal_utilization": 0.97,
            "policy_state": {"policy": "shed-oldest", "high_water": 512,
                             "shed_total": 9983},
            "final_n": 4311
          },
          # --- shard sweep (PR 8): serial vs pipelined gateway vs the
          # sharded cluster at each shard count; the scaling receipt ---
          "n16384/serial":    {"pipeline": false, "events_per_s": 9120.0, ...},
          "n16384/pipelined": {"pipeline": true, "events_per_s": 9870.0,
                               "pipeline_speedup_x": 1.08, ...},
          "n16384/shards4": {
            "shards": 4, "duration_s": 4.0, "clients": 256,
            "offered": 54000, "completed": 54000,   # == under saturation
            "events": 54000, "events_per_s": 6400.0,
            "goodput_per_s": 6180.0,
            "ack_p50_ms": 8.1, "ack_p99_ms": 29.0, "ack_max_ms": 55.0,
            "handoffs": {"attempted": 0, "committed": 0, "rejected": 0,
                         "expired": 0, "in_flight": 0, "shard_failures": 0},
            "audit_ok": true,            # cluster-wide I1-I8 + ownership
            "total_nodes": 16840,
            "shard_speedup_x": 0.65      # vs the pipelined single gateway
          }                              #   (sub-1 on one core: workers
                                         #    need real cores to win)
        }
      },
      "tracing": {                     # obs overhead receipt (PR 10)
        "<label>": {
          "meta": {"python": "...", "created": "..."},
          "n256": {
            # batch-churn hot path, tracing off vs on (ring recorder),
            # best-of-repeats interleaved so machine drift cancels:
            "churn_off_per_step_ms": 0.61,
            "churn_on_per_step_ms": 0.62,
            "trace_enabled_churn_overhead_pct": 1.6,
            # disabled cost is synthetic: measured guard_ns (one
            # `current().enabled` check) x spans the enabled run
            # would have created, as a fraction of the off time:
            "trace_disabled_churn_overhead_pct": 0.003,
            # short saturating gateway soak, same off/on treatment:
            "soak_off_events_per_s": 4100.0,
            "soak_on_events_per_s": 4050.0,
            "trace_enabled_soak_overhead_pct": 1.2,
            "trace_disabled_soak_overhead_pct": 0.005,
            "spans_per_step": 0.07,    # spans per healed churn node
            "spans_per_event": 1.3,    # spans per resolved soak ack
            "guard_ns": 45.0           # one disabled-path check
          }
        }
      }
    }

Timings use ``time.perf_counter``; batch-vs-sequential and CSR numbers
are best-of-``repeats`` on fresh networks (the comparison is the PR's
receipt, so it must not flake on machine noise).  Churn loops run with
``validate_every_step=False`` and the batch engine is additionally
timed with ``validate_batches=False``: single-node steps perform no
batch-model validation, so that is the apples-to-apples comparison of
the *healing engines*; the validated number is recorded alongside.

CLI::

    PYTHONPATH=src python -m repro.harness.perf \\
        --label after --sizes 256 1024 4096 --steps 200 --out BENCH_perf.json

    # multiprocess scaling sweep, one worker per size x seed point:
    PYTHONPATH=src python -m repro.harness.perf --sweep \\
        --sweep-sizes 100000 --sweep-seeds 11 13 --out BENCH_perf.json

    # membership-gateway soak (micro-batched vs per-request gateway):
    PYTHONPATH=src python -m repro.harness.perf --soak \\
        --soak-sizes 4096 --soak-duration 2 --out BENCH_perf.json

    # overload-control frontier: offered load x admission policy:
    PYTHONPATH=src python -m repro.harness.perf --frontier \\
        --frontier-sizes 4096 --frontier-rates 2000 6000 12000 \\
        --out BENCH_perf.json

    # shard scaling: serial vs pipelined gateway vs N-shard cluster:
    PYTHONPATH=src python -m repro.harness.perf --shard-sweep \\
        --shard-sizes 16384 --shard-counts 2 4 --out BENCH_perf.json

    # tracing overhead: churn + soak hot paths, tracing off vs on,
    # rows under the `tracing` key (scripts/perf_gate.py --trace-overhead):
    PYTHONPATH=src python -m repro.harness.perf --trace-overhead \\
        --trace-sizes 256 --out BENCH_perf.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from datetime import datetime, timezone
from typing import Sequence

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import AdversaryError
from repro.net.walks import random_walk, run_wave

SCHEMA = "dex-perf/8"
_COMPATIBLE_SCHEMAS = (
    "dex-perf/1",
    "dex-perf/2",
    "dex-perf/3",
    "dex-perf/4",
    "dex-perf/5",
    "dex-perf/6",
    "dex-perf/7",
    "dex-perf/8",
)
DEFAULT_SIZES = (256, 1024, 4096)
DEFAULT_STEPS = 200
DEFAULT_BATCH = 64
DEFAULT_SWEEP_SIZES = (100_000,)
DEFAULT_SWEEP_SEEDS = (11,)
#: ratios are reported for these (label_before, label_after) pairs
_SPEEDUP_PAIR = ("before", "after")


def _build(n: int, seed: int, **overrides) -> DexNetwork:
    config = DexConfig(validate_every_step=False, **overrides)
    return DexNetwork.bootstrap(n, config=config, seed=seed)


def bench_bootstrap(n: int, seed: int) -> float:
    t0 = time.perf_counter()
    _build(n, seed)
    return time.perf_counter() - t0


def bench_churn(n: int, steps: int, seed: int) -> tuple[float, DexNetwork]:
    """Alternating insert/delete loop at size ~n; returns (seconds, net)."""
    net = _build(n, seed)
    t0 = time.perf_counter()
    for i in range(steps):
        if i % 2 == 0:
            net.insert()
        else:
            net.delete(net.random_node())
    return time.perf_counter() - t0, net


def bench_walks(net: DexNetwork, tokens: int, length: int, seed: int) -> float:
    """Microseconds per walk hop over ``tokens`` weighted walks."""
    rng = random.Random(seed)
    starts = [net.random_node() for _ in range(tokens)]
    hops = 0
    t0 = time.perf_counter()
    for start in starts:
        result = random_walk(net.graph, start, length, rng)
        hops += max(result.hops, 1)
    elapsed = time.perf_counter() - t0
    return elapsed / max(hops, 1) * 1e6


def bench_spectral(net: DexNetwork, repeats: int) -> float:
    """Milliseconds per spectral-gap measurement under light churn (the
    repeated-measurement pattern of the experiment runner)."""
    t0 = time.perf_counter()
    for i in range(repeats):
        net.spectral_gap()
        if i + 1 < repeats:  # perturb so repeats are not trivially cached
            net.insert()
            net.delete(net.random_node())
    elapsed = time.perf_counter() - t0
    return elapsed / max(repeats, 1) * 1e3


# ----------------------------------------------------------------------
# batch-parallel healing engine (PR 2)
# ----------------------------------------------------------------------
def _draw_insert_batch(
    net: DexNetwork, batch: int, adversary: random.Random
) -> list[tuple[int, int]]:
    per_host: dict[int, int] = {}
    pairs = []
    base = net.fresh_id()
    for i in range(batch):
        host = net.sample_node(adversary)
        while per_host.get(host, 0) >= 4:
            host = net.sample_node(adversary)
        per_host[host] = per_host.get(host, 0) + 1
        pairs.append((base + i, host))
    return pairs


def _draw_victims(
    net: DexNetwork, batch: int, adversary: random.Random
) -> list[int]:
    victims: set[int] = set()
    while len(victims) < batch:
        victims.add(net.sample_node(adversary))
    return list(victims)


def run_batch_churn(
    net: DexNetwork, batch: int, rounds: int, adversary: random.Random
) -> tuple[int, float]:
    """Drive ``rounds`` of insert-batch + delete-batch churn; returns
    ``(healed nodes, engine seconds)``.  Only the ``insert_batch`` /
    ``delete_batch`` calls are on the clock -- the adversary's schedule
    generation is workload, not healing (the sequential benchmark gets
    the same treatment)."""
    healed = 0
    engine = 0.0
    for _ in range(rounds):
        pairs = _draw_insert_batch(net, batch, adversary)
        t0 = time.perf_counter()
        net.insert_batch(pairs)
        engine += time.perf_counter() - t0
        healed += batch
        for _attempt in range(8):
            victims = _draw_victims(net, batch, adversary)
            try:
                t0 = time.perf_counter()
                net.delete_batch(victims)
                engine += time.perf_counter() - t0
            except AdversaryError:
                engine += time.perf_counter() - t0
                continue  # the set would disconnect the remainder; redraw
            healed += batch
            break
    return healed, engine


def _time_batch_churn(
    n: int, batch: int, rounds: int, seed: int, validate: bool
) -> float:
    net = _build(n, seed, validate_batches=validate)
    adversary = random.Random(seed + 1)
    # One warmup round absorbs lazy imports and per-prime caches (the
    # p-cycle routing tree) that would otherwise bill one-time costs to
    # the engine.
    run_batch_churn(net, batch, 1, adversary)
    healed, engine = run_batch_churn(net, batch, rounds, adversary)
    return engine / max(healed, 1) * 1e3


def bench_batch_vs_seq(
    n: int,
    batch: int = DEFAULT_BATCH,
    rounds: int = 8,
    seed: int = 11,
    repeats: int = 3,
) -> dict[str, float]:
    """Per-healed-node cost of the batch-parallel engine vs. the same
    churn applied one step per node, best-of-``repeats`` on fresh
    networks each (the ≥3x acceptance number of the PR 2 engine)."""
    steps = rounds * 2 * batch

    def seq_once() -> float:
        net = _build(n, seed)
        adversary = random.Random(seed + 1)
        for _ in range(16):  # warmup, mirroring the batch measurement
            net.insert(attach_to=net.sample_node(adversary))
            net.delete(net.sample_node(adversary))
        engine = 0.0
        for i in range(steps):
            if i % 2 == 0:
                attach = net.sample_node(adversary)  # workload, untimed
                t0 = time.perf_counter()
                net.insert(attach_to=attach)
            else:
                victim = net.sample_node(adversary)
                t0 = time.perf_counter()
                net.delete(victim)
            engine += time.perf_counter() - t0
        return engine / steps * 1e3

    seq = min(seq_once() for _ in range(repeats))
    batched = min(
        _time_batch_churn(n, batch, rounds, seed, validate=False)
        for _ in range(repeats)
    )
    validated = min(
        _time_batch_churn(n, batch, rounds, seed, validate=True)
        for _ in range(repeats)
    )
    return {
        "batch_churn_per_node_ms": round(batched, 6),
        "batch_churn_validated_per_node_ms": round(validated, 6),
        "seq_churn_per_node_ms": round(seq, 6),
        "batch_speedup_x": round(seq / batched, 2) if batched else 0.0,
    }


# ----------------------------------------------------------------------
# lockstep wave engine (PR 3)
# ----------------------------------------------------------------------
DEFAULT_WAVE_TOKENS = 1000


def bench_wave(
    n: int,
    tokens: int = DEFAULT_WAVE_TOKENS,
    seed: int = 11,
    repeats: int = 3,
) -> dict[str, float]:
    """Vectorized lockstep wave vs. the scalar reference on the same
    ``bench_walks``-style wave (full-length weighted walks, empty member
    set, Lemma 11 congestion), best-of-``repeats``.

    Both engines implement one draw protocol, so a fixed rng state gives
    bit-identical hop counts -- the per-hop ratio *is* the wall-clock
    ratio, and the comparison can never flake on divergent trajectories.
    """
    net = _build(n, seed)
    workload = random.Random(seed + 2)
    starts = [net.sample_node(workload) for _ in range(tokens)]
    length = 4 * max(net.size, 2).bit_length()

    def once(engine: str) -> float:
        rng = random.Random(seed + 3)
        t0 = time.perf_counter()
        _ends, _founds, hops, _rounds = run_wave(
            net.graph, starts, length, frozenset(), rng, engine=engine
        )
        return (time.perf_counter() - t0) / max(hops, 1) * 1e6

    once("vector")  # warm the CSR wave view (billed to neither engine)
    scalar_us = min(once("scalar") for _ in range(repeats))
    vector_us = min(once("vector") for _ in range(repeats))
    return {
        "wave_hop_us": round(vector_us, 4),
        "wave_scalar_hop_us": round(scalar_us, 4),
        "wave_speedup_x": round(scalar_us / vector_us, 2) if vector_us else 0.0,
    }


# ----------------------------------------------------------------------
# incremental CSR (PR 2)
# ----------------------------------------------------------------------
def bench_csr(
    n: int, seed: int = 11, reps: int = 20, repeats: int = 3
) -> dict[str, float]:
    """Incremental ``to_sparse_adjacency`` patch vs. from-scratch
    rebuild under light churn (the repeated spectral-sampling access
    pattern), best-of-``repeats``."""

    def once() -> tuple[float, float]:
        net = _build(n, seed)
        net.graph.to_sparse_adjacency()  # warm the cache
        patch = rebuild = 0.0
        for _ in range(reps):
            net.insert()
            net.delete(net.random_node())
            t0 = time.perf_counter()
            net.graph.to_sparse_adjacency()
            patch += time.perf_counter() - t0
        for _ in range(reps):
            net.insert()
            net.delete(net.random_node())
            t0 = time.perf_counter()
            net.graph.to_sparse_adjacency(force_rebuild=True)
            rebuild += time.perf_counter() - t0
        return patch / reps * 1e3, rebuild / reps * 1e3

    samples = [once() for _ in range(repeats)]
    patch_ms = min(s[0] for s in samples)
    rebuild_ms = min(s[1] for s in samples)
    return {
        "csr_patch_ms": round(patch_ms, 6),
        "csr_rebuild_ms": round(rebuild_ms, 6),
        "csr_speedup_x": round(rebuild_ms / patch_ms, 2) if patch_ms else 0.0,
    }


# ----------------------------------------------------------------------
# membership-gateway soak (PR 5)
# ----------------------------------------------------------------------
DEFAULT_SOAK_DURATION = 2.0
DEFAULT_SOAK_CLIENTS = 256
DEFAULT_SOAK_BATCH = 128
DEFAULT_SOAK_WINDOW_MS = 2.0


def bench_service_soak(
    n: int,
    *,
    duration_s: float = DEFAULT_SOAK_DURATION,
    max_batch: int = DEFAULT_SOAK_BATCH,
    batch_window_ms: float = DEFAULT_SOAK_WINDOW_MS,
    clients: int = DEFAULT_SOAK_CLIENTS,
    join_fraction: float = 0.5,
    queue_limit: int = 8192,
    seed: int = 11,
    per_request: bool = False,
    policy: str = "fixed",
    deadline_ms: float | None = None,
    retry: "object | None" = None,
    checkpoint_dir: "str | None" = None,
    checkpoint_every: int = 32,
    checkpoint_keep: int = 3,
    pipeline: bool = False,
    warmup_s: float = 0.0,
) -> dict:
    """Soak the membership gateway over a fresh n-node network with a
    closed-loop saturating client fleet for ``duration_s`` seconds and
    report sustained throughput plus ack-latency percentiles.
    ``per_request=True`` runs the degenerate gateway (``max_batch=1``,
    ``batch_window_ms=0``) -- the baseline the micro-batching speedup is
    measured against.  ``policy`` / ``deadline_ms`` select the
    overload-control configuration and ``retry`` an optional
    :class:`~repro.service.loadgen.RetryPolicy` for the client fleet.
    ``checkpoint_dir`` turns on periodic snapshots (every
    ``checkpoint_every`` flushes) plus a final one at drain, so the soak
    doubles as a crash-recovery fixture; the checkpoint columns then
    land in the row.  ``pipeline=True`` overlaps flush k+1's
    validation/screening with flush k's heal wave (PR 8)."""
    import asyncio
    import gc

    from repro.service import MembershipGateway, saturating_load

    net = _build(n, seed)
    # Same treatment the shard workers give their bootstrap heap: move
    # the long-lived network objects to the permanent generation so
    # cyclic-GC passes during the soak don't scan them.  Keeps the
    # single-gateway numbers comparable with the sharded cluster's.
    gc.collect()
    gc.freeze()

    async def drive():
        gateway = MembershipGateway(
            net,
            max_batch=1 if per_request else max_batch,
            batch_window_ms=0.0 if per_request else batch_window_ms,
            queue_limit=queue_limit,
            policy=policy,
            pipeline=pipeline,
            deadline_ms=deadline_ms,
            seed=seed,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            checkpoint_keep=checkpoint_keep,
        )
        await gateway.start()
        try:
            if warmup_s > 0:
                # Cold-start phase: first flushes pay the one-off CSR
                # rebuild and cache warming.  Run it outside the timed
                # window, then re-anchor the metrics clock.
                await saturating_load(
                    gateway,
                    duration_s=warmup_s,
                    clients=clients,
                    join_fraction=join_fraction,
                    seed=seed + 7,
                    retry=retry,
                )
                gateway.metrics.reset()
            stats = await saturating_load(
                gateway,
                duration_s=duration_s,
                clients=clients,
                join_fraction=join_fraction,
                seed=seed + 1,
                retry=retry,
            )
        finally:
            summary = await gateway.drain()
        return stats, gateway.metrics.snapshot(), summary

    stats, snap, drain_summary = asyncio.run(drive())
    checkpoint_columns = (
        {
            "checkpoints_written": drain_summary["checkpoints_written"],
            "checkpoint_errors": drain_summary["checkpoint_errors"],
        }
        if checkpoint_dir is not None
        else {}
    )
    return checkpoint_columns | {
        "duration_s": duration_s,
        "warmup_s": warmup_s,
        "clients": clients,
        "max_batch": 1 if per_request else max_batch,
        "batch_window_ms": 0.0 if per_request else batch_window_ms,
        "policy": policy,
        "pipeline": pipeline,
        "deadline_ms": deadline_ms,
        "offered": stats.offered,
        "events": snap["events"],
        "events_per_s": snap["events_per_s"],
        "goodput_per_s": snap["goodput_per_s"],
        "ack_p50_ms": snap["ack_p50_ms"],
        "ack_p90_ms": snap["ack_p90_ms"],
        "ack_p99_ms": snap["ack_p99_ms"],
        "ack_max_ms": snap["ack_max_ms"],
        "batches": snap["batches"],
        "mean_batch": snap["mean_batch"],
        "rejected": snap["rejected"],
        "backpressure": snap["backpressure"],
        "shed": snap["shed"],
        "deadline_timeouts": snap["deadline_timeouts"],
        "retries": snap["retries"],
        "queue_depth_max": snap["queue_depth_max"],
        "heal_utilization": snap["heal_utilization"],
        "final_n": net.size,
    }


def bench_service(
    n: int,
    *,
    duration_s: float = DEFAULT_SOAK_DURATION,
    max_batch: int = DEFAULT_SOAK_BATCH,
    batch_window_ms: float = DEFAULT_SOAK_WINDOW_MS,
    clients: int = DEFAULT_SOAK_CLIENTS,
    seed: int = 11,
    compare_per_request: bool = True,
    policy: str = "fixed",
    deadline_ms: float | None = None,
    retry: "object | None" = None,
    checkpoint_dir: "str | None" = None,
    checkpoint_every: int = 32,
    checkpoint_keep: int = 3,
    pipeline: bool = False,
    warmup_s: float = 0.0,
) -> dict:
    """The soak row for one size: the micro-batched gateway, optionally
    the per-request twin on an identically seeded fresh network, and
    ``service_speedup_x`` (batched / per-request events per second) --
    the serving layer's acceptance receipt.  Checkpointing (when
    ``checkpoint_dir`` is set) applies to the batched run only; the
    per-request baseline stays undisturbed, as does the overload
    configuration (the baseline always runs ``fixed`` with no
    deadline, so the speedup compares batching, not shedding)."""
    row = bench_service_soak(
        n,
        duration_s=duration_s,
        max_batch=max_batch,
        batch_window_ms=batch_window_ms,
        clients=clients,
        seed=seed,
        policy=policy,
        deadline_ms=deadline_ms,
        retry=retry,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        checkpoint_keep=checkpoint_keep,
        pipeline=pipeline,
        warmup_s=warmup_s,
    )
    if compare_per_request:
        baseline = bench_service_soak(
            n,
            duration_s=duration_s,
            clients=clients,
            seed=seed,
            per_request=True,
        )
        row["per_request_events_per_s"] = baseline["events_per_s"]
        row["per_request_ack_p50_ms"] = baseline["ack_p50_ms"]
        row["per_request_ack_p99_ms"] = baseline["ack_p99_ms"]
        row["service_speedup_x"] = (
            round(row["events_per_s"] / baseline["events_per_s"], 2)
            if baseline["events_per_s"]
            else 0.0
        )
    return row


DEFAULT_SHARD_COUNTS = (2, 4)


def bench_shard_cluster(
    n: int,
    shards: int,
    *,
    duration_s: float = DEFAULT_SOAK_DURATION,
    max_batch: int = DEFAULT_SOAK_BATCH,
    batch_window_ms: float = DEFAULT_SOAK_WINDOW_MS,
    clients: int = DEFAULT_SOAK_CLIENTS,
    join_fraction: float = 0.5,
    seed: int = 11,
    warmup_s: float = 0.0,
) -> dict:
    """Soak an N-shard cluster (real worker processes, one id region
    each) behind the router with the same saturating closed-loop fleet
    the single-gateway soak uses, then audit it: per-shard I1-I8 plus
    the cross-shard id-ownership check, and ``offered == completed``
    (every request answered, none hung).  ``warmup_s`` runs an unmetered
    load phase first (then resets every shard's metrics), so the
    recorded row is steady state rather than each worker's one-off
    first-flush cache rebuild."""
    import asyncio

    from repro.service.loadgen import saturating_load
    from repro.service.router import start_cluster

    async def drive():
        router = await start_cluster(
            n,
            shards,
            seed=seed,
            max_batch=max_batch,
            window_ms=batch_window_ms,
        )
        try:
            if warmup_s > 0:
                await saturating_load(
                    router,
                    duration_s=warmup_s,
                    clients=clients,
                    join_fraction=join_fraction,
                    seed=seed + 9,
                )
                await router.reset_metrics()
            stats = await saturating_load(
                router,
                duration_s=duration_s,
                clients=clients,
                join_fraction=join_fraction,
                seed=seed + 1,
            )
            # Snapshot the serving window *before* the audit: at large n
            # the cluster-wide invariant check takes minutes of wall
            # clock that would otherwise dilute events/s.
            snap = router.metrics.snapshot()
            shard_stats = await router.stats()
            audit = await router.cluster_audit()
        finally:
            summary = await router.drain()
        return stats, audit, snap, shard_stats, summary

    stats, audit, snap, shard_stats, summary = asyncio.run(drive())
    return {
        "shards": shards,
        "duration_s": duration_s,
        "warmup_s": warmup_s,
        "clients": clients,
        "max_batch": max_batch,
        "batch_window_ms": batch_window_ms,
        "offered": stats.offered,
        "completed": stats.completed,
        "events": snap["events"],
        "events_per_s": snap["events_per_s"],
        "goodput_per_s": snap["goodput_per_s"],
        "ack_p50_ms": snap["ack_p50_ms"],
        "ack_p90_ms": snap["ack_p90_ms"],
        "ack_p99_ms": snap["ack_p99_ms"],
        "ack_max_ms": snap["ack_max_ms"],
        "rejected": snap["rejected"],
        "deadline_timeouts": snap["deadline_timeouts"],
        "handoffs": summary["handoffs"],
        "audit_ok": audit["ok"],
        "audit_errors": audit["errors"][:8],
        "total_nodes": audit["total_nodes"],
        "per_shard_events_per_s": [
            row.get("events_per_s") for row in shard_stats["per_shard"]
        ],
    }


def bench_shard_sweep(
    n: int,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    *,
    duration_s: float = DEFAULT_SOAK_DURATION,
    max_batch: int = DEFAULT_SOAK_BATCH,
    batch_window_ms: float = DEFAULT_SOAK_WINDOW_MS,
    clients: int = DEFAULT_SOAK_CLIENTS,
    seed: int = 11,
    warmup_s: float = 0.0,
    progress: bool = False,
) -> dict:
    """The PR 8 scaling receipt: at one total size ``n``, soak the
    serial gateway, the pipelined gateway, and the sharded cluster at
    each shard count.  Rows land under ``n{n}/serial``,
    ``n{n}/pipelined`` and ``n{n}/shards{S}``; every cluster row gets
    ``shard_speedup_x`` (cluster / *pipelined* single gateway -- the
    sharding win is measured against the stronger single-process
    configuration, not the easy target), and the pipelined row gets
    ``pipeline_speedup_x`` (pipelined / serial)."""
    rows: dict[str, dict] = {}

    def note(key: str, row: dict) -> None:
        rows[key] = row
        if progress:
            print(
                f"  {key}: {row['events_per_s']} ev/s "
                f"(p99 {row['ack_p99_ms']} ms)",
                file=sys.stderr,
            )

    serial = bench_service_soak(
        n,
        duration_s=duration_s,
        max_batch=max_batch,
        batch_window_ms=batch_window_ms,
        clients=clients,
        seed=seed,
        warmup_s=warmup_s,
    )
    note(f"n{n}/serial", serial)
    pipelined = bench_service_soak(
        n,
        duration_s=duration_s,
        max_batch=max_batch,
        batch_window_ms=batch_window_ms,
        clients=clients,
        seed=seed,
        warmup_s=warmup_s,
        pipeline=True,
    )
    pipelined["pipeline_speedup_x"] = (
        round(pipelined["events_per_s"] / serial["events_per_s"], 3)
        if serial["events_per_s"]
        else 0.0
    )
    note(f"n{n}/pipelined", pipelined)
    for shards in shard_counts:
        row = bench_shard_cluster(
            n,
            shards,
            duration_s=duration_s,
            max_batch=max_batch,
            batch_window_ms=batch_window_ms,
            clients=clients,
            seed=seed,
            warmup_s=warmup_s,
        )
        row["shard_speedup_x"] = (
            round(row["events_per_s"] / pipelined["events_per_s"], 3)
            if pipelined["events_per_s"]
            else 0.0
        )
        note(f"n{n}/shards{shards}", row)
    return rows


DEFAULT_FRONTIER_RATES = (2000.0, 6000.0, 12000.0)
DEFAULT_FRONTIER_POLICIES = ("fixed", "adaptive-window", "shed-oldest")


def bench_policy_frontier(
    n: int,
    *,
    rates: Sequence[float] = DEFAULT_FRONTIER_RATES,
    policies: Sequence[str] = DEFAULT_FRONTIER_POLICIES,
    duration_s: float = DEFAULT_SOAK_DURATION,
    max_batch: int = DEFAULT_SOAK_BATCH,
    batch_window_ms: float = DEFAULT_SOAK_WINDOW_MS,
    queue_limit: int = 4096,
    join_fraction: float = 0.5,
    deadline_ms: float | None = None,
    retry: "object | None" = None,
    seed: int = 11,
    progress: bool = False,
) -> dict:
    """The capacity-planning sweep: offered load x admission policy.

    Each (policy, rate) point drives an *open-loop* Poisson fleet at
    ``rate_hz`` against a fresh, identically seeded n-node gateway --
    open loop because a closed loop self-throttles and can never
    overdrive the server, so it cannot show what a policy does when
    offered load exceeds heal capacity.  Rows are keyed
    ``n{n}/{policy}/r{rate}`` and carry latency (p50/p99), raw
    completion throughput, goodput, and the shed rate
    ``(backpressure + shed + deadline_timeouts) / offered`` -- the three
    axes of the frontier curve.  Every spawned request is awaited before
    the row is read: a point that hangs a client would hang the
    benchmark, so a recorded frontier is itself a receipt that no
    future was left unanswered."""
    import asyncio

    from repro.service import MembershipGateway, poisson_load

    results: dict[str, dict] = {}
    for policy in policies:
        for rate in rates:
            net = _build(n, seed)

            async def drive():
                gateway = MembershipGateway(
                    net,
                    max_batch=max_batch,
                    batch_window_ms=batch_window_ms,
                    queue_limit=queue_limit,
                    policy=policy,
                    deadline_ms=deadline_ms,
                    seed=seed,
                )
                await gateway.start()
                try:
                    stats = await poisson_load(
                        gateway,
                        rate_hz=rate,
                        duration_s=duration_s,
                        join_fraction=join_fraction,
                        seed=seed + 1,
                        retry=retry,
                    )
                finally:
                    await gateway.drain()
                return stats, gateway.metrics.snapshot(), gateway.policy.describe()

            stats, snap, policy_state = asyncio.run(drive())
            dropped = stats.backpressure + stats.shed + stats.deadline_timeouts
            row = {
                "policy": policy,
                "offered_rate_hz": float(rate),
                "duration_s": duration_s,
                "max_batch": max_batch,
                "batch_window_ms": batch_window_ms,
                "queue_limit": queue_limit,
                "deadline_ms": deadline_ms,
                "offered": stats.offered,
                "completed": stats.completed,
                "ok": stats.ok,
                "rejected": stats.rejected,
                "backpressure": stats.backpressure,
                "shed": stats.shed,
                "deadline_timeouts": stats.deadline_timeouts,
                "retries": stats.retries,
                "shed_rate": (
                    round(dropped / stats.offered, 4) if stats.offered else 0.0
                ),
                "events": snap["events"],
                "events_per_s": snap["events_per_s"],
                "goodput_per_s": snap["goodput_per_s"],
                "ack_p50_ms": snap["ack_p50_ms"],
                "ack_p90_ms": snap["ack_p90_ms"],
                "ack_p99_ms": snap["ack_p99_ms"],
                "ack_max_ms": snap["ack_max_ms"],
                "queue_depth_max": snap["queue_depth_max"],
                "heal_utilization": snap["heal_utilization"],
                "policy_state": policy_state,
                "final_n": net.size,
            }
            key = f"n{n}/{policy}/r{int(rate)}"
            results[key] = row
            if progress:
                print(
                    f"  {key}: p99={row['ack_p99_ms']}ms "
                    f"goodput={row['goodput_per_s']}/s "
                    f"shed_rate={row['shed_rate']}",
                    file=sys.stderr,
                )
    return results


def bench_snapshot_restore(
    n: int,
    *,
    churn_steps: int = 1000,
    seed: int = 11,
    repeats: int = 3,
) -> dict:
    """Restore-vs-replay (PR 6 acceptance): time rebuilding a network of
    size ~``n`` by replaying its history (bootstrap + ``churn_steps``
    insert/delete steps -- exactly how the state was produced) against
    restoring it from one on-disk snapshot.  Restore is O(state) while
    replay is O(history), so the reported ``restore_speedup_x`` grows
    with ``churn_steps``; the default 1000 is about one checkpoint
    interval of gateway operations (32 flushes x 32 ops).  Restore time
    is the median of ``repeats`` loads (the first load in a fresh
    process additionally pays the allocator's page-fault warmup, which
    replay pays during bootstrap); the one-off full invariant audit is
    timed separately as ``audit_s``."""
    import random as random_module
    import shutil
    import tempfile

    from repro.persist import load_snapshot, save_snapshot

    def replay() -> "DexNetwork":
        built = _build(n, seed)
        driver = random_module.Random(seed + 1)
        for _ in range(churn_steps):
            if driver.random() < 0.5:
                built.insert()
            else:
                built.delete(driver.choice(built.graph._nodes))
        return built

    t0 = time.perf_counter()
    net = replay()
    replay_s = time.perf_counter() - t0

    root = tempfile.mkdtemp(prefix="dex-snapshot-bench-")
    try:
        t0 = time.perf_counter()
        path = save_snapshot(net, root)
        save_s = time.perf_counter() - t0
        snapshot_bytes = sum(
            entry.stat().st_size for entry in path.iterdir()
        )
        restored = None
        load_times = []
        for _ in range(max(1, repeats)):
            # A network is cyclic (overlay <-> coordinator listeners), so
            # dropping the previous copy needs the collector; without it,
            # dead copies pile up and every load pays fresh page faults
            # instead of reusing arenas -- allocator noise, not restore
            # cost.
            restored = None
            gc.collect()
            t0 = time.perf_counter()
            restored = load_snapshot(path, verify=False)
            load_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        restored.check_invariants()
        restored.graph.verify_caches()
        audit_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(root, ignore_errors=True)
    first_load_s = load_times[0]
    load_times.sort()
    restore_s = load_times[len(load_times) // 2]
    return {
        "churn_steps": churn_steps,
        "final_n": net.size,
        "replay_s": round(replay_s, 6),
        "save_s": round(save_s, 6),
        "restore_s": round(restore_s, 6),
        "restore_first_s": round(first_load_s, 6),
        "audit_s": round(audit_s, 6),
        "snapshot_mb": round(snapshot_bytes / 2**20, 3),
        "restore_speedup_x": (
            round(replay_s / restore_s, 2) if restore_s > 0 else 0.0
        ),
    }


# ----------------------------------------------------------------------
# tracing overhead (PR 10)
# ----------------------------------------------------------------------
DEFAULT_TRACE_CHURN_ROUNDS = 12
DEFAULT_TRACE_SOAK_DURATION = 1.0
DEFAULT_TRACE_GUARD_ITERS = 200_000


def _guard_ns(iters: int = DEFAULT_TRACE_GUARD_ITERS) -> float:
    """Nanoseconds per disabled-path check: exactly the
    ``current().enabled`` attribute read every instrumented site pays
    when tracing is off.  The disabled-overhead number is synthetic --
    guard cost x span sites exercised -- because there is no
    un-instrumented build left to diff against, and that is the point:
    the guard *is* the entire disabled cost."""
    from repro.obs import trace as _trace

    assert not _trace.enabled()
    t0 = time.perf_counter()
    for _ in range(iters):
        if _trace.current().enabled:  # pragma: no cover - never taken
            raise RuntimeError("tracing unexpectedly enabled")
    return (time.perf_counter() - t0) / iters * 1e9


def _trace_churn_once(
    n: int, batch: int, rounds: int, seed: int, traced: bool
) -> tuple[float, int, int]:
    """One churn measurement: ``(per_healed_node_ms, healed, spans)``.
    ``traced=True`` installs a fresh ring recorder (no stream) for the
    timed window -- the default recording configuration."""
    from repro.obs import trace as _trace

    net = _build(n, seed, validate_batches=False)
    adversary = random.Random(seed + 1)
    run_batch_churn(net, batch, 1, adversary)  # warmup (caches, imports)
    recorder = _trace.SpanRecorder(capacity=1_000_000) if traced else None
    if recorder is not None:
        _trace.install(recorder)
    try:
        healed, engine = run_batch_churn(net, batch, rounds, adversary)
    finally:
        if recorder is not None:
            _trace.uninstall()
    spans = len(recorder.spans) if recorder is not None else 0
    return engine / max(healed, 1) * 1e3, healed, spans


def bench_trace_overhead(
    n: int,
    *,
    batch: int = DEFAULT_BATCH,
    rounds: int = DEFAULT_TRACE_CHURN_ROUNDS,
    soak_duration_s: float = DEFAULT_TRACE_SOAK_DURATION,
    clients: int = DEFAULT_SOAK_CLIENTS,
    seed: int = 11,
    repeats: int = 5,
) -> dict:
    """The obs acceptance receipt: tracing-off vs tracing-on timings of
    the two hot paths spans actually land on -- the batch-churn engine
    loop and the saturating gateway soak -- plus the synthetic
    disabled-path cost (``guard_ns`` x spans the enabled run created).
    Off/on churn runs interleave within each repeat so thermal/machine
    drift cancels; the reported overhead is best-of-``repeats`` (the
    receipt must not flake on noise).  The soak runs once per mode:
    its duration already averages over thousands of acks."""
    from repro.obs import trace as _trace

    assert not _trace.enabled(), "bench_trace_overhead needs tracing off"
    off_churn: list[float] = []
    on_churn: list[float] = []
    spans_per_step = 0.0
    for _ in range(max(1, repeats)):
        off_ms, _healed, _spans = _trace_churn_once(
            n, batch, rounds, seed, traced=False
        )
        on_ms, healed, spans = _trace_churn_once(
            n, batch, rounds, seed, traced=True
        )
        off_churn.append(off_ms)
        on_churn.append(on_ms)
        spans_per_step = spans / max(healed, 1)
    churn_off = min(off_churn)
    churn_on = min(on_churn)
    guard_ns = _guard_ns()
    guard_s = guard_ns * 1e-9

    soak_off = bench_service_soak(
        n, duration_s=soak_duration_s, clients=clients, seed=seed
    )
    recorder = _trace.SpanRecorder(capacity=1_000_000)
    _trace.install(recorder)
    try:
        soak_on = bench_service_soak(
            n, duration_s=soak_duration_s, clients=clients, seed=seed
        )
    finally:
        _trace.uninstall()
    soak_spans = len(recorder.spans)
    spans_per_event = soak_spans / max(soak_on["events"], 1)
    off_eps = soak_off["events_per_s"]
    on_eps = soak_on["events_per_s"]
    return {
        "batch": batch,
        "rounds": rounds,
        "repeats": repeats,
        "soak_duration_s": soak_duration_s,
        "clients": clients,
        "churn_off_per_step_ms": round(churn_off, 6),
        "churn_on_per_step_ms": round(churn_on, 6),
        "trace_enabled_churn_overhead_pct": (
            round((churn_on - churn_off) / churn_off * 100.0, 3)
            if churn_off
            else 0.0
        ),
        "trace_disabled_churn_overhead_pct": (
            round(
                spans_per_step * guard_s / (churn_off * 1e-3) * 100.0, 6
            )
            if churn_off
            else 0.0
        ),
        "soak_off_events_per_s": off_eps,
        "soak_on_events_per_s": on_eps,
        "trace_enabled_soak_overhead_pct": (
            round((off_eps - on_eps) / off_eps * 100.0, 3) if off_eps else 0.0
        ),
        "trace_disabled_soak_overhead_pct": round(
            spans_per_event * guard_s * off_eps * 100.0, 6
        ),
        "spans_per_step": round(spans_per_step, 4),
        "spans_per_event": round(spans_per_event, 4),
        "guard_ns": round(guard_ns, 2),
    }


# ----------------------------------------------------------------------
# suite
# ----------------------------------------------------------------------
def run_suite(
    sizes: Sequence[int] = DEFAULT_SIZES,
    churn_steps: int = DEFAULT_STEPS,
    seed: int = 11,
    spectral_repeats: int = 5,
    batch: int = DEFAULT_BATCH,
    progress: bool = False,
) -> dict:
    """Run every benchmark at every size; returns the per-size mapping."""
    suite: dict[str, dict[str, float]] = {}
    for n in sizes:
        boot = bench_bootstrap(n, seed)
        churn_s, net = bench_churn(n, churn_steps, seed)
        walk_us = bench_walks(net, tokens=50, length=4 * max(net.size, 2).bit_length(), seed=seed)
        spectral_ms = bench_spectral(net, spectral_repeats)
        row: dict[str, float] = {
            "bootstrap_s": round(boot, 6),
            "churn_total_s": round(churn_s, 6),
            "churn_per_step_ms": round(churn_s / max(churn_steps, 1) * 1e3, 6),
            "walk_us_per_hop": round(walk_us, 3),
            "spectral_ms_per_call": round(spectral_ms, 3),
        }
        row.update(bench_batch_vs_seq(n, batch=min(batch, max(1, n // 8)), seed=seed))
        row.update(bench_csr(n, seed=seed))
        row.update(bench_wave(n, tokens=min(DEFAULT_WAVE_TOKENS, max(64, 2 * n)), seed=seed))
        suite[f"n{n}"] = row
        if progress:
            print(f"  n={n}: {row}", file=sys.stderr)
    return suite


# ----------------------------------------------------------------------
# multiprocess scaling sweep (one worker per size x seed point)
# ----------------------------------------------------------------------
def _sweep_point(args: tuple[int, int, int, int]) -> tuple[str, dict]:
    """Worker body: one (size, seed) scaling point in its own process."""
    n, seed, batch, rounds = args
    t_start = time.perf_counter()
    t0 = time.perf_counter()
    net = _build(n, seed, validate_batches=False)
    boot = time.perf_counter() - t0
    adversary = random.Random(seed + 1)
    healed, churn = run_batch_churn(net, batch, rounds, adversary)
    metrics = {
        "n": n,
        "seed": seed,
        "batch": batch,
        "rounds": rounds,
        "bootstrap_s": round(boot, 3),
        "batch_churn_per_node_ms": round(churn / max(healed, 1) * 1e3, 6),
        "nodes_healed": healed,
        "wall_s": round(time.perf_counter() - t_start, 3),
    }
    return f"n{n}_s{seed}", metrics


def run_sweep(
    sizes: Sequence[int] = DEFAULT_SWEEP_SIZES,
    seeds: Sequence[int] = DEFAULT_SWEEP_SEEDS,
    batch: int = DEFAULT_BATCH,
    rounds: int = 4,
    workers: int | None = None,
    progress: bool = False,
) -> dict:
    """Scaling benchmark at large n: one worker process per size x seed
    point, so a 10^5-10^6 sweep fills the machine instead of a single
    core.  Returns ``{point_key: metrics}``."""
    points = [(n, seed, batch, rounds) for n in sizes for seed in seeds]
    max_workers = workers or min(len(points), os.cpu_count() or 1)
    results: dict[str, dict] = {}
    if max_workers <= 1 or len(points) == 1:
        for point in points:  # in-process: simpler traces, same numbers
            key, metrics = _sweep_point(point)
            results[key] = metrics
            if progress:
                print(f"  {key}: {metrics}", file=sys.stderr)
        return results
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for key, metrics in pool.map(_sweep_point, points):
            results[key] = metrics
            if progress:
                print(f"  {key}: {metrics}", file=sys.stderr)
    return results


# ----------------------------------------------------------------------
# report plumbing
# ----------------------------------------------------------------------
def _speedups(runs: dict) -> dict:
    before, after = (runs.get(label) for label in _SPEEDUP_PAIR)
    if not before or not after:
        return {}
    out: dict[str, dict[str, float]] = {}
    for key, b in before.items():
        a = after.get(key)
        if key == "meta" or not isinstance(b, dict) or not a:
            continue
        ratios: dict[str, float] = {}
        for metric, short in (
            ("churn_per_step_ms", "churn"),
            ("bootstrap_s", "bootstrap"),
            ("walk_us_per_hop", "walk"),
            ("spectral_ms_per_call", "spectral"),
            ("batch_churn_per_node_ms", "batch_churn"),
            ("csr_patch_ms", "csr_patch"),
            ("wave_hop_us", "wave"),
        ):
            if a.get(metric) and b.get(metric):
                ratios[short] = round(b[metric] / a[metric], 2)
        out[key] = ratios
    return out


def _meta() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def load_report(path: pathlib.Path) -> dict:
    if path.exists():
        text = path.read_text().strip()
        if text:
            try:
                report = json.loads(text)
            except json.JSONDecodeError as exc:
                # Never silently clobber a recorded baseline.
                raise SystemExit(
                    f"{path} exists but is not valid JSON ({exc}); "
                    "move it aside or fix it before recording a new run"
                ) from None
            if report.get("schema") in _COMPATIBLE_SCHEMAS:
                # dex-perf/1 upgrades in place; recorded runs are kept.
                report["schema"] = SCHEMA
                return report
    return {"schema": SCHEMA, "runs": {}}


def write_report(
    path: pathlib.Path,
    label: str,
    suite: dict,
    sizes: Sequence[int],
    churn_steps: int,
) -> dict:
    """Merge one labelled run into the report at ``path``."""
    report = load_report(path)
    suite = dict(suite)
    suite["meta"] = _meta()
    report["churn_steps"] = churn_steps
    report["sizes"] = list(sizes)
    report.setdefault("runs", {})[label] = suite
    report["speedup"] = _speedups(report["runs"])
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def write_sweep(
    path: pathlib.Path, label: str, results: dict, workers: int
) -> dict:
    """Merge one labelled sweep into the report at ``path``."""
    report = load_report(path)
    entry = dict(results)
    entry["meta"] = {**_meta(), "workers": workers}
    report.setdefault("sweeps", {})[label] = entry
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def write_service(
    path: pathlib.Path, label: str, results: dict, extra_meta: dict | None = None
) -> dict:
    """Merge one labelled gateway-soak run (``{"n4096": row, ...}``)
    into the report at ``path`` under the ``service`` key.  Rows merge
    *into* an existing label entry (same row keys overwrite), so one
    label can accumulate soak, frontier and shard-sweep rows across
    invocations instead of the last run clobbering the others."""
    report = load_report(path)
    entry = report.setdefault("service", {}).setdefault(label, {})
    entry.update(results)
    entry["meta"] = {**_meta(), **(extra_meta or {})}
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def write_tracing(
    path: pathlib.Path, label: str, results: dict, extra_meta: dict | None = None
) -> dict:
    """Merge one labelled tracing-overhead run (``{"n256": row, ...}``)
    into the report at ``path`` under the ``tracing`` key (same
    merge-into-label behaviour as :func:`write_service`)."""
    report = load_report(path)
    entry = report.setdefault("tracing", {}).setdefault(label, {})
    entry.update(results)
    entry["meta"] = {**_meta(), **(extra_meta or {})}
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def write_campaigns(
    path: pathlib.Path,
    label: str,
    results: dict,
    extra_meta: dict | None = None,
) -> dict:
    """Merge one labelled scenario-campaign matrix (produced by
    :mod:`repro.harness.scenarios`) into the report at ``path``."""
    report = load_report(path)
    entry = dict(results)
    entry["meta"] = {**_meta(), **(extra_meta or {})}
    report.setdefault("campaigns", {})[label] = entry
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after", help="run label (e.g. before/after/pr2)")
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH,
                        help="batch size for the batch-churn benchmarks")
    parser.add_argument("--sweep", action="store_true",
                        help="run the multiprocess large-n scaling sweep instead of the suite")
    parser.add_argument("--sweep-sizes", type=int, nargs="+",
                        default=list(DEFAULT_SWEEP_SIZES))
    parser.add_argument("--sweep-seeds", type=int, nargs="+",
                        default=list(DEFAULT_SWEEP_SEEDS))
    parser.add_argument("--sweep-rounds", type=int, default=4,
                        help="insert+delete batch rounds per sweep point")
    parser.add_argument("--workers", type=int, default=None,
                        help="sweep worker processes (default: one per point, capped at CPUs)")
    parser.add_argument("--soak", action="store_true",
                        help="run the membership-gateway soak benchmark instead of the suite")
    parser.add_argument("--soak-sizes", type=int, nargs="+", default=[4096])
    parser.add_argument("--soak-duration", type=float, default=DEFAULT_SOAK_DURATION,
                        help="seconds of saturating load per gateway run")
    parser.add_argument("--soak-clients", type=int, default=DEFAULT_SOAK_CLIENTS,
                        help="closed-loop client coroutines")
    parser.add_argument("--soak-max-batch", type=int, default=DEFAULT_SOAK_BATCH)
    parser.add_argument("--soak-window-ms", type=float, default=DEFAULT_SOAK_WINDOW_MS)
    parser.add_argument("--soak-pipeline", action="store_true",
                        help="run the soak gateway in pipelined mode")
    parser.add_argument("--soak-no-baseline", action="store_true",
                        help="skip the per-request (max_batch=1) comparison run")
    parser.add_argument("--soak-policy", default="fixed",
                        help="admission policy for the soak gateway")
    parser.add_argument("--soak-warmup", type=float, default=0.0,
                        help="seconds of unmetered load before the measured "
                             "soak/shard-sweep window (metrics reset after)")
    parser.add_argument("--frontier", action="store_true",
                        help="run the offered-load x policy frontier sweep "
                        "instead of the suite")
    parser.add_argument("--frontier-sizes", type=int, nargs="+", default=[4096])
    parser.add_argument("--frontier-rates", type=float, nargs="+",
                        default=list(DEFAULT_FRONTIER_RATES),
                        help="open-loop offered rates (requests/s)")
    parser.add_argument("--frontier-policies", nargs="+",
                        default=list(DEFAULT_FRONTIER_POLICIES),
                        help="admission policies to sweep")
    parser.add_argument("--frontier-duration", type=float,
                        default=DEFAULT_SOAK_DURATION,
                        help="seconds of open-loop load per point")
    parser.add_argument("--frontier-queue-limit", type=int, default=4096)
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline for frontier/soak gateways")
    parser.add_argument("--shard-sweep", action="store_true",
                        help="soak serial vs pipelined vs N-shard cluster "
                             "at each size (rows under the service key)")
    parser.add_argument("--shard-sizes", type=int, nargs="+", default=[4096],
                        help="total bootstrap nodes per shard-sweep point")
    parser.add_argument("--shard-counts", type=int, nargs="+",
                        default=list(DEFAULT_SHARD_COUNTS),
                        help="shard counts to sweep")
    parser.add_argument("--snapshot", action="store_true",
                        help="run the snapshot restore-vs-replay benchmark "
                        "instead of the suite")
    parser.add_argument("--snapshot-sizes", type=int, nargs="+", default=[100_000])
    parser.add_argument("--snapshot-steps", type=int, default=1000,
                        help="replayed churn steps (the history length)")
    parser.add_argument("--snapshot-repeats", type=int, default=3,
                        help="timed restores per size (median reported)")
    parser.add_argument("--trace-overhead", action="store_true",
                        help="measure tracing-off vs tracing-on overhead "
                        "on the churn + soak hot paths (rows under the "
                        "tracing key; gated by perf_gate --trace-overhead)")
    parser.add_argument("--trace-sizes", type=int, nargs="+", default=[256],
                        help="network sizes for the tracing-overhead rows")
    parser.add_argument("--trace-duration", type=float,
                        default=DEFAULT_TRACE_SOAK_DURATION,
                        help="seconds of soak per tracing mode")
    parser.add_argument("--trace-repeats", type=int, default=5,
                        help="interleaved off/on churn repeats (best-of)")
    parser.add_argument("--out", type=pathlib.Path, default=pathlib.Path("BENCH_perf.json"))
    args = parser.parse_args(argv)

    load_report(args.out)  # refuse a corrupt report before the long run

    if args.snapshot:
        print(
            f"snapshot restore-vs-replay: sizes={args.snapshot_sizes} "
            f"history={args.snapshot_steps} steps label={args.label!r}"
        )
        results: dict[str, dict] = {}
        for n in args.snapshot_sizes:
            row = bench_snapshot_restore(
                n,
                churn_steps=args.snapshot_steps,
                seed=args.seed,
                repeats=args.snapshot_repeats,
            )
            results[f"n{n}"] = row
            print(
                f"  n={n}: replay {row['replay_s']}s vs restore "
                f"{row['restore_s']}s -> {row['restore_speedup_x']}x "
                f"(save {row['save_s']}s, audit {row['audit_s']}s, "
                f"{row['snapshot_mb']} MB)",
                file=sys.stderr,
            )
        write_service(
            args.out, args.label, results,
            extra_meta={"benchmark": "snapshot_restore"},
        )
        print(f"wrote {args.out}")
        return 0

    if args.trace_overhead:
        print(
            f"tracing overhead: sizes={args.trace_sizes} "
            f"soak={args.trace_duration}s repeats={args.trace_repeats} "
            f"label={args.label!r}"
        )
        results: dict[str, dict] = {}
        for n in args.trace_sizes:
            row = bench_trace_overhead(
                n,
                soak_duration_s=args.trace_duration,
                clients=args.soak_clients,
                seed=args.seed,
                repeats=args.trace_repeats,
            )
            results[f"n{n}"] = row
            print(
                f"  n={n}: churn {row['churn_off_per_step_ms']}ms -> "
                f"{row['churn_on_per_step_ms']}ms "
                f"({row['trace_enabled_churn_overhead_pct']}% on, "
                f"{row['trace_disabled_churn_overhead_pct']}% off); "
                f"soak {row['soak_off_events_per_s']}/s -> "
                f"{row['soak_on_events_per_s']}/s "
                f"({row['trace_enabled_soak_overhead_pct']}% on, "
                f"{row['trace_disabled_soak_overhead_pct']}% off)",
                file=sys.stderr,
            )
        write_tracing(
            args.out, args.label, results,
            extra_meta={"benchmark": "trace_overhead"},
        )
        print(f"wrote {args.out}")
        return 0

    if args.frontier:
        print(
            f"policy frontier: sizes={args.frontier_sizes} "
            f"rates={args.frontier_rates} policies={args.frontier_policies} "
            f"duration={args.frontier_duration}s label={args.label!r}"
        )
        results: dict[str, dict] = {}
        for n in args.frontier_sizes:
            results.update(
                bench_policy_frontier(
                    n,
                    rates=args.frontier_rates,
                    policies=args.frontier_policies,
                    duration_s=args.frontier_duration,
                    max_batch=args.soak_max_batch,
                    batch_window_ms=args.soak_window_ms,
                    queue_limit=args.frontier_queue_limit,
                    deadline_ms=args.deadline_ms,
                    seed=args.seed,
                    progress=True,
                )
            )
        write_service(
            args.out, args.label, results,
            extra_meta={"benchmark": "policy_frontier"},
        )
        print(f"wrote {args.out}")
        return 0

    if args.shard_sweep:
        print(
            f"shard sweep: sizes={args.shard_sizes} "
            f"shards={args.shard_counts} duration={args.soak_duration}s "
            f"clients={args.soak_clients} label={args.label!r}"
        )
        results: dict[str, dict] = {}
        for n in args.shard_sizes:
            results.update(
                bench_shard_sweep(
                    n,
                    args.shard_counts,
                    duration_s=args.soak_duration,
                    max_batch=args.soak_max_batch,
                    batch_window_ms=args.soak_window_ms,
                    clients=args.soak_clients,
                    seed=args.seed,
                    warmup_s=args.soak_warmup,
                    progress=True,
                )
            )
        write_service(
            args.out, args.label, results,
            extra_meta={"benchmark": "shard_sweep"},
        )
        print(f"wrote {args.out}")
        return 0

    if args.soak:
        print(
            f"service soak: sizes={args.soak_sizes} duration={args.soak_duration}s "
            f"clients={args.soak_clients} max_batch={args.soak_max_batch} "
            f"window={args.soak_window_ms}ms policy={args.soak_policy!r} "
            f"label={args.label!r}"
        )
        results: dict[str, dict] = {}
        for n in args.soak_sizes:
            row = bench_service(
                n,
                duration_s=args.soak_duration,
                max_batch=args.soak_max_batch,
                batch_window_ms=args.soak_window_ms,
                clients=args.soak_clients,
                seed=args.seed,
                compare_per_request=not args.soak_no_baseline,
                policy=args.soak_policy,
                deadline_ms=args.deadline_ms,
                pipeline=args.soak_pipeline,
                warmup_s=args.soak_warmup,
            )
            results[f"n{n}"] = row
            print(f"  n={n}: {row}", file=sys.stderr)
        write_service(args.out, args.label, results)
        print(f"wrote {args.out}")
        return 0

    if args.sweep:
        points = len(args.sweep_sizes) * len(args.sweep_seeds)
        workers = args.workers or min(points, os.cpu_count() or 1)
        print(
            f"perf sweep: sizes={args.sweep_sizes} seeds={args.sweep_seeds} "
            f"batch={args.batch} rounds={args.sweep_rounds} workers={workers} "
            f"label={args.label!r}"
        )
        results = run_sweep(
            args.sweep_sizes,
            args.sweep_seeds,
            batch=args.batch,
            rounds=args.sweep_rounds,
            workers=workers,
            progress=True,
        )
        write_sweep(args.out, args.label, results, workers)
        print(f"wrote {args.out}")
        return 0

    print(f"perf suite: sizes={args.sizes} steps={args.steps} label={args.label!r}")
    suite = run_suite(args.sizes, args.steps, args.seed, batch=args.batch, progress=True)
    report = write_report(args.out, args.label, suite, args.sizes, args.steps)
    if report.get("speedup"):
        print(f"speedup (before/after): {json.dumps(report['speedup'])}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
