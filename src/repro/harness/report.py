"""Plain-text table formatting for benchmark output (the benches print
rows shaped like the paper's Table 1 and per-claim series)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        return format_table(self)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(table: Table) -> str:
    cells = [[_fmt(c) for c in row] for row in table.rows]
    widths = [len(c) for c in table.columns]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(table.columns, widths))
    lines = [f"== {table.title} ==", header, sep]
    for row in cells:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
