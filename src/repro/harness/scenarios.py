"""Scenario campaign registry and CLI (the paper-shaped workload layer).

A *scenario* is a named adversarial workload -- flash crowd, mass
leave, degree/coordinator/spare-depletion attacks, oscillating churn,
scripted trace replay -- buildable at any size and seed, and runnable
against DEX **and** every baseline overlay through one driver:
:func:`repro.harness.runner.run_campaign`, which heals whole adversary
batches through the batch-parallel engine where the overlay supports it
(Section 5 / Corollary 2) and falls back to per-step healing where it
does not.  This is the workload generator behind the paper's Table 1
comparison: adaptive adversaries of Section 2 vs. DEX and the related
overlays, with spectral-gap / degree / message-cost time series
recorded per campaign.

Results merge into ``BENCH_perf.json`` under the ``campaigns`` key
(schema ``dex-perf/4``), one row per scenario x overlay x size x seed
point; ``--workers`` fans the matrix out one process per point, the
same multiprocess shape as ``repro.harness.perf --sweep``.

CLI::

    # one point, human-readable row + JSON merge
    PYTHONPATH=src python -m repro.harness.scenarios \\
        --scenarios flash-crowd --overlays dex --sizes 4096 --seeds 11 \\
        --label campaigns --out BENCH_perf.json

    # the full matrix, fanned out across processes
    PYTHONPATH=src python -m repro.harness.scenarios \\
        --scenarios all --overlays dex law-siu flip-chain \\
        --sizes 1024 4096 --seeds 11 13 --workers 8

    # the PR's acceptance number: batch-healed campaign vs. the
    # sequential runner on the same workload (engine time per event)
    PYTHONPATH=src python -m repro.harness.scenarios \\
        --scenarios flash-crowd --overlays dex --sizes 4096 \\
        --compare-sequential --no-validate-batches

    python -m repro.harness.scenarios --list
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.adversary import (
    CoordinatorAttack,
    DegreeAttack,
    FlashCrowd,
    LowLoadAttack,
    MassLeave,
    OscillatingChurn,
    RandomChurn,
    SpareDepleter,
    TraceAdversary,
)
from repro.harness import perf
from repro.harness.experiments import OVERLAY_FACTORIES
from repro.harness.runner import CampaignResult, run_campaign, run_churn


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One named adversarial workload, buildable at any (n0, seed)."""

    key: str
    summary: str
    #: (n0, seed) -> adversary (batch-native or single-action; the
    #: campaign driver adapts either)
    build: Callable[[int, int], object]

    def default_events(self, n0: int) -> int:
        """Campaign length when the caller does not pin one: half the
        initial population, floored so tiny smoke networks still churn."""
        return max(128, n0 // 2)


def _replay_script(n0: int) -> list[str]:
    """The scripted trace behind ``trace-replay``: four waves of
    join-burst / partial-exodus blocks (net size change zero), sized to
    the network so replay exercises the batch path at every scale.  The
    script is finite on purpose -- campaigns outliving it exercise the
    clean :class:`~repro.errors.TraceExhausted` ending."""
    block = max(8, n0 // 32)
    wave = (
        ["insert"] * block
        + ["delete"] * (block // 2)
        + ["insert"] * (block // 2)
        + ["delete"] * block
    )
    return wave * 4


SCENARIOS: dict[str, Scenario] = {
    scenario.key: scenario
    for scenario in (
        Scenario(
            "flash-crowd",
            "popularity spike: a surge of joins (n0/4), then mixed churn",
            lambda n0, seed: FlashCrowd(surge=max(32, n0 // 4), seed=seed),
        ),
        Scenario(
            "mass-leave",
            "correlated departure: half the population leaves, then steady churn",
            lambda n0, seed: MassLeave(fraction=0.5, seed=seed),
        ),
        Scenario(
            "degree-attack",
            "adaptive: always delete a maximum-degree node",
            lambda n0, seed: DegreeAttack(seed=seed),
        ),
        Scenario(
            "coordinator-attack",
            "adaptive: always delete the host of virtual vertex 0",
            lambda n0, seed: CoordinatorAttack(seed=seed),
        ),
        Scenario(
            "spare-depletion",
            "adaptive: starve the Spare set to force early type-2",
            lambda n0, seed: SpareDepleter(seed=seed),
        ),
        Scenario(
            "low-load-attack",
            "adaptive: delete minimum-load nodes, racing the 4*zeta bound",
            lambda n0, seed: LowLoadAttack(seed=seed),
        ),
        Scenario(
            "oscillating",
            "inflate/deflate stress: alternating join and leave bursts",
            lambda n0, seed: OscillatingChurn(burst=max(16, n0 // 16), seed=seed),
        ),
        Scenario(
            "random-churn",
            "oblivious 50/50 join-leave churn (the related-work baseline)",
            lambda n0, seed: RandomChurn(0.5, seed=seed),
        ),
        Scenario(
            "trace-replay",
            "scripted join-burst/partial-exodus waves; finite trace",
            lambda n0, seed: TraceAdversary(_replay_script(n0), seed=seed),
        ),
    )
}


# ----------------------------------------------------------------------
# one campaign point
# ----------------------------------------------------------------------
def _build_overlay(overlay_key: str, n0: int, seed: int, overlay_kwargs: dict):
    factory = OVERLAY_FACTORIES[overlay_key]
    kwargs = overlay_kwargs if overlay_key == "dex" else {}
    return factory(n0, seed=seed, **kwargs)


def run_scenario(
    scenario_key: str,
    overlay_key: str,
    n0: int,
    seed: int,
    events: int | None = None,
    max_batch: int = 64,
    sample_every: int | None = None,
    compare_sequential: bool = False,
    overlay_kwargs: dict | None = None,
    series: bool = False,
) -> dict:
    """Run one scenario campaign point and return its metrics row.
    ``series=True`` additionally persists the full per-sample time
    series (spectral gap, max degree, live size and cumulative messages
    at every sample boundary), so ``benchmarks/`` can regenerate
    Figure-style decay plots from campaign output alone."""
    scenario = SCENARIOS[scenario_key]
    events = events or scenario.default_events(n0)
    sample_every = sample_every or max(64, events // 8)
    overlay_kwargs = overlay_kwargs or {}

    overlay = _build_overlay(overlay_key, n0, seed, overlay_kwargs)
    adversary = scenario.build(n0, seed)
    t0 = time.perf_counter()
    result = run_campaign(
        overlay,
        adversary,
        events,
        max_batch=max_batch,
        sample_every=sample_every,
        name=f"{scenario_key}/{overlay_key}",
    )
    wall = time.perf_counter() - t0
    row = _metrics_row(result, scenario_key, overlay_key, n0, seed, wall)
    row["final_n"] = overlay.size
    if series:
        row["series"] = _series_block(result)

    if compare_sequential:
        # Fresh overlay + fresh adversary, identical seed and event
        # count, healed one step at a time -- the engine-time ratio is
        # the campaign engine's receipt.
        seq_overlay = _build_overlay(overlay_key, n0, seed, overlay_kwargs)
        seq_adversary = scenario.build(n0, seed)
        seq = run_churn(
            seq_overlay,
            seq_adversary,
            result.steps,
            sample_every=sample_every,
            name=f"{scenario_key}/{overlay_key}/seq",
        )
        seq_ms = seq.heal_per_event_ms()
        row["seq_heal_per_event_ms"] = round(seq_ms, 6)
        row["seq_min_gap"] = round(seq.min_gap, 6)
        row["seq_max_degree"] = seq.max_degree_seen
        batch_ms = result.heal_per_event_ms()
        row["campaign_speedup_x"] = round(seq_ms / batch_ms, 2) if batch_ms else 0.0
    return row


def _metrics_row(
    result: CampaignResult,
    scenario_key: str,
    overlay_key: str,
    n0: int,
    seed: int,
    wall: float,
) -> dict:
    return {
        "scenario": scenario_key,
        "overlay": overlay_key,
        "n0": n0,
        "seed": seed,
        "events": result.steps,
        "batches": result.batches,
        "batched_events": result.batched_events,
        "fallback_batches": result.fallback_batches,
        "fallbacks": result.fallbacks,
        "skipped": result.skipped_actions,
        "heal_per_event_ms": round(result.heal_per_event_ms(), 6),
        "min_gap": round(result.min_gap, 6),
        "final_gap": round(result.final_gap(), 6),
        "max_degree": result.max_degree_seen,
        "messages_total": result.messages_total(),
        "wall_s": round(wall, 3),
    }


def _series_block(result: CampaignResult) -> dict:
    """The full sampled time series, JSON-shaped: one ``[boundary,
    value]`` pair per sample.  Gap values are rounded to keep campaign
    reports diff-able; degree/size/messages are exact integers."""
    return {
        "gap": [[step, round(gap, 6)] for step, gap in result.gap_samples],
        "degree": [list(pair) for pair in result.degree_samples],
        "size": [list(pair) for pair in result.size_samples],
        "messages": [list(pair) for pair in result.message_samples],
    }


def point_key(scenario: str, overlay: str, n0: int, seed: int) -> str:
    return f"{scenario}/{overlay}/n{n0}_s{seed}"


# ----------------------------------------------------------------------
# the matrix (optionally multiprocess, one worker per point)
# ----------------------------------------------------------------------
def _matrix_point(args: tuple) -> tuple[str, dict]:
    (scenario, overlay, n0, seed, events, max_batch, compare, kwargs, series) = args
    row = run_scenario(
        scenario,
        overlay,
        n0,
        seed,
        events=events,
        max_batch=max_batch,
        compare_sequential=compare,
        overlay_kwargs=kwargs,
        series=series,
    )
    return point_key(scenario, overlay, n0, seed), row


def run_matrix(
    scenarios: Sequence[str],
    overlays: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int],
    events: int | None = None,
    max_batch: int = 64,
    compare_sequential: bool = False,
    overlay_kwargs: dict | None = None,
    workers: int | None = None,
    progress: bool = False,
    series: bool = False,
) -> dict[str, dict]:
    """Every scenario x overlay x size x seed point, fanned out one
    worker process per point (the ``perf --sweep`` shape); ``workers=1``
    stays in-process for simpler traces and identical numbers."""
    points = [
        (sc, ov, n0, seed, events, max_batch, compare_sequential,
         overlay_kwargs or {}, series)
        for sc in scenarios
        for ov in overlays
        for n0 in sizes
        for seed in seeds
    ]
    max_workers = workers or min(len(points), os.cpu_count() or 1)
    results: dict[str, dict] = {}
    def _progress_row(row: dict) -> dict:
        return {k: v for k, v in row.items() if k != "series"}

    if max_workers <= 1 or len(points) == 1:
        for point in points:
            key, row = _matrix_point(point)
            results[key] = row
            if progress:
                print(f"  {key}: {_progress_row(row)}", file=sys.stderr)
        return results
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for key, row in pool.map(_matrix_point, points):
            results[key] = row
            if progress:
                print(f"  {key}: {_progress_row(row)}", file=sys.stderr)
    return results


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.scenarios",
        description="Run scenario campaigns (batch-healed adversarial "
        "workloads) against DEX and the baseline overlays.",
    )
    parser.add_argument("--scenarios", nargs="+", default=["flash-crowd"],
                        help=f"scenario keys or 'all' ({', '.join(sorted(SCENARIOS))})")
    parser.add_argument("--overlays", nargs="+", default=["dex"],
                        help=f"overlay keys or 'all' ({', '.join(sorted(OVERLAY_FACTORIES))})")
    parser.add_argument("--sizes", type=int, nargs="+", default=[1024])
    parser.add_argument("--seeds", type=int, nargs="+", default=[11])
    parser.add_argument("--events", type=int, default=None,
                        help="churn events per campaign (default: scenario-sized)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per point, capped at CPUs)")
    parser.add_argument("--compare-sequential", action="store_true",
                        help="also run the same workload through the sequential "
                        "runner and record campaign_speedup_x")
    parser.add_argument("--series", action="store_true",
                        help="persist the full per-sample time series "
                        "(gap/degree/size/messages per boundary) in each "
                        "campaign row, for Figure-style decay plots")
    parser.add_argument("--no-validate-batches", action="store_true",
                        help="run DEX with validate_batches=False (engine-vs-engine "
                        "comparison; single-node steps do no batch validation)")
    parser.add_argument("--type2-mode", choices=["staggered", "simplified"],
                        default=None,
                        help="override DEX's type-2 mode (Corollary 2's batch "
                        "bounds assume the simplified procedures)")
    parser.add_argument("--label", default="campaigns",
                        help="label for the BENCH_perf.json campaigns entry")
    parser.add_argument("--out", type=Path, default=None,
                        help="merge results into this BENCH_perf.json (omit to skip)")
    parser.add_argument("--wall-budget", type=float, default=None,
                        help="fail if the whole matrix exceeds this many seconds "
                        "(the CI smoke guard)")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and overlays")
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(key) for key in SCENARIOS)
        for key in sorted(SCENARIOS):
            print(f"{key:<{width}}  {SCENARIOS[key].summary}")
        print("overlays: " + ", ".join(sorted(OVERLAY_FACTORIES)))
        return 0

    scenarios = sorted(SCENARIOS) if args.scenarios == ["all"] else args.scenarios
    overlays = sorted(OVERLAY_FACTORIES) if args.overlays == ["all"] else args.overlays
    for key in scenarios:
        if key not in SCENARIOS:
            parser.error(f"unknown scenario {key!r} (see --list)")
    for key in overlays:
        if key not in OVERLAY_FACTORIES:
            parser.error(f"unknown overlay {key!r} (see --list)")
    overlay_kwargs: dict = {}
    if args.no_validate_batches:
        overlay_kwargs["validate_batches"] = False
    if args.type2_mode is not None:
        overlay_kwargs["type2_mode"] = args.type2_mode

    points = len(scenarios) * len(overlays) * len(args.sizes) * len(args.seeds)
    workers = args.workers or min(points, os.cpu_count() or 1)
    print(
        f"campaign matrix: scenarios={scenarios} overlays={overlays} "
        f"sizes={args.sizes} seeds={args.seeds} max_batch={args.max_batch} "
        f"workers={workers} label={args.label!r}"
    )
    t0 = time.perf_counter()
    results = run_matrix(
        scenarios,
        overlays,
        args.sizes,
        args.seeds,
        events=args.events,
        max_batch=args.max_batch,
        compare_sequential=args.compare_sequential,
        overlay_kwargs=overlay_kwargs,
        workers=workers,
        progress=True,
        series=args.series,
    )
    wall = time.perf_counter() - t0

    for key in sorted(results):
        row = results[key]
        speedup = (
            f"  speedup={row['campaign_speedup_x']}x"
            if "campaign_speedup_x" in row
            else ""
        )
        print(
            f"{key}: events={row['events']} batches={row['batches']} "
            f"heal={row['heal_per_event_ms']}ms/event min_gap={row['min_gap']} "
            f"max_deg={row['max_degree']} msgs={row['messages_total']}"
            f"{speedup}"
        )
    print(f"matrix wall: {wall:.1f}s ({points} points, {workers} workers)")

    if args.out is not None:
        perf.write_campaigns(
            args.out, args.label, results, extra_meta={"workers": workers}
        )
        print(f"wrote {args.out}")
    if args.wall_budget is not None and wall > args.wall_budget:
        print(
            f"FAIL: matrix took {wall:.1f}s, over the {args.wall_budget:.0f}s "
            "wall budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
