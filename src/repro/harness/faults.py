"""Fault-injection harness: kill the serving tier mid-soak and prove it
comes back.

The unit under test is the whole crash-recovery story of
:mod:`repro.persist`: a **worker process** runs a live
:class:`~repro.service.gateway.MembershipGateway` under closed-loop
churn with periodic checkpointing, the harness SIGKILLs it mid-load
(and, per the :class:`FaultPlan`, additionally corrupts what the crash
left on disk), restores from the newest loadable checkpoint, audits the
full invariant oracle, verifies the ack journal against the restored
state, and finally *resumes* the soak on the restored network.

The honesty contract is the **ack journal**, a write-ahead log of the
checkpoint stream.  The worker records every state-changing ack in
memory tagged with the step it was healed at, and flushes the backlog
-- write + fsync -- from the gateway's ``on_before_checkpoint`` hook,
*before* the covering snapshot is written.  The journal is therefore
always durable strictly ahead of the checkpoints: when a restore lands
on step ``R``, every op with ``step <= R`` is provably in the journal
and must be reflected -- journaled joins present, journaled leaves
absent (last op per node wins).  The ordering matters: flushing *after*
the checkpoint publishes (the obvious implementation) has a real race,
where a kill between the snapshot rename and the journal flush leaves a
durable checkpoint whose last interval of ops is unjournaled, and a
node whose leave fell in that window looks like state contradicting the
log.  Journal entries *past* the restored step -- their covering
checkpoint never published, or was corrupted -- are the *bounded
in-flight loss*: at most ``checkpoint_every * max_batch`` acks ride
between two checkpoints, so a clean kill can lose at most one interval
and one corrupted checkpoint at most one more -- and the harness
asserts exactly that bound.  No silent drops: every request was either
answered and journaled, answered inside the final (bounded) interval,
or never acknowledged at all.

The plan can also inject an **overload fault** (PR 7): at
``overload_at_fraction`` of the soak a second closed-loop fleet of
``overload_clients`` piles on for the remainder, pushing offered load
past heal capacity -- optionally concurrent with the SIGKILL, or with
``kill=False`` for the saturation-without-crash scenario, whose clean
drain (plus the worker's final metrics snapshot in
``worker_final.json``) is the receipt that no client hung under
overload.

Run directly for the CI crash-recovery smoke::

    PYTHONPATH=src python -m repro.harness.faults \
        --n0 256 --duration 4 --corrupt corrupt-array --wall-budget 240

    # overload spike mid-soak under shed-oldest, no kill:
    PYTHONPATH=src python -m repro.harness.faults --no-kill \
        --n0 256 --duration 4 --overload-at 0.4 --overload-clients 512 \
        --policy shed-oldest --wall-budget 240
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import multiprocessing
import os
import random
import signal
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError, SnapshotError
from repro.persist.snapshot import (
    MANIFEST_NAME,
    list_checkpoints,
    restore_latest,
)

JOURNAL_NAME = "journal.jsonl"
WORKER_FINAL_NAME = "worker_final.json"

#: what the plan may do to the newest checkpoint after the kill
CORRUPTIONS = ("none", "corrupt-array", "truncate-manifest", "delete-manifest")


@dataclass(frozen=True)
class FaultPlan:
    """One crash scenario: when to kill, what additional damage the
    'disk' takes, and an optional mid-soak overload spike."""

    #: SIGKILL the worker at this fraction of the soak duration (once at
    #: least one checkpoint exists -- killing before any durability
    #: exists would test nothing)
    kill_at_fraction: float = 0.5
    #: post-crash damage to the *newest* checkpoint (see ``CORRUPTIONS``)
    corruption: str = "none"
    #: whether to kill at all; ``False`` runs the soak to a clean drain
    #: (the overload-only scenario: saturation without a crash)
    kill: bool = True
    #: at this fraction of the duration, a second closed-loop fleet of
    #: ``overload_clients`` piles on for the remainder -- the
    #: offered-load spike.  ``None`` disables the spike.
    overload_at_fraction: float | None = None
    #: size of the spike fleet
    overload_clients: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.kill_at_fraction < 1.0:
            raise ValueError(
                f"kill_at_fraction must be in (0, 1), got {self.kill_at_fraction}"
            )
        if self.corruption not in CORRUPTIONS:
            raise ValueError(
                f"corruption must be one of {CORRUPTIONS}, got {self.corruption!r}"
            )
        if self.overload_at_fraction is not None and not (
            0.0 < self.overload_at_fraction < 1.0
        ):
            raise ValueError(
                "overload_at_fraction must be in (0, 1), got "
                f"{self.overload_at_fraction}"
            )
        if self.overload_clients < 1:
            raise ValueError(
                f"overload_clients must be >= 1, got {self.overload_clients}"
            )


@dataclass
class RecoveryReport:
    """Everything the recovery proved (or failed to)."""

    plan: dict
    killed: bool = False
    checkpoints_on_disk: int = 0
    corrupted: str | None = None
    restored_step: int = -1
    restored_path: str = ""
    skipped_corrupt: int = 0
    invariants_ok: bool = False
    journal_total: int = 0
    journal_checked_nodes: int = 0
    journal_lost: int = 0
    journal_lost_bound: int = 0
    journal_mismatches: list = field(default_factory=list)
    resumed_events: int = 0
    resumed_ok_events: int = 0
    final_step: int = -1
    resumed_invariants_ok: bool = False
    #: the worker's own final metrics snapshot + drain summary, present
    #: only when the worker drained cleanly (``kill=False`` plans) --
    #: the overload scenario's receipt that every future was answered
    overload: dict | None = None
    wall_s: float = 0.0
    error: str | None = None

    @property
    def passed(self) -> bool:
        kill_expected = self.plan.get("kill", True)
        return (
            (self.killed or not kill_expected)
            and self.error is None
            and self.invariants_ok
            and not self.journal_mismatches
            and self.journal_lost <= self.journal_lost_bound
            and self.resumed_invariants_ok
            and self.resumed_ok_events > 0
        )


# ----------------------------------------------------------------------
# the worker process (the thing that gets killed)
# ----------------------------------------------------------------------
def _soak_worker(cfg: dict) -> None:
    """Child-process entry: bootstrap a network, serve closed-loop churn
    with periodic checkpoints, journal every state-changing ack under
    its covering checkpoint.  The parent SIGKILLs this process; nothing
    here cleans up, by design."""
    from repro.core.config import DexConfig
    from repro.core.dex import DexNetwork
    from repro.service import MembershipGateway

    root = Path(cfg["root"])
    net = DexNetwork.bootstrap(
        cfg["n0"],
        DexConfig(seed=cfg["seed"], type2_mode="simplified"),
        seed=cfg["seed"],
    )
    pending: list[dict] = []

    def record_ack(ack) -> None:
        # Synchronous tap inside the flush, after the heal: the op is in
        # the in-memory state at `net.step_count` the moment we see it.
        if ack.ok:
            pending.append(
                {"step": net.step_count, "kind": ack.kind, "node": ack.node}
            )

    def flush_journal(_step: int) -> None:
        # Fires inside checkpoint_now *before* the snapshot is written:
        # the journal is durable strictly ahead of the checkpoint, so no
        # checkpoint can ever become durable while ops it covers are
        # missing from the journal.  (The reverse ordering is a real
        # race this harness caught: a kill between the snapshot rename
        # and a trailing journal flush leaves a durable checkpoint whose
        # last interval of ops -- leaves especially -- is unjournaled,
        # which the verifier reads as state contradicting the log.)
        # Entries whose covering checkpoint then never publishes are the
        # bounded in-flight loss the verifier counts.
        if not pending:
            return
        with open(root / JOURNAL_NAME, "a", encoding="utf-8") as handle:
            for entry in pending:
                handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        pending.clear()

    async def run() -> None:
        gateway = MembershipGateway(
            net,
            max_batch=cfg["max_batch"],
            queue_limit=cfg["max_batch"] * 8,
            policy=cfg.get("policy", "fixed"),
            deadline_ms=cfg.get("deadline_ms"),
            seed=cfg["seed"],
            checkpoint_dir=root,
            checkpoint_every=cfg["checkpoint_every"],
            checkpoint_keep=cfg["checkpoint_keep"],
            on_before_checkpoint=flush_journal,
            on_ack=record_ack,
        )
        await gateway.start()
        steady = _closed_loop_churn(
            gateway,
            duration_s=cfg["duration_s"],
            clients=cfg["clients"],
            join_fraction=cfg["join_fraction"],
            seed=cfg["seed"] + 1,
        )
        overload_at = cfg.get("overload_at_fraction")
        if overload_at is None:
            await steady
        else:

            async def spike() -> tuple[int, int]:
                # The offered-load fault: after the fuse, a second fleet
                # piles on for the remainder of the soak, pushing offered
                # load past heal capacity while the steady fleet keeps
                # running (and, per the plan, a SIGKILL may land mid-spike).
                await asyncio.sleep(overload_at * cfg["duration_s"])
                return await _closed_loop_churn(
                    gateway,
                    duration_s=(1.0 - overload_at) * cfg["duration_s"],
                    clients=cfg.get("overload_clients", 256),
                    join_fraction=cfg["join_fraction"],
                    seed=cfg["seed"] + 77,
                )

            await asyncio.gather(steady, spike())
        summary = await gateway.drain()
        # Only reached on a clean (un-killed) run: the worker's receipt
        # that the soak -- overload spike included -- drained with every
        # future answered.
        (root / WORKER_FINAL_NAME).write_text(
            json.dumps({"snapshot": gateway.metrics.snapshot(), "drain": summary})
        )

    asyncio.run(run())


async def _closed_loop_churn(
    gateway,
    *,
    duration_s: float,
    clients: int,
    join_fraction: float,
    seed: int,
) -> tuple[int, int]:
    """Closed-loop mixed churn (the loadgen shape): ``clients`` workers
    keep one request in flight each.  Returns ``(completed, ok)``."""
    from repro.service import Population

    rng = random.Random(seed)
    population = Population(gateway.net.nodes(), rng)
    loop = asyncio.get_running_loop()
    deadline = loop.time() + duration_s
    completed = ok = 0

    async def worker() -> None:
        nonlocal completed, ok
        while loop.time() < deadline:
            if rng.random() < join_fraction or not len(population):
                ack = await gateway.join()
                if ack.ok:
                    population.add(ack.node)
            else:
                victim = population.sample()
                ack = await gateway.leave(victim)
                if ack.ok:
                    population.discard(victim)
            completed += 1
            if ack.ok:
                ok += 1

    await asyncio.gather(*(worker() for _ in range(clients)))
    return completed, ok


# ----------------------------------------------------------------------
# corruption injection
# ----------------------------------------------------------------------
def _apply_corruption(root: Path, mode: str) -> str | None:
    """Damage the newest checkpoint per the plan; returns its name."""
    if mode == "none":
        return None
    checkpoints = list_checkpoints(root)
    if not checkpoints:
        return None
    target = checkpoints[-1]
    if mode == "corrupt-array":
        victim = target / "nodes.npy"
        payload = bytearray(victim.read_bytes())
        position = len(payload) // 2
        payload[position] ^= 0xFF
        victim.write_bytes(bytes(payload))
    elif mode == "truncate-manifest":
        manifest = target / MANIFEST_NAME
        payload = manifest.read_bytes()
        manifest.write_bytes(payload[: len(payload) // 2])
    elif mode == "delete-manifest":
        (target / MANIFEST_NAME).unlink()
    else:  # pragma: no cover - guarded by FaultPlan
        raise ValueError(f"unknown corruption {mode!r}")
    return target.name


# ----------------------------------------------------------------------
# journal verification
# ----------------------------------------------------------------------
def _verify_journal(
    root: Path, net, restored_step: int
) -> tuple[int, int, int, list]:
    """Check every journaled ack against the restored network.  Returns
    ``(total entries, nodes checked, lost entries, mismatches)``.  The
    journal is written ahead of each checkpoint, so ops with
    ``step <= restored_step`` are *complete* and must all be reflected;
    ops journaled past the restored step (their covering checkpoint
    never published before the kill) are the bounded in-flight loss.  A
    torn final line (the kill landed mid-write; its checkpoint cannot
    have published) counts as lost, not as corruption."""
    journal = root / JOURNAL_NAME
    if not journal.exists():
        return 0, 0, 0, []
    total = lost = 0
    last_op: dict[int, str] = {}
    with open(journal, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                total += 1
                lost += 1
                continue
            total += 1
            if entry["step"] > restored_step:
                lost += 1
                continue
            last_op[entry["node"]] = entry["kind"]
    mismatches = []
    for node, kind in last_op.items():
        present = net.graph.has_node(node)
        if kind == "join" and not present:
            mismatches.append(f"journaled join of {node} missing after restore")
        elif kind == "leave" and present:
            mismatches.append(f"journaled leave of {node} still present after restore")
    return total, len(last_op), lost, mismatches


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def run_fault_scenario(
    *,
    n0: int = 256,
    duration_s: float = 4.0,
    plan: FaultPlan | None = None,
    checkpoint_every: int = 4,
    checkpoint_keep: int = 4,
    max_batch: int = 32,
    clients: int = 64,
    join_fraction: float = 0.55,
    resume_s: float | None = None,
    policy: str = "fixed",
    deadline_ms: float | None = None,
    seed: int = 11,
    root: str | Path | None = None,
) -> RecoveryReport:
    """One full kill-and-recover cycle; see the module docstring.  The
    returned report's :attr:`~RecoveryReport.passed` is the single
    green/red bit the CI smoke asserts."""
    plan = plan or FaultPlan()
    started = time.perf_counter()
    owns_root = root is None
    if owns_root:
        workdir = tempfile.TemporaryDirectory(prefix="dex-faults-")
        root = Path(workdir.name)
    else:
        workdir = None
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
    report = RecoveryReport(plan=dataclasses.asdict(plan))
    try:
        cfg = {
            "root": str(root),
            "n0": n0,
            "duration_s": duration_s,
            "checkpoint_every": checkpoint_every,
            "checkpoint_keep": checkpoint_keep,
            "max_batch": max_batch,
            "clients": clients,
            "join_fraction": join_fraction,
            "policy": policy,
            "deadline_ms": deadline_ms,
            "overload_at_fraction": plan.overload_at_fraction,
            "overload_clients": plan.overload_clients,
            "seed": seed,
        }
        report.killed = _run_and_kill(cfg, plan, duration_s)
        report.checkpoints_on_disk = len(list_checkpoints(root))
        report.corrupted = _apply_corruption(root, plan.corruption)
        worker_final = root / WORKER_FINAL_NAME
        if worker_final.exists():
            report.overload = json.loads(worker_final.read_text())

        net, path, skipped = restore_latest(root, verify=False)
        report.restored_step = net.step_count
        report.restored_path = str(path)
        report.skipped_corrupt = len(skipped)
        try:
            net.check_invariants()
            net.graph.verify_caches()
            report.invariants_ok = True
        except ReproError as exc:
            report.error = f"post-restore audit failed: {exc}"
            return report

        (
            report.journal_total,
            report.journal_checked_nodes,
            report.journal_lost,
            report.journal_mismatches,
        ) = _verify_journal(root, net, report.restored_step)
        # One interval of journaled-but-never-checkpointed ops can be
        # lost on any kill (the journal runs ahead of durability);
        # corrupting the newest checkpoint forfeits one interval more.
        lost_intervals = 1 if plan.corruption == "none" else 2
        report.journal_lost_bound = lost_intervals * checkpoint_every * max_batch

        report.resumed_events, report.resumed_ok_events = _resume_soak(
            net,
            root,
            duration_s=resume_s if resume_s is not None else duration_s / 4,
            checkpoint_every=checkpoint_every,
            checkpoint_keep=checkpoint_keep,
            max_batch=max_batch,
            clients=clients,
            join_fraction=join_fraction,
            seed=seed + 1000,
        )
        report.final_step = net.step_count
        try:
            net.check_invariants()
            net.graph.verify_caches()
            report.resumed_invariants_ok = True
        except ReproError as exc:
            report.error = f"post-resume audit failed: {exc}"
    except (SnapshotError, OSError, RuntimeError) as exc:
        report.error = f"{type(exc).__name__}: {exc}"
    finally:
        report.wall_s = round(time.perf_counter() - started, 3)
        if workdir is not None:
            workdir.cleanup()
    return report


def _run_and_kill(cfg: dict, plan: FaultPlan, duration_s: float) -> bool:
    """Start the soak worker and SIGKILL it at the planned fraction of
    the duration -- but never before its first checkpoint is durable.
    Returns whether the kill actually happened (a worker that finished
    early proves nothing).  A ``kill=False`` plan just waits for the
    worker to drain cleanly (the overload-without-crash scenario) and
    returns ``False``."""
    ctx = multiprocessing.get_context("spawn")
    process = ctx.Process(target=_soak_worker, args=(cfg,), daemon=True)
    process.start()
    root = Path(cfg["root"])
    if not plan.kill:
        try:
            # Generous ceiling: a saturated drain can take a while, but a
            # hung future would hang forever -- the join timeout is the
            # harness's no-hung-clients assertion.
            process.join(timeout=duration_s + 120.0)
            if process.is_alive():
                raise RuntimeError(
                    "soak worker failed to drain within the "
                    f"{duration_s + 120.0:.0f}s ceiling (hung future?)"
                )
            if process.exitcode != 0:
                raise RuntimeError(
                    f"soak worker exited with code {process.exitcode}"
                )
            return False
        finally:
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=10.0)
    kill_at = plan.kill_at_fraction * duration_s
    # Generous ceiling: bootstrap + first checkpoint must land within it.
    deadline = time.perf_counter() + duration_s + 60.0
    t0 = time.perf_counter()
    try:
        while True:
            if not process.is_alive():
                return False
            elapsed = time.perf_counter() - t0
            if elapsed >= kill_at and list_checkpoints(root):
                break
            if time.perf_counter() > deadline:
                raise RuntimeError(
                    "soak worker produced no checkpoint within the "
                    f"{duration_s + 60.0:.0f}s ceiling"
                )
            time.sleep(0.02)
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=30.0)
        return True
    finally:
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=10.0)


def _resume_soak(
    net,
    root: Path,
    *,
    duration_s: float,
    checkpoint_every: int,
    checkpoint_keep: int,
    max_batch: int,
    clients: int,
    join_fraction: float,
    seed: int,
) -> tuple[int, int]:
    """Continue serving on the restored network (in-process), with
    checkpointing re-enabled into the same directory, and drain."""
    from repro.service import MembershipGateway

    async def run() -> tuple[int, int]:
        gateway = MembershipGateway(
            net,
            max_batch=max_batch,
            queue_limit=max_batch * 8,
            seed=seed,
            checkpoint_dir=root,
            checkpoint_every=checkpoint_every,
            checkpoint_keep=checkpoint_keep,
        )
        gateway.metrics.reset_windows()
        await gateway.start()
        completed, ok = await _closed_loop_churn(
            gateway,
            duration_s=duration_s,
            clients=clients,
            join_fraction=join_fraction,
            seed=seed,
        )
        await gateway.drain()
        return completed, ok

    return asyncio.run(run())


# ----------------------------------------------------------------------
# CLI (the CI crash-recovery smoke drives this)
# ----------------------------------------------------------------------
def run_shard_fault_scenario(
    *,
    n0: int = 256,
    shards: int = 2,
    duration_s: float = 4.0,
    kill_at_fraction: float = 0.4,
    kill_shard: int | None = None,
    checkpoint_every: int = 4,
    max_batch: int = 32,
    clients: int = 64,
    join_fraction: float = 0.55,
    seed: int = 11,
    root: str | Path | None = None,
) -> dict:
    """Kill one shard of a live cluster mid-load and prove the fault
    stays contained:

    * the surviving shards keep answering (events continue after the
      kill),
    * requests routed at the dead region are *answered* with rejections
      -- zero hung futures, ``completed == offered``,
    * the dead shard restarts from its own checkpoint directory and
      rejoins the routing rotation,
    * the final cluster audit (per-shard I1-I8 + cross-shard ownership)
      passes.

    Returns a flat report dict with a single ``passed`` bit for CI."""
    import asyncio

    from repro.service.loadgen import saturating_load
    from repro.service.router import start_cluster

    started = time.perf_counter()
    owns_root = root is None
    if owns_root:
        workdir = tempfile.TemporaryDirectory(prefix="dex-shard-faults-")
        root = Path(workdir.name)
    else:
        workdir = None
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
    victim = kill_shard if kill_shard is not None else shards - 1
    report: dict = {
        "shards": shards,
        "killed_shard": victim,
        "passed": False,
        "error": None,
    }

    async def drive() -> None:
        router = await start_cluster(
            n0,
            shards,
            seed=seed,
            max_batch=max_batch,
            window_ms=1.0,
            checkpoint_root=root,
            checkpoint_every=checkpoint_every,
        )
        try:
            before = await saturating_load(
                router,
                duration_s=duration_s * kill_at_fraction,
                clients=clients,
                join_fraction=join_fraction,
                seed=seed + 1,
            )
            report["events_before_kill"] = before.completed
            report["complete_before_kill"] = before.completed == before.offered
            # Wait for the victim's first durable checkpoint: a restore
            # needs something on disk, exactly like the single-gateway
            # kill path.
            victim_dir = root / f"shard-{victim}"
            for _ in range(200):
                if list_checkpoints(victim_dir):
                    break
                await asyncio.sleep(0.02)
            report["victim_checkpoints"] = len(list_checkpoints(victim_dir))
            router.handles[victim].kill()
            during = await saturating_load(
                router,
                duration_s=duration_s * (1.0 - kill_at_fraction) / 2,
                clients=clients,
                join_fraction=join_fraction,
                seed=seed + 2,
            )
            report["events_during_outage"] = during.completed
            report["complete_during_outage"] = during.completed == during.offered
            report["survivors_answered"] = during.ok > 0
            report["dead_shard_answered"] = during.rejected > 0
            report["shard_marked_down"] = not router.shard_is_live(victim)
            ready = await router.restart_shard(victim)
            report["restored"] = bool(ready.get("restored"))
            report["restored_size"] = ready.get("size")
            after = await saturating_load(
                router,
                duration_s=duration_s * (1.0 - kill_at_fraction) / 2,
                clients=clients,
                join_fraction=join_fraction,
                seed=seed + 3,
            )
            report["events_after_restore"] = after.completed
            report["complete_after_restore"] = after.completed == after.offered
            report["rejoined_rotation"] = router.shard_is_live(victim)
            audit = await router.cluster_audit()
            report["audit_ok"] = audit["ok"]
            report["audit_errors"] = audit["errors"][:8]
            report["total_nodes"] = audit["total_nodes"]
            report["handoffs"] = router.handoff_stats()
        finally:
            await router.drain()

    try:
        asyncio.run(drive())
        report["passed"] = all(
            report.get(key)
            for key in (
                "complete_before_kill",
                "complete_during_outage",
                "complete_after_restore",
                "survivors_answered",
                "dead_shard_answered",
                "shard_marked_down",
                "restored",
                "rejoined_rotation",
                "audit_ok",
            )
        )
    except Exception as exc:  # noqa: BLE001 -- the report is the verdict
        report["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        report["wall_s"] = round(time.perf_counter() - started, 3)
        if workdir is not None:
            workdir.cleanup()
    return report


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.faults",
        description="Kill a checkpointing gateway soak mid-load, restore "
        "from the surviving checkpoints, audit, and resume.",
    )
    parser.add_argument("--n0", type=int, default=256)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--kill-at", type=float, default=0.5,
                        help="kill fraction of --duration (in (0, 1))")
    parser.add_argument("--no-kill", action="store_true",
                        help="run to a clean drain instead of killing "
                        "(the overload-without-crash scenario)")
    parser.add_argument("--corrupt", choices=CORRUPTIONS, default="none",
                        help="additional damage to the newest checkpoint")
    parser.add_argument("--overload-at", type=float, default=None,
                        help="start an offered-load spike at this fraction "
                        "of --duration (in (0, 1))")
    parser.add_argument("--overload-clients", type=int, default=256,
                        help="size of the spike fleet")
    parser.add_argument("--policy", default="fixed",
                        help="gateway admission policy for the soak worker")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline for the soak worker")
    parser.add_argument("--checkpoint-every", type=int, default=4,
                        help="flushes between checkpoints")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--resume", type=float, default=None,
                        help="resumed-soak seconds (default duration/4)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--wall-budget", type=float, default=None,
                        help="fail if the whole cycle exceeds this many seconds")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    parser.add_argument("--shard-kill", action="store_true",
                        help="run the sharded-cluster scenario instead: kill "
                        "one shard of a live cluster mid-load, prove the "
                        "others keep answering, restore it from checkpoint")
    parser.add_argument("--shards", type=int, default=2,
                        help="cluster width for --shard-kill")
    parser.add_argument("--kill-shard", type=int, default=None,
                        help="which shard --shard-kill kills "
                        "(default: the last)")
    args = parser.parse_args(argv)

    if args.shard_kill:
        report = run_shard_fault_scenario(
            n0=args.n0,
            shards=args.shards,
            duration_s=args.duration,
            kill_at_fraction=args.kill_at,
            kill_shard=args.kill_shard,
            checkpoint_every=args.checkpoint_every,
            max_batch=args.max_batch,
            clients=args.clients,
            seed=args.seed,
        )
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(
                f"killed shard {report['killed_shard']}/{report['shards']}: "
                f"{report.get('events_before_kill', 0)} events before, "
                f"{report.get('events_during_outage', 0)} during outage "
                f"(survivors_answered={report.get('survivors_answered')}, "
                f"dead_shard_answered={report.get('dead_shard_answered')})"
            )
            print(
                f"restored={report.get('restored')} "
                f"size={report.get('restored_size')} "
                f"events after {report.get('events_after_restore', 0)}, "
                f"audit ok={report.get('audit_ok')}, "
                f"wall {report['wall_s']}s"
            )
            if report["error"]:
                print(f"error: {report['error']}", file=sys.stderr)
        if not report["passed"]:
            print("SHARD FAULT SCENARIO FAILED", file=sys.stderr)
            return 1
        if args.wall_budget is not None and report["wall_s"] > args.wall_budget:
            print(
                f"wall clock {report['wall_s']}s exceeded budget "
                f"{args.wall_budget}s",
                file=sys.stderr,
            )
            return 1
        print("shard fault scenario passed")
        return 0

    plan = FaultPlan(
        kill_at_fraction=args.kill_at,
        corruption=args.corrupt,
        kill=not args.no_kill,
        overload_at_fraction=args.overload_at,
        overload_clients=args.overload_clients,
    )
    report = run_fault_scenario(
        n0=args.n0,
        duration_s=args.duration,
        plan=plan,
        checkpoint_every=args.checkpoint_every,
        max_batch=args.max_batch,
        clients=args.clients,
        resume_s=args.resume,
        policy=args.policy,
        deadline_ms=args.deadline_ms,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(dataclasses.asdict(report), indent=2))
    else:
        print(
            f"killed={report.killed} corrupted={report.corrupted} "
            f"restored step {report.restored_step} "
            f"(skipped {report.skipped_corrupt} corrupt) "
            f"invariants_ok={report.invariants_ok}"
        )
        print(
            f"journal: {report.journal_total} entries, "
            f"{report.journal_checked_nodes} nodes checked, "
            f"{report.journal_lost} lost "
            f"(bound {report.journal_lost_bound}), "
            f"{len(report.journal_mismatches)} mismatches"
        )
        print(
            f"resumed: {report.resumed_ok_events}/{report.resumed_events} "
            f"acks ok, final step {report.final_step}, "
            f"audit ok={report.resumed_invariants_ok}, "
            f"wall {report.wall_s}s"
        )
        if report.error:
            print(f"error: {report.error}", file=sys.stderr)
    if not report.passed:
        print("FAULT SCENARIO FAILED", file=sys.stderr)
        return 1
    if args.wall_budget is not None and report.wall_s > args.wall_budget:
        print(
            f"wall clock {report.wall_s}s exceeded budget {args.wall_budget}s",
            file=sys.stderr,
        )
        return 1
    print("fault scenario passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
