"""Random-walk mixing diagnostics.

* :func:`mixing_lemma_check` -- the Expander Mixing Lemma (Lemma 12): for
  a d-regular graph with second eigenvalue ``lambda``, every pair of
  vertex sets S, T satisfies
  ``| |E(S,T)| - d |S||T| / n | <= lambda * d * sqrt(|S||T|)``.
* :func:`estimate_mixing_time` -- iterations of the lazy random walk until
  total-variation distance from stationarity drops below a threshold;
  Phase 2 of Algorithms 4.5/4.6 relies on O(log n) mixing of the p-cycle.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import VirtualGraphError


def mixing_lemma_check(
    adjacency: sp.spmatrix | np.ndarray,
    d: int,
    lam: float,
    s_set: set[int],
    t_set: set[int],
) -> tuple[float, float]:
    """Return ``(deviation, bound)`` for the Mixing Lemma on sets S, T.

    ``E(S, T)`` counts ordered pairs (s, t) with an edge, matching the
    statement in [14]; self-loops count for s = t in S cap T.
    """
    A = sp.csr_matrix(adjacency)
    n = A.shape[0]
    if not s_set or not t_set:
        raise VirtualGraphError("S and T must be non-empty")
    s_idx = sorted(s_set)
    t_idx = sorted(t_set)
    e_st = float(A[np.ix_(s_idx, t_idx)].sum())
    expected = d * len(s_set) * len(t_set) / n
    deviation = abs(e_st - expected)
    bound = lam * d * float(np.sqrt(len(s_set) * len(t_set)))
    return deviation, bound


def estimate_mixing_time(
    adjacency: sp.spmatrix | np.ndarray,
    start: int = 0,
    tv_threshold: float = 0.25,
    max_steps: int = 10_000,
    lazy: bool = True,
) -> int:
    """Steps of the (lazy) random walk from ``start`` until the TV distance
    to the stationary distribution is below ``tv_threshold``."""
    A = sp.csr_matrix(adjacency, dtype=np.float64)
    n = A.shape[0]
    degrees = np.asarray(A.sum(axis=1)).ravel()
    if (degrees <= 0).any():
        raise VirtualGraphError("graph has an isolated vertex")
    # Row-stochastic walk matrix P = D^{-1} A (as a right-multiplied CSR).
    P = sp.diags(1.0 / degrees) @ A
    if lazy:
        P = 0.5 * sp.eye(n) + 0.5 * P
    stationary = degrees / degrees.sum()
    dist = np.zeros(n)
    dist[start] = 1.0
    for step in range(1, max_steps + 1):
        dist = dist @ P
        tv = 0.5 * np.abs(dist - stationary).sum()
        if tv < tv_threshold:
            return step
    raise VirtualGraphError(
        f"walk did not mix to TV < {tv_threshold} within {max_steps} steps"
    )
