"""Edge expansion ``h(G)`` (Definition 5) and the Cheeger inequality
(Theorem 2): ``(1 - lambda)/2 <= h(G) <= sqrt(2 (1 - lambda))``.

Exact expansion is only computable for tiny graphs (it minimises over all
subsets of at most half the vertices); for larger graphs we report the
*sweep-cut* upper bound derived from the second eigenvector, which is the
standard certified upper bound used alongside the spectral lower bound
``(1 - lambda)/2`` from Cheeger.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.analysis.spectral import normalized_adjacency
from repro.errors import VirtualGraphError

_EXACT_LIMIT = 18


def _edge_list(adjacency: sp.spmatrix) -> list[tuple[int, int, float]]:
    A = sp.coo_matrix(adjacency)
    edges = []
    for i, j, w in zip(A.row, A.col, A.data):
        if i < j and w > 0:
            edges.append((int(i), int(j), float(w)))
    return edges


def edge_expansion_exact(adjacency: sp.spmatrix | np.ndarray) -> float:
    """Exact ``h(G) = min_{|S| <= n/2} |E(S, S-bar)| / |S|`` by subset
    enumeration.  Only feasible for ``n <= 18``; self-loops never cross a
    cut and are ignored."""
    A = sp.csr_matrix(adjacency)
    n = A.shape[0]
    if n < 2:
        raise VirtualGraphError("expansion needs at least 2 vertices")
    if n > _EXACT_LIMIT:
        raise VirtualGraphError(
            f"exact expansion limited to n <= {_EXACT_LIMIT} (got {n}); "
            "use edge_expansion_sweep"
        )
    edges = _edge_list(A)
    best = float("inf")
    half = n // 2
    for mask in range(1, 1 << n):
        size = mask.bit_count()
        if size > half:
            continue
        cut = 0.0
        for i, j, w in edges:
            if ((mask >> i) & 1) != ((mask >> j) & 1):
                cut += w
        best = min(best, cut / size)
    return best


def edge_expansion_sweep(adjacency: sp.spmatrix | np.ndarray) -> float:
    """Sweep-cut upper bound on ``h(G)``: order vertices by the second
    eigenvector of the normalized adjacency and take the best prefix cut.
    Always >= h(G); by Cheeger's proof it is <= sqrt(2 (1 - lambda))."""
    A = sp.csr_matrix(adjacency, dtype=np.float64)
    n = A.shape[0]
    if n < 2:
        raise VirtualGraphError("expansion needs at least 2 vertices")
    N = normalized_adjacency(A)
    if n <= 600:
        vals, vecs = np.linalg.eigh(N.toarray())
        order_vec = vecs[:, -2]
    else:
        import scipy.sparse.linalg as spla

        vals, vecs = spla.eigsh(N, k=2, which="LA", tol=1e-8)
        idx = np.argsort(vals)
        order_vec = vecs[:, idx[0]]
    # Undo the D^{1/2} scaling so the sweep is over the walk eigenvector.
    degrees = np.asarray(A.sum(axis=1)).ravel()
    order_vec = order_vec / np.sqrt(degrees)
    order = np.argsort(order_vec)

    # Incremental prefix cuts: adding vertex v to S moves edges (v, u) with
    # u in S from "crossing" to "internal" and edges to u outside S into
    # "crossing".
    in_s = np.zeros(n, dtype=bool)
    cut = 0.0
    best = float("inf")
    A_lil = A.tolil()
    for k, v in enumerate(order[: n - 1], start=1):
        for u, w in zip(A_lil.rows[v], A_lil.data[v]):
            if u == v:
                continue  # self-loops never cross
            if in_s[u]:
                cut -= w
            else:
                cut += w
        in_s[v] = True
        size = min(k, n - k)
        if size > 0 and k <= n // 2:
            best = min(best, cut / k)
    return best


def cheeger_bounds(spectral_gap: float) -> tuple[float, float]:
    """The Cheeger sandwich for a given gap ``1 - lambda``: returns
    ``(lower, upper)`` with ``lower <= h(G) <= upper``."""
    if spectral_gap < 0:
        spectral_gap = 0.0
    return spectral_gap / 2.0, float(np.sqrt(2.0 * spectral_gap))
