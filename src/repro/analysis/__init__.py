"""Spectral and combinatorial graph analysis used to *measure* the
properties DEX guarantees: spectral gap, edge expansion (Cheeger,
Theorem 2), the Expander Mixing Lemma (Lemma 12), and mixing times.
"""

from repro.analysis.spectral import (
    SpectralTracker,
    normalized_adjacency,
    second_eigenvalue,
    spectral_gap,
    spectral_gap_of_multigraph,
)
from repro.analysis.expansion import (
    edge_expansion_exact,
    edge_expansion_sweep,
    cheeger_bounds,
)
from repro.analysis.mixing import (
    mixing_lemma_check,
    estimate_mixing_time,
)
from repro.analysis.stats import Summary, summarize, fit_log_curve, loglog_slope

__all__ = [
    "SpectralTracker",
    "normalized_adjacency",
    "second_eigenvalue",
    "spectral_gap",
    "spectral_gap_of_multigraph",
    "edge_expansion_exact",
    "edge_expansion_sweep",
    "cheeger_bounds",
    "mixing_lemma_check",
    "estimate_mixing_time",
    "Summary",
    "summarize",
    "fit_log_curve",
    "loglog_slope",
]
