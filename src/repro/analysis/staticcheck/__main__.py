"""CLI: ``python -m repro.analysis.staticcheck [paths...]``.

Exit status: 0 = clean (every finding suppressed with a reason),
1 = findings, 2 = bad invocation.  ``--json`` writes the
machine-readable report (schema ``dex-staticcheck/1``) that CI uploads
and ``scripts/check_report.py staticcheck`` asserts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.staticcheck.engine import check_paths, write_json
from repro.analysis.staticcheck.rules import ALL_RULES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.staticcheck",
        description="project-specific static analysis (determinism, "
        "async-safety, layering)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or package roots to check (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        help="write the JSON report to OUT ('-' for stdout)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        metavar="ID",
        help="run only rules whose id (or family prefix) matches",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{', '.join(rule.ids)}\n    {rule.description}")
        return 0

    rules = ALL_RULES
    if args.rules:
        wanted = set(args.rules)
        rules = [
            rule
            for rule in ALL_RULES
            if any(
                rid in wanted or rid.split("/", 1)[0] in wanted
                for rid in rule.ids
            )
        ]
        if not rules:
            parser.error(f"no rule matches {sorted(wanted)}")

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path: {missing}")

    report = check_paths(args.paths, rules)
    if args.json == "-":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        if args.json:
            write_json(report, args.json)
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
