"""The staticcheck engine: module loading, suppression directives,
rule dispatch and the JSON report.

The engine knows nothing about individual rules -- it walks the tree,
parses each module once, hands :class:`ModuleInfo` to every rule, and
reconciles the raw findings against the suppression directives found in
the source.  Rules live in :mod:`repro.analysis.staticcheck.rules`.

**Suppressions.**  A finding is silenced by a directive comment that
*must* carry a written reason after ``--``::

    value = time.time()  # staticcheck: ignore[determinism/wall-clock] -- user-facing timestamp

    # staticcheck: ignore[async/blocking-call] -- startup path, loop not running yet
    data = open(path).read()

    # staticcheck: ignore-file[layering/import-dag] -- migration shim, removed in the next PR

``ignore[...]`` matches findings on its own line or the line directly
below (the standalone-comment form); ``ignore-file[...]`` matches the
whole file.  The bracket list takes full rule ids or a family prefix
(``determinism`` matches every ``determinism/*`` rule).  Directives are
themselves checked: a missing reason, an unknown rule name, or a
directive that suppresses nothing each produce a finding, so stale
suppressions cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.staticcheck.rules import Rule

#: report schema tag, asserted by ``scripts/check_report.py staticcheck``
SCHEMA = "dex-staticcheck/1"

#: rule ids emitted by the engine itself (directive hygiene + parsing)
ENGINE_RULE_IDS = (
    "suppression/missing-reason",
    "suppression/unknown-rule",
    "suppression/unused",
    "parse/syntax-error",
)

_DIRECTIVE = re.compile(
    r"#\s*staticcheck:\s*(?P<kind>ignore(?:-file)?)"
    r"\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    rel: str  # path relative to the scanned root, posix separators
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.rel}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed directive comment."""

    kind: str  # "ignore" | "ignore-file"
    rules: tuple[str, ...]
    reason: str | None
    rel: str
    line: int

    def matches(self, finding: Finding) -> bool:
        if self.rel != finding.rel:
            return False
        if self.kind == "ignore" and finding.line not in (self.line, self.line + 1):
            return False
        family = finding.rule.split("/", 1)[0]
        return any(entry in (finding.rule, family) for entry in self.rules)


@dataclass
class ModuleInfo:
    """Everything a rule gets to see about one module."""

    path: Path  # absolute path on disk
    rel: str  # posix path relative to the scanned root
    package: str  # first path component ("core", "cli", "__init__", ...)
    tree: ast.Module
    lines: list[str]
    #: ``(line, text)`` of every comment token -- directives are parsed
    #: from here, so a directive *quoted in a docstring* (like the ones
    #: documenting this very feature) is inert
    comments: list[tuple[int, str]] = field(default_factory=list)

    @property
    def is_package_root(self) -> bool:
        """True for the scanned root's own ``__init__.py`` (the façade)."""
        return self.rel == "__init__.py"


@dataclass
class Report:
    """The reconciled result of one run."""

    roots: list[str]
    rules: list[str]
    files_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "ok": self.ok,
            "roots": self.roots,
            "rules": self.rules,
            "files_checked": self.files_checked,
            "counts": self.counts(),
            "findings": [vars(f) for f in self.findings],
            "suppressed": self.suppressed,
        }

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        verdict = (
            f"staticcheck: {len(self.findings)} finding(s) in "
            f"{self.files_checked} file(s)"
            if self.findings
            else f"staticcheck: ok ({self.files_checked} file(s), "
            f"{len(self.suppressed)} suppression(s))"
        )
        return "\n".join(lines + [verdict])


def _package_of(rel: str) -> str:
    head = rel.split("/", 1)[0]
    return head[:-3] if head.endswith(".py") else head


def load_module(path: Path, rel: str) -> ModuleInfo | None:
    """Parse one file; ``None`` means a syntax error (reported by the
    caller as a ``parse/syntax-error`` finding, not an exception -- a
    checker that crashes on the code it polices gates nothing)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    comments = [
        (tok.start[0], tok.string)
        for tok in tokenize.generate_tokens(io.StringIO(source).readline)
        if tok.type == tokenize.COMMENT
    ]
    return ModuleInfo(
        path=path,
        rel=rel,
        package=_package_of(rel),
        tree=tree,
        lines=source.splitlines(),
        comments=comments,
    )


def parse_suppressions(module: ModuleInfo) -> list[Suppression]:
    out: list[Suppression] = []
    for lineno, text in module.comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = tuple(
            entry.strip() for entry in match.group("rules").split(",") if entry.strip()
        )
        out.append(
            Suppression(
                kind=match.group("kind"),
                rules=rules,
                reason=match.group("reason"),
                rel=module.rel,
                line=lineno,
            )
        )
    return out


def iter_python_files(root: Path) -> Iterable[tuple[Path, str]]:
    """``(path, rel)`` for every ``.py`` under ``root`` (or ``root``
    itself when it is a file), skipping caches, sorted for stable
    reports."""
    if root.is_file():
        yield root, root.name
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path, path.relative_to(root).as_posix()


def _reconcile(
    raw: list[Finding],
    suppressions: list[Suppression],
    known_ids: set[str],
) -> tuple[list[Finding], list[dict]]:
    """Apply directives to raw findings; emit directive-hygiene findings
    for bad or useless directives."""
    active: list[Finding] = []
    suppressed: list[dict] = []
    used: set[int] = set()
    valid = [s for s in suppressions if s.reason is not None]
    for finding in raw:
        hit = next((s for s in valid if s.matches(finding)), None)
        if hit is None:
            active.append(finding)
        else:
            used.add(id(hit))
            suppressed.append({**vars(finding), "reason": hit.reason})
    families = {rule_id.split("/", 1)[0] for rule_id in known_ids}
    for suppression in suppressions:
        if suppression.reason is None:
            active.append(
                Finding(
                    "suppression/missing-reason",
                    suppression.rel,
                    suppression.line,
                    0,
                    "suppression must carry a reason: "
                    "`# staticcheck: ignore[rule] -- why`",
                )
            )
            continue
        for entry in suppression.rules:
            if entry not in known_ids and entry not in families:
                active.append(
                    Finding(
                        "suppression/unknown-rule",
                        suppression.rel,
                        suppression.line,
                        0,
                        f"unknown rule {entry!r} in suppression",
                    )
                )
        if id(suppression) not in used:
            active.append(
                Finding(
                    "suppression/unused",
                    suppression.rel,
                    suppression.line,
                    0,
                    "suppression matches no finding; delete it",
                )
            )
    return active, suppressed


def check_paths(
    paths: Sequence[str | Path],
    rules: "Sequence[Rule] | None" = None,
) -> Report:
    """Run ``rules`` (default: the full registry) over every module
    under ``paths``.  Each *directory* passed is treated as a package
    root: the first path component below it is the module's layer name
    (so scanning ``src/repro`` makes ``core/dex.py`` layer ``core``,
    and a test fixture tree works the same way)."""
    from repro.analysis.staticcheck.rules import ALL_RULES

    selected = list(ALL_RULES if rules is None else rules)
    known_ids = set(ENGINE_RULE_IDS)
    for rule in selected:
        known_ids.update(rule.ids)
    report = Report(
        roots=[str(p) for p in paths],
        rules=sorted(known_ids),
    )
    raw: list[Finding] = []
    suppressions: list[Suppression] = []
    for root in paths:
        root = Path(root)
        for path, rel in iter_python_files(root):
            report.files_checked += 1
            try:
                module = load_module(path, rel)
            except SyntaxError as exc:
                raw.append(
                    Finding(
                        "parse/syntax-error",
                        rel,
                        exc.lineno or 1,
                        exc.offset or 0,
                        f"could not parse: {exc.msg}",
                    )
                )
                continue
            suppressions.extend(parse_suppressions(module))
            for rule in selected:
                raw.extend(rule.check(module))
    active, suppressed = _reconcile(raw, suppressions, known_ids)
    report.findings = sorted(active, key=lambda f: (f.rel, f.line, f.rule))
    report.suppressed = sorted(
        suppressed, key=lambda d: (d["rel"], d["line"], d["rule"])
    )
    return report


def write_json(report: Report, out_path: str | Path) -> None:
    Path(out_path).write_text(
        json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
