"""Layering rule: the declared import DAG, enforced on every module.

The reproduction's packages form a strict tower (foundation at rank 0,
``cli`` at the top)::

    types, errors, obs       0   pure data / exception vocabulary /
                                 tracing + telemetry spine
    virtual, analysis,       1   p-cycle math, measurements, adversary
      adversary                  strategies (engine-facing, no deps up)
    net                      2   graph + walks + waves
    dht                      3   hashing over net
    core                     4   the healing engine
    baselines, persist       5   alternative overlays; snapshots
    service                  6   gateway / shards / router
    harness                  7   runners, scenarios, perf, faults
    cli                      8   the executable surface

A module may import strictly *down* the tower (and its own package).
``repro/__init__.py`` is the published façade and may re-export
anything except ``cli``; nothing imports ``cli`` -- it is an
entrypoint, not a library.  Imports under ``if TYPE_CHECKING:`` are
annotation-only and exempt (they are how ``dht`` names ``DexNetwork``
without a runtime cycle).

A package missing from the map is a finding, not a pass: adding a
package to the tree forces a decision about where it sits.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.staticcheck.engine import Finding, ModuleInfo
from repro.analysis.staticcheck.rules.base import Rule, type_checking_linenos

#: the declared tower: package name -> rank (lower = more foundational)
LAYERS: dict[str, int] = {
    "types": 0,
    "errors": 0,
    "obs": 0,
    "virtual": 1,
    "analysis": 1,
    "adversary": 1,
    "net": 2,
    "dht": 3,
    "core": 4,
    "baselines": 5,
    "persist": 5,
    "service": 6,
    "harness": 7,
    "cli": 8,
}

#: the root package whose internal imports the rule polices
ROOT_PACKAGE = "repro"


def _imported_packages(tree: ast.Module) -> Iterator[tuple[str, int, int]]:
    """``(first-level package, line, col)`` for every import of
    ``repro.*`` (the caller filters TYPE_CHECKING lines)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == ROOT_PACKAGE and len(parts) > 1:
                    yield parts[1], node.lineno, node.col_offset
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            parts = node.module.split(".")
            if parts[0] != ROOT_PACKAGE:
                continue
            if len(parts) > 1:
                yield parts[1], node.lineno, node.col_offset
            else:
                # ``from repro import core`` names packages directly
                for alias in node.names:
                    yield alias.name, node.lineno, node.col_offset


class LayeringRule(Rule):
    ids = ("layering/import-dag", "layering/unknown-layer")
    description = (
        "imports follow the declared layer tower (core -> net -> "
        "service -> harness); nothing imports cli; new packages must "
        "be added to the layer map"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        exempt = type_checking_linenos(module.tree)
        imports = [
            item
            for item in _imported_packages(module.tree)
            if item[1] not in exempt
        ]
        if module.is_package_root:
            # the façade re-exports freely -- but never the entrypoint
            for package, line, col in imports:
                if package == "cli":
                    yield Finding(
                        self.ids[0],
                        module.rel,
                        line,
                        col,
                        "the package façade may not re-export `cli` "
                        "(it is an entrypoint, not a library)",
                    )
            return
        own = module.package
        own_rank = LAYERS.get(own)
        if own_rank is None:
            yield Finding(
                self.ids[1],
                module.rel,
                1,
                0,
                f"package {own!r} is not in the declared layer map; "
                "add it to staticcheck/rules/layering.py with a rank",
            )
            return
        for package, line, col in imports:
            if package == own:
                continue
            rank = LAYERS.get(package)
            if rank is None:
                yield Finding(
                    self.ids[1],
                    module.rel,
                    line,
                    col,
                    f"imported package {package!r} is not in the "
                    "declared layer map",
                )
            elif rank >= own_rank:
                yield Finding(
                    self.ids[0],
                    module.rel,
                    line,
                    col,
                    f"layer {own!r} (rank {own_rank}) may not import "
                    f"{package!r} (rank {rank}): the tower goes "
                    "types/errors/obs -> virtual/analysis/adversary -> "
                    "net -> dht -> core -> baselines/persist -> service "
                    "-> harness -> cli",
                )
