"""Determinism rules: the engine layers may not consult global random
state, unseeded generators, or the wall clock.

Why this is a *gate* and not a style preference: the reproduction's
correctness oracles compare transcripts -- scalar vs vector wave
engines bit-identical for a fixed seed (PR 3), snapshot restore
bit-identical to the live network (PR 6), campaign-vs-sequential
differentials (PR 4/5).  One ``random.random()`` or ``time.time()``
inside a heal path and those oracles still pass while proving nothing.

Scope: the engine layers (:data:`ENGINE_LAYERS`).  The serving and
harness layers (``harness/``, ``service/``, ``persist/``, ``cli.py``)
are allowlisted -- they measure latency (monotonic clocks, enforced by
review + the async rules) and stamp user-facing timestamps, which are
*supposed* to be wall-clock.

The ``obs`` tracing layer (PR 10) sits *inside* the checked scope even
though it is not an engine: span timing must stay on
``perf_counter``/``monotonic`` (a wall-clock span would invert under
NTP steps, and the differential tracing-on/off oracle depends on obs
never perturbing engine state).  Its single sanctioned wall-clock read
-- the user-facing ``created`` stamp of the JSONL export header -- is
allowlisted per *site* in :data:`WALL_CLOCK_ALLOWED_SITES`, mirroring
the perf-report / snapshot-manifest precedent (those live in layers
outside the scope; obs earns the same carve-out one function at a
time, not wholesale).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.staticcheck.engine import Finding, ModuleInfo
from repro.analysis.staticcheck.rules.base import Rule, import_aliases, resolve_call

#: layers whose code feeds deterministic transcripts.  ``harness``,
#: ``service``, ``persist`` and ``cli`` are deliberately absent: their
#: wall-clock use is user-facing (latency reports, snapshot manifest
#: timestamps) and their randomness is seeded per-instance.
ENGINE_LAYERS = frozenset(
    {
        "core",
        "net",
        "virtual",
        "baselines",
        "dht",
        "adversary",
        "analysis",
        "types",
        "errors",
        # the tracing spine: checked so span timing stays monotonic (its
        # one wall-clock site is allowlisted in WALL_CLOCK_ALLOWED_SITES)
        "obs",
    }
)

#: ``random.<fn>()`` module-level functions = hidden global state
MODULE_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
        "getstate",
        "setstate",
    }
)

#: constructors that fall back to OS entropy when called with no seed
UNSEEDED_CTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)

#: wall-clock reads (monotonic clocks -- ``time.monotonic``,
#: ``time.perf_counter``, ``loop.time()`` -- are all fine)
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "time.strftime",
        "time.mktime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: module rel-path -> function names whose bodies may read the wall
#: clock.  The only entry is the obs exporter's user-facing ``created``
#: header stamp; span timing itself stays monotonic and is NOT exempt.
WALL_CLOCK_ALLOWED_SITES: dict[str, frozenset[str]] = {
    "obs/trace.py": frozenset({"_created_stamp"}),
}


def _allowed_wall_clock_linenos(module: ModuleInfo) -> frozenset[int]:
    """Line numbers inside the allowlisted functions of ``module``
    (empty for modules with no allowlisted site)."""
    names = WALL_CLOCK_ALLOWED_SITES.get(module.rel)
    if not names:
        return frozenset()
    lines: set[int] = set()
    for node in ast.walk(module.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in names
        ):
            end = node.end_lineno or node.lineno
            lines.update(range(node.lineno, end + 1))
    return frozenset(lines)


class _DeterminismRule(Rule):
    """Shared scoping: skip modules outside the engine layers."""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.package not in ENGINE_LAYERS:
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = resolve_call(node.func, aliases)
                if dotted is not None:
                    yield from self.check_call(module, node, dotted)

    def check_call(
        self, module: ModuleInfo, node: ast.Call, dotted: str
    ) -> Iterator[Finding]:
        raise NotImplementedError


class ModuleRandomRule(_DeterminismRule):
    ids = ("determinism/module-random",)
    description = (
        "engine layers may not call random-module-level functions "
        "(hidden global state; thread a seeded random.Random instead)"
    )

    def check_call(
        self, module: ModuleInfo, node: ast.Call, dotted: str
    ) -> Iterator[Finding]:
        head, _, fn = dotted.rpartition(".")
        if head == "random" and fn in MODULE_RANDOM:
            yield Finding(
                self.ids[0],
                module.rel,
                node.lineno,
                node.col_offset,
                f"`{dotted}()` uses the shared module-level generator; "
                "thread a seeded `random.Random` through instead",
            )


class UnseededRngRule(_DeterminismRule):
    ids = ("determinism/unseeded-rng",)
    description = (
        "engine layers may not construct generators without an explicit "
        "seed (OS entropy breaks transcript and snapshot bit-identity)"
    )

    def check_call(
        self, module: ModuleInfo, node: ast.Call, dotted: str
    ) -> Iterator[Finding]:
        if dotted in UNSEEDED_CTORS and not node.args and not node.keywords:
            yield Finding(
                self.ids[0],
                module.rel,
                node.lineno,
                node.col_offset,
                f"`{dotted}()` with no seed draws OS entropy; pass an "
                "explicit seed (or a spawned child generator)",
            )


class WallClockRule(_DeterminismRule):
    ids = ("determinism/wall-clock",)
    description = (
        "engine layers may not read the wall clock (NTP steps make it "
        "non-monotonic; deadline/latency math uses time.monotonic or "
        "time.perf_counter, timestamps belong to the serving layers)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        allowed = _allowed_wall_clock_linenos(module)
        for finding in super().check(module):
            if finding.line not in allowed:
                yield finding

    def check_call(
        self, module: ModuleInfo, node: ast.Call, dotted: str
    ) -> Iterator[Finding]:
        if dotted in WALL_CLOCK:
            yield Finding(
                self.ids[0],
                module.rel,
                node.lineno,
                node.col_offset,
                f"`{dotted}()` reads the wall clock; use time.monotonic"
                " / time.perf_counter (or move the timestamp to a "
                "serving layer)",
            )
