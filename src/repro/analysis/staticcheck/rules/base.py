"""Rule base class and the AST helpers every rule family shares."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.staticcheck.engine import Finding, ModuleInfo


class Rule:
    """One check.  Subclasses declare the finding ids they may emit
    (``ids``) and implement :meth:`check`; the engine owns walking,
    suppression and reporting.  A rule must be *total*: it may not
    raise on any parseable module."""

    #: every finding id this rule can emit (used to validate directives)
    ids: tuple[str, ...] = ()
    #: one-line description for ``--list-rules`` and the docs
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        raise NotImplementedError


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted thing they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``import numpy.random`` -> ``{"numpy": "numpy"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``;
    ``from time import time as now`` -> ``{"now": "time.time"}``.

    Function-local rebinding is ignored on purpose: this feeds a lint,
    and a module that shadows ``time`` locally deserves the finding.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """The canonical dotted name a call target resolves to, or ``None``
    when the base is not an imported name (a local variable, an
    attribute of ``self``, ...)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def walk_skipping_nested_defs(body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    """Every node under ``body`` that belongs to the *enclosing*
    function's own frame: nested ``def`` / ``async def`` bodies are not
    entered (they run in their own context -- a sync helper handed to
    an executor must not count as blocking the event loop)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def type_checking_linenos(tree: ast.Module) -> set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks (annotation-only
    imports are exempt from the layering DAG)."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (
            test.id
            if isinstance(test, ast.Name)
            else test.attr
            if isinstance(test, ast.Attribute)
            else None
        )
        if name == "TYPE_CHECKING":
            for stmt in node.body:
                end = stmt.end_lineno or stmt.lineno
                lines.update(range(stmt.lineno, end + 1))
    return lines
