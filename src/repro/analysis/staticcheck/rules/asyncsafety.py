"""Async-safety rules: the serving tier's "answered, never dropped"
contract, checked on every path.

Two failure shapes the runtime harnesses can only sample:

* a *blocking call* inside ``async def`` stalls the whole event loop --
  every queued client, every deadline sweep, every reader task -- for
  as long as the call runs;
* a future created and then *orphaned* by an exception between its
  creation and the point where something takes responsibility for it
  (a registry the sweeper scans, a resolved result, an exception
  handler) hangs its client forever.  PR 5/8 promise exactly zero such
  futures, under faults included.

The future check is deliberately structural, not a dataflow engine: a
created future must be **resolved** (``set_result`` / ``set_exception``
/ ``cancel``), **registered** (stored through an attribute/subscript
target or passed to a call -- e.g. ``self._pending[rid] = _Pending(f)``),
or **returned**, and any ``await`` between creation and that first
evidence must sit in a ``try`` whose handler or ``finally`` resolves
the future.  That is precisely the shape of every legitimate site in
``service/gateway.py`` and ``service/router.py``; anything else is
either a bug or one honest ``# staticcheck: ignore[...] -- reason``
away from documenting why not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.staticcheck.engine import Finding, ModuleInfo
from repro.analysis.staticcheck.rules.base import (
    Rule,
    import_aliases,
    resolve_call,
    walk_skipping_nested_defs,
)

#: canonical names that block the calling thread.  ``open`` (the
#: builtin) is handled separately.  Monitored pipes/sockets behind
#: executors are fine -- the rule only sees *direct* calls in the
#: async frame.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: attribute names whose call resolves a future
_RESOLVERS = ("set_result", "set_exception", "cancel")


class BlockingCallRule(Rule):
    ids = ("async/blocking-call",)
    description = (
        "no blocking calls (time.sleep, open, subprocess, os.system) "
        "inside async def -- they stall every client on the loop"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in walk_skipping_nested_defs(fn.body):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Name) and node.func.id == "open":
                    yield Finding(
                        self.ids[0],
                        module.rel,
                        node.lineno,
                        node.col_offset,
                        f"sync `open()` inside `async def {fn.name}` "
                        "blocks the event loop; use an executor",
                    )
                    continue
                dotted = resolve_call(node.func, aliases)
                if dotted in BLOCKING_CALLS:
                    yield Finding(
                        self.ids[0],
                        module.rel,
                        node.lineno,
                        node.col_offset,
                        f"blocking `{dotted}()` inside `async def "
                        f"{fn.name}`; await the async equivalent or "
                        "run it on an executor",
                    )


def _future_creations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, aliases: dict[str, str]
) -> list[tuple[str, ast.AST]]:
    """``(name, assign-node)`` for every ``x = <loop>.create_future()``
    / ``x = asyncio.Future()`` in the function's own frame."""
    out: list[tuple[str, ast.AST]] = []
    for node in walk_skipping_nested_defs(fn.body):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not isinstance(target, ast.Name) or not isinstance(value, ast.Call):
            continue
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr == "create_future":
            out.append((target.id, node))
        else:
            dotted = resolve_call(func, aliases)
            if dotted in ("asyncio.Future", "concurrent.futures.Future"):
                out.append((target.id, node))
    return out


def _mentions(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _resolves(node: ast.AST, name: str) -> bool:
    """Does ``node``'s subtree call ``<name>.set_result/set_exception/
    cancel``?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _RESOLVERS
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == name
        ):
            return True
    return False


def _evidence_lines(fn: ast.AST, name: str, created: ast.AST) -> list[int]:
    """Lines where responsibility for the future named ``name`` is
    taken: resolved, passed to a call, stored through an attribute or
    subscript target, or returned."""
    lines: list[int] = []
    for node in ast.walk(fn):
        if node is created:
            continue
        if isinstance(node, ast.Call):
            args: list[ast.AST] = list(node.args)
            args.extend(kw.value for kw in node.keywords)
            if isinstance(node.func, ast.Attribute) and node.func.attr in _RESOLVERS:
                args.append(node.func.value)
            if any(_mentions(arg, name) for arg in args):
                lines.append(node.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            stored = any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
            )
            value = node.value
            if stored and value is not None and _mentions(value, name):
                lines.append(node.lineno)
        elif isinstance(node, ast.Return):
            if node.value is not None and _mentions(node.value, name):
                lines.append(node.lineno)
        elif isinstance(node, (ast.Await, ast.YieldFrom)):
            # awaiting the future is taking responsibility for it
            if _mentions(node.value, name):
                lines.append(node.lineno)
    return sorted(lines)


def _protected_ranges(
    fn: ast.AST, name: str
) -> list[tuple[int, int]]:
    """Line ranges covered by a ``try`` whose handlers or ``finally``
    resolve the future -- an ``await`` inside such a range cannot
    orphan it."""
    ranges: list[tuple[int, int]] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try):
            continue
        guarded = any(_resolves(h, name) for h in node.handlers) or _resolves(
            ast.Module(body=node.finalbody, type_ignores=[]), name
        )
        if guarded:
            stmts = node.body + node.orelse
            if stmts:
                first = stmts[0].lineno
                last = max(s.end_lineno or s.lineno for s in stmts)
                ranges.append((first, last))
    return ranges


class FutureResolutionRule(Rule):
    ids = ("async/future-orphan", "async/future-exception-path")
    description = (
        "every created future must be resolved, registered or returned, "
        "and awaits before that point must be guarded by a try that "
        "resolves it -- no client future may hang on an exception path"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            creations = _future_creations(fn, aliases)
            if not creations:
                continue
            protected: dict[str, list[tuple[int, int]]] = {}
            for name, created in creations:
                evidence = _evidence_lines(fn, name, created)
                if not evidence:
                    yield Finding(
                        self.ids[0],
                        module.rel,
                        created.lineno,
                        created.col_offset,
                        f"future `{name}` is created but never resolved, "
                        "registered or returned -- its awaiter hangs "
                        "forever",
                    )
                    continue
                first = next(
                    (ln for ln in evidence if ln > created.lineno), evidence[-1]
                )
                if name not in protected:
                    protected[name] = _protected_ranges(fn, name)
                for node in walk_skipping_nested_defs(fn.body):
                    if not isinstance(node, ast.Await):
                        continue
                    if not (created.lineno < node.lineno < first):
                        continue
                    if _mentions(node.value, name):
                        continue
                    if any(
                        lo <= node.lineno <= hi for lo, hi in protected[name]
                    ):
                        continue
                    yield Finding(
                        self.ids[1],
                        module.rel,
                        node.lineno,
                        node.col_offset,
                        f"`await` between creating future `{name}` "
                        f"(line {created.lineno}) and resolving/"
                        f"registering it (line {first}): an exception "
                        "here orphans the future; guard with "
                        "try/finally or register it first",
                    )
