"""The rule registry.  To add a rule: subclass
:class:`~repro.analysis.staticcheck.rules.base.Rule` in a module here,
declare its ``ids`` and ``description``, and append an instance to
:data:`ALL_RULES` -- the engine, the CLI (``--list-rules``), directive
validation and the CI gate all read this one list."""

from repro.analysis.staticcheck.rules.asyncsafety import (
    BlockingCallRule,
    FutureResolutionRule,
)
from repro.analysis.staticcheck.rules.base import Rule
from repro.analysis.staticcheck.rules.determinism import (
    ModuleRandomRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.analysis.staticcheck.rules.layering import LayeringRule

#: every active rule, in report order
ALL_RULES: list[Rule] = [
    ModuleRandomRule(),
    UnseededRngRule(),
    WallClockRule(),
    BlockingCallRule(),
    FutureResolutionRule(),
    LayeringRule(),
]


def rule_ids() -> list[str]:
    """Every finding id the registry can emit, sorted."""
    out: list[str] = []
    for rule in ALL_RULES:
        out.extend(rule.ids)
    return sorted(out)


__all__ = [
    "ALL_RULES",
    "Rule",
    "rule_ids",
    "BlockingCallRule",
    "FutureResolutionRule",
    "ModuleRandomRule",
    "UnseededRngRule",
    "WallClockRule",
    "LayeringRule",
]
