"""Project-specific static analysis (the *universal* correctness gate).

The runtime oracles -- invariant audits, cache-vs-rescan differentials,
scalar≡vector wave transcripts -- check *executions*; they sample the
properties the serving tier depends on.  This package checks *code*:
every path, not just the ones a harness happened to drive.  Three rule
families hold the reproduction to the per-event worst-case standard of
self-healing guarantees (DEX / Xheal are claims about **every**
insertion and deletion, so the checker must quantify the same way):

* **determinism** -- engine layers may not consult global random state,
  unseeded generators or the wall clock (the transcript oracles and
  snapshot bit-identity silently lose meaning otherwise);
* **async-safety** -- no blocking calls inside ``async def``, and every
  created future must be resolved or registered before an exception
  can orphan it (the gateway/router "answered, never dropped"
  contract);
* **layering** -- the import DAG stays acyclic and ordered
  (core → net → service → harness; nothing imports ``cli``).

Run it as ``python -m repro.analysis.staticcheck [paths]``; suppress a
finding with ``# staticcheck: ignore[rule] -- reason`` (the reason is
mandatory; a bare ignore is itself a finding).  See
``docs/staticcheck.md`` for the rule catalogue and how to add a rule.

Deliberately stdlib-only (``ast`` + ``tokenize``): the checker sits in
the ``analysis`` layer and must not import upward.
"""

from repro.analysis.staticcheck.engine import (
    SCHEMA,
    Finding,
    ModuleInfo,
    Report,
    check_paths,
)
from repro.analysis.staticcheck.rules import ALL_RULES, rule_ids

__all__ = [
    "SCHEMA",
    "Finding",
    "ModuleInfo",
    "Report",
    "check_paths",
    "ALL_RULES",
    "rule_ids",
]
