"""Small statistics helpers for benchmark reporting.

The benchmarks never claim asymptotics from three data points; they report
per-size summaries plus two curve diagnostics used throughout the paper's
claims: a least-squares fit of ``a * log2(n) + b`` (for O(log n) shapes)
and the log-log slope (for polynomial shapes such as the Omega(n) type-2
spacing of Lemma 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    def row(self) -> str:
        return (
            f"n={self.count:<6d} mean={self.mean:8.2f} median={self.median:8.2f} "
            f"p95={self.p95:8.2f} max={self.maximum:8.2f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return Summary(0, float("nan"), float("nan"), float("nan"), float("nan"))
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def fit_log_curve(sizes: Sequence[float], values: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit ``value ~ a * log2(size) + b``; returns (a, b).

    For an O(log n) quantity, `a` is the constant in front of the log and
    the residuals stay bounded; benchmarks report `a` as the measured
    constant factor.
    """
    x = np.log2(np.asarray(list(sizes), dtype=np.float64))
    y = np.asarray(list(values), dtype=np.float64)
    if x.size < 2:
        return float("nan"), float("nan")
    a, b = np.polyfit(x, y, deg=1)
    return float(a), float(b)


def loglog_slope(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Slope of ``log(value)`` vs ``log(size)``: ~1 for linear growth,
    ~0 for constant, used to check Omega(n)/O(1) claims."""
    x = np.log(np.asarray(list(sizes), dtype=np.float64))
    y = np.log(np.maximum(np.asarray(list(values), dtype=np.float64), 1e-12))
    if x.size < 2:
        return float("nan")
    slope, _ = np.polyfit(x, y, deg=1)
    return float(slope)
