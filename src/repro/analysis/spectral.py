"""Spectral-gap computations.

``lambda_G`` in the paper is the second-largest eigenvalue of the
(normalized) adjacency matrix of the possibly irregular contraction
multigraph; the spectral gap is ``1 - lambda_G``.  For a d-regular graph
the normalized adjacency is simply ``A / d``; for the contractions DEX
produces we use the symmetric normalization ``D^{-1/2} A D^{-1/2}``
(same eigenvalues as the random-walk matrix ``D^{-1} A``).

Dense solvers are used below :data:`_DENSE_CUTOFF` vertices, sparse
Lanczos (``scipy.sparse.linalg.eigsh``) above -- per the HPC guides,
choosing the right linear-algebra primitive *is* the optimization.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import VirtualGraphError

_DENSE_CUTOFF = 600


def normalized_adjacency(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """``D^{-1/2} A D^{-1/2}`` with degrees = row sums (multiplicities and
    self-loop conventions are whatever the caller baked into ``A``)."""
    A = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = np.asarray(A.sum(axis=1)).ravel()
    if (degrees <= 0).any():
        raise VirtualGraphError("graph has an isolated vertex (zero degree)")
    inv_sqrt = 1.0 / np.sqrt(degrees)
    D = sp.diags(inv_sqrt)
    return sp.csr_matrix(D @ A @ D)


def second_eigenvalue(adjacency: sp.spmatrix | np.ndarray) -> float:
    """Second-largest eigenvalue of the normalized adjacency matrix.

    The largest is always 1 (eigenvector ``D^{1/2} 1``); the returned
    value is the paper's ``lambda_G``.
    """
    A = sp.csr_matrix(adjacency, dtype=np.float64)
    n = A.shape[0]
    if n == 1:
        return 0.0
    N = normalized_adjacency(A)
    if n <= _DENSE_CUTOFF:
        eigenvalues = np.linalg.eigvalsh(N.toarray())
        return float(eigenvalues[-2])
    # Lanczos for the two algebraically-largest eigenvalues.
    try:
        vals = spla.eigsh(N, k=2, which="LA", return_eigenvectors=False, tol=1e-8)
    except spla.ArpackNoConvergence as exc:  # pragma: no cover - rare
        vals = exc.eigenvalues
        if vals is None or len(vals) < 2:
            eigenvalues = np.linalg.eigvalsh(N.toarray())
            return float(eigenvalues[-2])
    vals = np.sort(vals)
    return float(vals[-2])


def spectral_gap(adjacency: sp.spmatrix | np.ndarray) -> float:
    """``1 - lambda_G``; the quantity Theorem 1 keeps constant."""
    return 1.0 - second_eigenvalue(adjacency)


class SpectralTracker:
    """Warm-started spectral-gap measurements across churn steps.

    Repeated measurements of a slowly-changing graph are the common case
    (the experiment runner samples every few steps); a cold dense solve is
    O(n^3) per call below the cutoff and a cold Lanczos re-discovers
    nearly the same Krylov subspace every time.  The tracker keeps the
    previous second eigenvector, maps it onto the current node ordering
    (churn only adds/removes a handful of rows between samples), and hands
    it to ARPACK as the starting vector -- so repeated measurements always
    take the sparse path regardless of the dense cutoff, converging in a
    few iterations.  Results agree with :func:`second_eigenvalue` to
    solver tolerance; only the iteration count changes.
    """

    #: below this many nodes ARPACK (k=2) is not applicable / not worth it
    _DENSE_FLOOR = 8

    def __init__(self, tol: float = 1e-8):
        self.tol = tol
        self._vec: np.ndarray | None = None
        self._index: dict[int, int] = {}

    def gap(self, order: list[int], adjacency: sp.spmatrix | np.ndarray) -> float:
        """``1 - lambda_G`` for the graph whose rows follow ``order``."""
        return 1.0 - self.second_eigenvalue(order, adjacency)

    def measure(self, graph) -> float:
        """``1 - lambda_G`` of a live :class:`DynamicMultigraph`.

        Pulls the graph's *incrementally patched* CSR (churn between
        samples only re-emits the dirty rows) and warm-starts Lanczos
        from the previous call's eigenvector -- the fast path for the
        repeated gap measurements of the experiment runner."""
        order, adjacency = graph.to_sparse_adjacency()
        return self.gap(order, adjacency)

    def second_eigenvalue(
        self, order: list[int], adjacency: sp.spmatrix | np.ndarray
    ) -> float:
        n = len(order)
        A = sp.csr_matrix(adjacency, dtype=np.float64)
        if A.shape[0] != n:
            raise VirtualGraphError(
                f"ordering of length {n} does not match matrix of size {A.shape[0]}"
            )
        if n == 1:
            return 0.0
        N = normalized_adjacency(A)
        if n < self._DENSE_FLOOR:
            eigenvalues, eigenvectors = np.linalg.eigh(N.toarray())
            self._remember(order, eigenvectors[:, -2])
            return float(eigenvalues[-2])
        v0 = self._warm_start(order, n)
        try:
            vals, vecs = spla.eigsh(N, k=2, which="LA", v0=v0, tol=self.tol)
        except spla.ArpackNoConvergence as exc:  # pragma: no cover - rare
            if exc.eigenvalues is not None and len(exc.eigenvalues) >= 2:
                vals = np.sort(exc.eigenvalues)
                return float(vals[-2])
            eigenvalues = np.linalg.eigvalsh(N.toarray())
            return float(eigenvalues[-2])
        second = int(np.argsort(vals)[-2])
        self._remember(order, vecs[:, second])
        return float(vals[second])

    def _remember(self, order: list[int], vec: np.ndarray) -> None:
        self._vec = np.asarray(vec, dtype=np.float64)
        self._index = {u: i for i, u in enumerate(order)}

    def _warm_start(self, order: list[int], n: int) -> np.ndarray | None:
        """Previous second eigenvector mapped onto the current ordering
        (rows for nodes that joined since default to the previous mean,
        keeping the vector roughly in the old Krylov subspace)."""
        if self._vec is None or not self._index:
            return None
        prev, index = self._vec, self._index
        fill = float(prev.mean())
        v0 = np.full(n, fill)
        hit = 0
        for i, u in enumerate(order):
            j = index.get(u)
            if j is not None:
                v0[i] = prev[j]
                hit += 1
        if hit == 0:
            return None
        norm = np.linalg.norm(v0)
        if not np.isfinite(norm) or norm < 1e-12:
            return None
        return v0 / norm


def spectral_gap_of_multigraph(
    nodes: list[int], edge_multiplicities: dict[tuple[int, int], int]
) -> float:
    """Spectral gap of a multigraph given as ``{(u, v): multiplicity}``
    with ``u <= v``; self-loops ``(u, u)`` contribute their multiplicity
    once to the diagonal (the p-cycle convention of [14])."""
    index = {u: i for i, u in enumerate(sorted(nodes))}
    n = len(index)
    if n == 0:
        raise VirtualGraphError("empty multigraph")
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for (u, v), mult in edge_multiplicities.items():
        if mult <= 0:
            continue
        i, j = index[u], index[v]
        if i == j:
            rows.append(i)
            cols.append(i)
            data.append(float(mult))
        else:
            rows.append(i)
            cols.append(j)
            data.append(float(mult))
            rows.append(j)
            cols.append(i)
            data.append(float(mult))
    A = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    return spectral_gap(A)
