"""Spectral-gap computations.

``lambda_G`` in the paper is the second-largest eigenvalue of the
(normalized) adjacency matrix of the possibly irregular contraction
multigraph; the spectral gap is ``1 - lambda_G``.  For a d-regular graph
the normalized adjacency is simply ``A / d``; for the contractions DEX
produces we use the symmetric normalization ``D^{-1/2} A D^{-1/2}``
(same eigenvalues as the random-walk matrix ``D^{-1} A``).

Dense solvers are used below :data:`_DENSE_CUTOFF` vertices, sparse
Lanczos (``scipy.sparse.linalg.eigsh``) above -- per the HPC guides,
choosing the right linear-algebra primitive *is* the optimization.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import VirtualGraphError

_DENSE_CUTOFF = 600


def normalized_adjacency(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """``D^{-1/2} A D^{-1/2}`` with degrees = row sums (multiplicities and
    self-loop conventions are whatever the caller baked into ``A``)."""
    A = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = np.asarray(A.sum(axis=1)).ravel()
    if (degrees <= 0).any():
        raise VirtualGraphError("graph has an isolated vertex (zero degree)")
    inv_sqrt = 1.0 / np.sqrt(degrees)
    D = sp.diags(inv_sqrt)
    return sp.csr_matrix(D @ A @ D)


def second_eigenvalue(adjacency: sp.spmatrix | np.ndarray) -> float:
    """Second-largest eigenvalue of the normalized adjacency matrix.

    The largest is always 1 (eigenvector ``D^{1/2} 1``); the returned
    value is the paper's ``lambda_G``.
    """
    A = sp.csr_matrix(adjacency, dtype=np.float64)
    n = A.shape[0]
    if n == 1:
        return 0.0
    N = normalized_adjacency(A)
    if n <= _DENSE_CUTOFF:
        eigenvalues = np.linalg.eigvalsh(N.toarray())
        return float(eigenvalues[-2])
    # Lanczos for the two algebraically-largest eigenvalues.
    try:
        vals = spla.eigsh(N, k=2, which="LA", return_eigenvectors=False, tol=1e-8)
    except spla.ArpackNoConvergence as exc:  # pragma: no cover - rare
        vals = exc.eigenvalues
        if vals is None or len(vals) < 2:
            eigenvalues = np.linalg.eigvalsh(N.toarray())
            return float(eigenvalues[-2])
    vals = np.sort(vals)
    return float(vals[-2])


def spectral_gap(adjacency: sp.spmatrix | np.ndarray) -> float:
    """``1 - lambda_G``; the quantity Theorem 1 keeps constant."""
    return 1.0 - second_eigenvalue(adjacency)


def spectral_gap_of_multigraph(
    nodes: list[int], edge_multiplicities: dict[tuple[int, int], int]
) -> float:
    """Spectral gap of a multigraph given as ``{(u, v): multiplicity}``
    with ``u <= v``; self-loops ``(u, u)`` contribute their multiplicity
    once to the diagonal (the p-cycle convention of [14])."""
    index = {u: i for i, u in enumerate(sorted(nodes))}
    n = len(index)
    if n == 0:
        raise VirtualGraphError("empty multigraph")
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for (u, v), mult in edge_multiplicities.items():
        if mult <= 0:
            continue
        i, j = index[u], index[v]
        if i == j:
            rows.append(i)
            cols.append(i)
            data.append(float(mult))
        else:
            rows.append(i)
            cols.append(j)
            data.append(float(mult))
            rows.append(j)
            cols.append(i)
            data.append(float(mult))
    A = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    return spectral_gap(A)
