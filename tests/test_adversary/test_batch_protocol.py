"""The Section 5 batch protocol: native ``next_batch`` emitters, the
single-action adapter, and the O(n) victim-selection rewrites (seed
stability + equivalence with the former sorted-scan streams)."""

import random

import pytest

from repro.adversary import (
    ChurnAction,
    CoordinatorAttack,
    DegreeAttack,
    FlashCrowd,
    LowLoadAttack,
    MassLeave,
    OscillatingChurn,
    SingleStepBatchAdapter,
    SpareDepleter,
    TraceAdversary,
    as_batch_adversary,
)
from repro.adversary.base import (
    MAX_ATTACH_PER_NODE,
    draw_delete_actions,
    draw_insert_actions,
)
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import TraceExhausted


class FakeView:
    """Minimal NetworkView over a fixed node set."""

    def __init__(self, n: int):
        self._nodes = dict.fromkeys(range(n))

    @property
    def size(self) -> int:
        return len(self._nodes)

    def nodes(self):
        return self._nodes.keys()

    def max_degree(self) -> int:
        return 0


class Scripted:
    """Single-action adversary replaying explicit ChurnActions."""

    def __init__(self, actions):
        self._actions = iter(actions)

    def next_action(self, view):
        action = next(self._actions, None)
        if action is None:
            raise TraceExhausted("script done")
        return action


def _ins(attach):
    return ChurnAction("insert", attach_to=attach)


def _del(node):
    return ChurnAction("delete", node=node)


class TestAdapter:
    def test_groups_same_kind_and_pushes_back_kind_change(self):
        view = FakeView(16)
        adapter = as_batch_adversary(
            Scripted([_ins(1), _ins(2), _del(3), _del(4), _ins(5)])
        )
        assert isinstance(adapter, SingleStepBatchAdapter)
        batches = []
        while True:
            batch = adapter.next_batch(view, 10)
            if not batch:
                break
            batches.append([(a.kind, a.node, a.attach_to) for a in batch])
        # The kind-change action is buffered, never lost.
        assert batches == [
            [("insert", None, 1), ("insert", None, 2)],
            [("delete", 3, None), ("delete", 4, None)],
            [("insert", None, 5)],
        ]

    def test_duplicate_victim_discarded_and_closes_batch(self):
        view = FakeView(16)
        adapter = as_batch_adversary(
            Scripted([_del(7), _del(7), _del(9)])
        )
        first = adapter.next_batch(view, 10)
        assert [a.node for a in first] == [7]
        # The duplicate is an artifact of the frozen view -- discarded,
        # not pushed back onto the next batch as a stale delete.
        second = adapter.next_batch(view, 10)
        assert [a.node for a in second] == [9]

    def test_attach_fanout_closes_batch_with_pushback(self):
        view = FakeView(16)
        actions = [_ins(3)] * (MAX_ATTACH_PER_NODE + 1)
        adapter = as_batch_adversary(Scripted(actions))
        first = adapter.next_batch(view, 10)
        assert len(first) == MAX_ATTACH_PER_NODE
        second = adapter.next_batch(view, 10)
        assert len(second) == 1  # the over-subscribed insert, next batch

    def test_max_batch_respected(self):
        view = FakeView(16)
        adapter = as_batch_adversary(Scripted([_ins(i % 8) for i in range(20)]))
        assert len(adapter.next_batch(view, 6)) == 6

    def test_exhaustion_returns_empty(self):
        view = FakeView(16)
        adapter = as_batch_adversary(Scripted([_ins(1)]))
        assert len(adapter.next_batch(view, 4)) == 1
        assert adapter.next_batch(view, 4) == []
        assert adapter.next_batch(view, 4) == []  # stays exhausted

    def test_adaptive_strategies_get_singleton_batches(self):
        net = DexNetwork.bootstrap(20, DexConfig(seed=31))
        for strategy in (CoordinatorAttack(seed=1), SpareDepleter(seed=1)):
            assert strategy.adaptive_within_batch
            adapter = as_batch_adversary(strategy)
            for _ in range(4):
                assert len(adapter.next_batch(net, 64)) == 1

    def test_native_batch_adversary_passes_through(self):
        trace = TraceAdversary(["insert"] * 4)
        assert as_batch_adversary(trace) is trace


def test_attach_bound_matches_batch_engine():
    """The adversary package mirrors the healing engine's attach fan-out
    bound without importing it; drift would silently degrade every
    batch to the bisect/per-step fallback."""
    from repro.core import multi

    assert MAX_ATTACH_PER_NODE == multi.MAX_ATTACH_PER_NODE


class TestDrawHelpers:
    def test_insert_draws_respect_fanout(self):
        view = FakeView(3)
        rng = random.Random(5)
        actions = draw_insert_actions(view, rng, 40)
        hosts: dict[int, int] = {}
        for action in actions:
            hosts[action.attach_to] = hosts.get(action.attach_to, 0) + 1
        assert all(count <= MAX_ATTACH_PER_NODE for count in hosts.values())
        # A saturated tiny view yields a short batch instead of spinning.
        assert len(actions) <= 3 * MAX_ATTACH_PER_NODE

    def test_delete_draws_are_distinct(self):
        view = FakeView(32)
        actions = draw_delete_actions(view, random.Random(5), 16)
        victims = [a.node for a in actions]
        assert len(victims) == len(set(victims)) == 16


class TestNativeEmitters:
    def test_trace_adversary_batches_runs(self):
        view = FakeView(32)
        trace = TraceAdversary(["insert"] * 5 + ["delete"] * 3, seed=2)
        first = trace.next_batch(view, 64)
        assert [a.kind for a in first] == ["insert"] * 5
        second = trace.next_batch(view, 64)
        assert [a.kind for a in second] == ["delete"] * 3
        assert trace.next_batch(view, 64) == []

    def test_trace_adversary_max_batch_splits_run(self):
        view = FakeView(32)
        trace = TraceAdversary(["insert"] * 5, seed=2)
        assert len(trace.next_batch(view, 4)) == 4
        assert len(trace.next_batch(view, 4)) == 1

    def test_trace_adversary_rejects_unknown_kind_in_batch(self):
        trace = TraceAdversary(["explode"])
        with pytest.raises(ValueError):
            trace.next_batch(FakeView(8), 4)

    def test_flash_crowd_surge_in_whole_batches(self):
        view = FakeView(64)
        crowd = FlashCrowd(surge=50, seed=3)
        sizes = [len(crowd.next_batch(view, 32)) for _ in range(2)]
        assert sizes == [32, 18]  # the surge, split only by max_batch

    def test_oscillating_bursts_are_batches(self):
        view = FakeView(64)
        osc = OscillatingChurn(burst=24, seed=3)
        first = osc.next_batch(view, 64)
        assert {a.kind for a in first} == {"insert"} and len(first) == 24
        second = osc.next_batch(view, 64)
        assert {a.kind for a in second} == {"delete"} and len(second) == 24
        third = osc.next_batch(view, 64)
        assert {a.kind for a in third} == {"insert"}

    def test_mass_leave_emits_departure_then_steady(self):
        view = FakeView(40)
        leave = MassLeave(fraction=0.5, seed=3)
        wave = leave.next_batch(view, 64)
        assert {a.kind for a in wave} == {"delete"}
        assert len(wave) == 20  # exactly down to target, no overshoot


class TestMassLeaveLatch:
    def test_departure_phase_latches(self):
        leave = MassLeave(fraction=0.5, seed=3)
        view = FakeView(20)
        for _ in range(10):
            assert leave.next_action(view).kind == "delete"
        # The departure budget (10 of 20) is spent.  Even with the view
        # still reporting 20 nodes -- steady churn grew it back -- the
        # exodus must NOT re-trigger (pre-fix it deleted whenever
        # size > target, making the documented steady phase unreachable).
        assert leave._departures_remaining(view) == 0
        kinds = {leave.next_action(view).kind for _ in range(20)}
        assert "insert" in kinds

    def test_shrinks_to_target_via_runner(self):
        net = DexNetwork.bootstrap(20, DexConfig(seed=103))
        leave = MassLeave(fraction=0.5, seed=3)
        for _ in range(10):
            action = leave.next_action(net)
            net.delete(action.node) if action.kind == "delete" else net.insert(
                attach_to=action.attach_to
            )
        assert net.size == 10
        net.insert()
        net.insert()
        # Latched: the next actions follow the steady 50/50 phase.
        kinds = [leave.next_action(net).kind for _ in range(20)]
        assert "insert" in kinds


def _drive_pair(make_adversary, steps=30, n0=20, seed=77):
    """Run the same strategy on two identically seeded networks and
    return both action streams (applying each action so the adaptive
    strategies see evolving state)."""
    streams = []
    for _ in range(2):
        net = DexNetwork.bootstrap(n0, DexConfig(seed=seed))
        adversary = make_adversary()
        stream = []
        for _ in range(steps):
            action = adversary.next_action(net)
            stream.append((action.kind, action.node, action.attach_to))
            if action.kind == "delete":
                net.delete(action.node)
            else:
                net.insert(attach_to=action.attach_to)
        streams.append(stream)
    return streams


class TestSeedStability:
    """The O(n) selection rewrites produce identical action streams for
    a fixed seed -- no dependence on set/dict iteration order."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: DegreeAttack(seed=5),
            lambda: LowLoadAttack(seed=5),
            lambda: SpareDepleter(seed=5),
            lambda: CoordinatorAttack(seed=5),
        ],
        ids=["degree", "low-load", "spare", "coordinator"],
    )
    def test_identical_streams(self, make):
        first, second = _drive_pair(make)
        assert first == second

    def test_degree_attack_matches_sorted_scan(self):
        net = DexNetwork.bootstrap(24, DexConfig(seed=41))
        attack = DegreeAttack(seed=2, insert_every=0)
        for _ in range(8):
            victim = attack.next_action(net).node
            reference = max(sorted(net.nodes()), key=net.degree_of)
            assert victim == reference
            net.delete(victim)

    def test_low_load_attack_matches_sorted_scan(self):
        net = DexNetwork.bootstrap(24, DexConfig(seed=43))
        attack = LowLoadAttack(seed=2)
        for _ in range(8):
            victim = attack.next_action(net).node
            reference = min(sorted(net.nodes()), key=net.load_of)
            assert victim == reference
            net.delete(victim)

    def test_spare_depleter_targets_spare(self):
        net = DexNetwork.bootstrap(24, DexConfig(seed=47))
        depleter = SpareDepleter(seed=2)
        deletes = 0
        for _ in range(20):
            action = depleter.next_action(net)
            if action.kind == "delete":
                assert action.node in net.overlay.old.spare
                deletes += 1
                net.delete(action.node)
            else:
                net.insert(attach_to=action.attach_to)
        assert deletes > 0
