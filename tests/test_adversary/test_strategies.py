"""Adversary strategies produce legal, goal-directed actions."""

import pytest

from repro.adversary import (
    CoordinatorAttack,
    DegreeAttack,
    DeleteOnly,
    FlashCrowd,
    InsertOnly,
    LowLoadAttack,
    MassLeave,
    OscillatingChurn,
    RandomChurn,
    SpareDepleter,
    TraceAdversary,
)
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import TraceExhausted
from repro.harness.runner import run_churn


@pytest.fixture
def net():
    return DexNetwork.bootstrap(20, DexConfig(seed=99))


ALL_STRATEGIES = [
    RandomChurn(0.5, seed=1),
    InsertOnly(seed=1),
    DeleteOnly(seed=1),
    OscillatingChurn(burst=10, seed=1),
    DegreeAttack(seed=1),
    CoordinatorAttack(seed=1),
    SpareDepleter(seed=1),
    LowLoadAttack(seed=1),
    FlashCrowd(surge=15, seed=1),
    MassLeave(fraction=0.4, seed=1),
]


class TestLegality:
    @pytest.mark.parametrize(
        "adversary", ALL_STRATEGIES, ids=lambda a: type(a).__name__
    )
    def test_actions_apply_cleanly(self, net, adversary):
        result = run_churn(net, adversary, steps=40, sample_every=20)
        assert result.skipped_actions == 0
        net.check_invariants()


class TestTargeting:
    def test_degree_attack_picks_max_degree(self, net):
        attack = DegreeAttack(seed=2, insert_every=0)
        action = attack.next_action(net)
        assert action.kind == "delete"
        assert net.degree_of(action.node) == net.max_degree()

    def test_coordinator_attack_targets_vertex0_host(self, net):
        attack = CoordinatorAttack(seed=2, insert_every=0)
        action = attack.next_action(net)
        assert action.kind == "delete"
        assert action.node == net.coordinator.node

    def test_low_load_attack_targets_min_load(self, net):
        attack = LowLoadAttack(seed=2)
        action = attack.next_action(net)
        assert action.kind == "delete"
        assert net.load_of(action.node) == min(net.loads().values())

    def test_spare_depleter_alternates(self, net):
        depleter = SpareDepleter(seed=2)
        kinds = [depleter.next_action(net).kind for _ in range(6)]
        assert "insert" in kinds and "delete" in kinds

    def test_trace_adversary_replays(self, net):
        trace = TraceAdversary(["insert", "insert", "delete"], seed=2)
        kinds = [trace.next_action(net).kind for _ in range(3)]
        assert kinds == ["insert", "insert", "delete"]
        # Exhaustion is an explicit signal, never a leaked StopIteration
        # (which PEP 479 would turn into RuntimeError in generators).
        with pytest.raises(TraceExhausted):
            trace.next_action(net)

    def test_trace_rejects_unknown(self, net):
        trace = TraceAdversary(["explode"])
        with pytest.raises(ValueError):
            trace.next_action(net)

    def test_mass_leave_shrinks(self, net):
        leave = MassLeave(fraction=0.5, seed=3)
        run_churn(net, leave, steps=10, sample_every=10)
        assert net.size == 10  # 20 -> target of 10, reached exactly

    def test_random_churn_validates_probability(self):
        with pytest.raises(ValueError):
            RandomChurn(1.5)
