"""Property tests for the incremental aggregates of DynamicMultigraph:
whatever sequence of node/edge mutations runs, every cached quantity
(degrees, live-node array, edge units, connections, neighbor CDFs) must
match a from-scratch recomputation, and the O(1) sampler must stay
uniform over the live nodes."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.net.topology import DynamicMultigraph


def _apply_random_ops(graph: DynamicMultigraph, rng: random.Random, ops: int) -> None:
    """Drive a random mutation sequence using only legal operations."""
    next_id = max(graph.nodes(), default=-1) + 1
    for _ in range(ops):
        live = list(graph.nodes())
        choice = rng.random()
        if not live or choice < 0.25:
            graph.add_node(next_id)
            next_id += 1
        elif choice < 0.55 and len(live) >= 1:
            u = rng.choice(live)
            v = rng.choice(live)
            graph.add_edge(u, v, mult=rng.randrange(1, 4))
        elif choice < 0.8:
            edges = [
                (u, v, m)
                for u in live
                for v, m in graph.neighbor_multiplicities(u)
                if v >= u
            ]
            if edges:
                u, v, m = rng.choice(edges)
                graph.remove_edge(u, v, mult=rng.randrange(1, m + 1))
        elif choice < 0.9:
            u = rng.choice(live)
            if graph.degree(u) == 0:
                graph.remove_node(u)
            else:
                graph.drop_node_with_edges(u)
        else:
            u = rng.choice(live)
            # exercise the CDF cache between mutations
            graph.neighbor_cdf(u)


class TestCachedAggregates:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), ops=st.integers(1, 120))
    def test_caches_match_recomputation(self, seed: int, ops: int):
        graph = DynamicMultigraph()
        _apply_random_ops(graph, random.Random(seed), ops)
        graph.verify_caches()  # raises TopologyError on any drift

    def test_cdf_cache_invalidated_by_mutation(self):
        graph = DynamicMultigraph()
        for u in range(3):
            graph.add_node(u)
        graph.add_edge(0, 1, mult=2)
        neighbors, cumulative, total = graph.neighbor_cdf(0)
        assert (neighbors, cumulative, total) == ([1], [2], 2)
        graph.add_edge(0, 2)
        neighbors, cumulative, total = graph.neighbor_cdf(0)
        assert (neighbors, cumulative, total) == ([1, 2], [2, 3], 3)
        graph.remove_edge(0, 1, mult=2)
        neighbors, cumulative, total = graph.neighbor_cdf(0)
        assert (neighbors, cumulative, total) == ([2], [1], 1)

    def test_cdf_includes_self_loop_weight(self):
        graph = DynamicMultigraph()
        graph.add_node(7)
        graph.add_edge(7, 7, mult=3)
        neighbors, cumulative, total = graph.neighbor_cdf(7)
        assert (neighbors, cumulative, total) == ([7], [3], 3)

    def test_degree_and_totals_are_o1_views(self):
        graph = DynamicMultigraph()
        for u in range(4):
            graph.add_node(u)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2, mult=2)
        graph.add_edge(3, 3, mult=2)
        assert graph.degree(1) == 3
        assert graph.num_edge_units == 5
        assert graph.num_connections == 2
        graph.remove_edge(1, 2, mult=2)
        assert graph.degree(1) == 1
        assert graph.num_edge_units == 3
        assert graph.num_connections == 1


class TestRandomNodeSampler:
    def test_empty_graph_raises(self):
        with pytest.raises(TopologyError):
            DynamicMultigraph().random_node(random.Random(0))

    def test_samples_only_live_nodes(self):
        graph = DynamicMultigraph()
        for u in range(10):
            graph.add_node(u)
        for u in range(0, 10, 2):
            graph.remove_node(u)
        rng = random.Random(3)
        assert {graph.random_node(rng) for _ in range(200)} == {1, 3, 5, 7, 9}

    def test_roughly_uniform(self):
        graph = DynamicMultigraph()
        for u in range(8):
            graph.add_node(u)
        rng = random.Random(42)
        counts = {u: 0 for u in range(8)}
        draws = 8000
        for _ in range(draws):
            counts[graph.random_node(rng)] += 1
        for u, c in counts.items():
            assert abs(c - draws / 8) < 0.25 * draws / 8, (u, c)

    def test_deterministic_for_fixed_seed(self):
        def sequence(seed: int) -> list[int]:
            graph = DynamicMultigraph()
            for u in range(32):
                graph.add_node(u)
            rng = random.Random(seed)
            out = []
            for i in range(50):
                out.append(graph.random_node(rng))
                if i == 25:
                    graph.remove_node(31)  # swap-remove mid-sequence
            return out

        assert sequence(9) == sequence(9)
        assert sequence(9) != sequence(10)


class TestIncrementalCSR:
    """The sparse-adjacency cache: patched from the dirty set, audited
    against a from-scratch build (PR 2)."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), ops=st.integers(1, 60))
    def test_patch_matches_rebuild(self, seed: int, ops: int):
        graph = DynamicMultigraph()
        rng = random.Random(seed)
        _apply_random_ops(graph, rng, ops)
        graph.to_sparse_adjacency()  # build + cache
        _apply_random_ops(graph, rng, ops)  # dirty it
        order, patched = graph.to_sparse_adjacency()
        graph.verify_sparse_cache()  # oracle: raises on drift
        order2, rebuilt = graph.to_sparse_adjacency(force_rebuild=True)
        assert order == order2
        assert (abs(patched - rebuilt)).nnz == 0

    def test_node_join_and_leave_are_patched(self):
        graph = DynamicMultigraph()
        for u in range(6):
            graph.add_node(u)
        for u in range(5):
            graph.add_edge(u, u + 1)
        order, A = graph.to_sparse_adjacency()
        assert order == list(range(6))
        graph.drop_node_with_edges(2)
        graph.add_node(9)
        graph.add_edge(9, 0, mult=3)
        order, A = graph.to_sparse_adjacency()
        assert order == [0, 1, 3, 4, 5, 9]
        assert A[order.index(0), order.index(9)] == 3.0
        assert A[order.index(1), :].sum() == 1.0  # lost its edge to 2
        graph.verify_sparse_cache()

    def test_force_rebuild_resets_cache(self):
        graph = DynamicMultigraph()
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, mult=2)
        _, a = graph.to_sparse_adjacency()
        _, b = graph.to_sparse_adjacency(force_rebuild=True)
        assert (abs(a - b)).nnz == 0
        graph.verify_sparse_cache()

    def test_nearly_sorted_order_merge_matches_rebuild(self):
        """The patch path merges the retained (sorted) ordering with
        the sorted dirty re-emissions instead of re-sorting every live
        id; interleaved joins and departures -- including ids that sort
        between, before, and after the retained ones -- must land in
        exactly the ordering ``force_rebuild=True`` computes."""
        graph = DynamicMultigraph()
        for u in range(0, 100, 4):  # sparse id space: 0, 4, 8, ...
            graph.add_node(u)
        ids = list(range(0, 100, 4))
        for a, b in zip(ids, ids[1:]):
            graph.add_edge(a, b)
        graph.to_sparse_adjacency()  # prime the cache
        # joins that interleave (2, 18), prepend (-1 not allowed: ids are
        # nonnegative -- use 1) and append (99); one departure mid-range
        for new in (2, 18, 1, 99):
            graph.add_node(new)
            graph.add_edge(new, 0)
        graph.drop_node_with_edges(8)
        assert 0 < 2 * graph.csr_dirty_count <= graph.num_nodes, (
            "test must exercise the merge patch path, not the rebuild"
        )
        order, patched = graph.to_sparse_adjacency()
        assert order == sorted(graph.nodes())
        order2, rebuilt = graph.to_sparse_adjacency(force_rebuild=True)
        assert order == order2
        assert (abs(patched - rebuilt)).nnz == 0
        graph.verify_sparse_cache()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), ops=st.integers(1, 40))
    def test_order_merge_under_random_churn(self, seed: int, ops: int):
        graph = DynamicMultigraph()
        rng = random.Random(seed)
        _apply_random_ops(graph, rng, 30)
        graph.to_sparse_adjacency()
        _apply_random_ops(graph, rng, ops)
        order, _ = graph.to_sparse_adjacency()
        assert order == sorted(graph.nodes())
        graph.verify_sparse_cache()


class TestSurvivorsConnected:
    """Vectorized remainder-connectivity (batch deletion validator)."""

    def _oracle(self, graph: DynamicMultigraph, victims: set[int]) -> bool:
        survivors = [u for u in graph.nodes() if u not in victims]
        if not survivors:
            return False
        seen = {survivors[0]}
        stack = [survivors[0]]
        while stack:
            u = stack.pop()
            for w in graph.distinct_neighbors(u):
                if w not in victims and w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == len(survivors)

    def test_bridge_node_disconnects(self):
        graph = DynamicMultigraph()
        for u in range(7):
            graph.add_node(u)
        for a, b in [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)]:
            graph.add_edge(a, b)
        graph.add_edge(0, 3)
        graph.add_edge(3, 4)  # 3 bridges the two triangles
        assert graph.survivors_connected(set()) is True
        assert graph.survivors_connected({3}) is False
        assert graph.survivors_connected({3, 4, 5, 6}) is True
        assert graph.survivors_connected(set(range(7))) is False

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_python_bfs(self, seed: int):
        rng = random.Random(seed)
        graph = DynamicMultigraph()
        n = rng.randrange(4, 24)
        for u in range(n):
            graph.add_node(u)
        for _ in range(rng.randrange(n, 3 * n)):
            graph.add_edge(rng.randrange(n), rng.randrange(n))
        victims = {u for u in range(n) if rng.random() < 0.3}
        assert graph.survivors_connected(victims) == self._oracle(graph, victims)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_delta_bfs_on_dirty_cache_matches_oracle(self, seed: int):
        """The adjacency-delta BFS: a stale CSR plus live-dict expansion
        of the dirtied rows (joins, departures, edge churn) must agree
        with the pure-Python oracle *without* patching the cache."""
        rng = random.Random(seed)
        graph = DynamicMultigraph()
        n = rng.randrange(6, 24)
        for u in range(n):
            graph.add_node(u)
        for _ in range(rng.randrange(n, 3 * n)):
            graph.add_edge(rng.randrange(n), rng.randrange(n))
        graph.to_sparse_adjacency()  # freeze a (soon stale) CSR
        nid = n
        for _ in range(rng.randrange(1, 6)):
            c = rng.random()
            live = list(graph.nodes())
            if c < 0.35:
                graph.add_node(nid)
                graph.add_edge(nid, rng.choice(live))
                nid += 1
            elif c < 0.55 and len(live) > 4:
                graph.drop_node_with_edges(rng.choice(live))
            else:
                graph.add_edge(rng.choice(live), rng.choice(live))
        dirty_before = graph.csr_dirty_count
        victims = {u for u in graph.nodes() if rng.random() < 0.3}
        got = graph.survivors_connected(victims)
        assert got == self._oracle(graph, victims)
        if 2 * dirty_before <= graph.num_nodes:
            # the delta traversal must not have paid the patch
            assert graph.csr_dirty_count == dirty_before
