"""The synchronous CONGEST engine: delivery semantics and validation."""

import pytest

from repro.errors import SimulationError
from repro.net.engine import SyncEngine
from repro.net.message import CONGEST_WORD_LIMIT, Message
from repro.net.topology import DynamicMultigraph


def path_graph(n: int) -> DynamicMultigraph:
    g = DynamicMultigraph()
    for u in range(n):
        g.add_node(u)
    for u in range(n - 1):
        g.add_edge(u, u + 1)
    return g


class _RelayProc:
    """Forwards a token to the right until it reaches the last node."""

    def __init__(self, last: int):
        self.last = last
        self.arrived_round: int | None = None

    def on_round(self, node, round_no, inbox):
        out = []
        for msg in inbox:
            if msg.kind == "token":
                if node == self.last:
                    self.arrived_round = round_no
                else:
                    out.append(Message.make(node, node + 1, "token"))
        return out


class TestEngine:
    def test_round_synchrony(self):
        g = path_graph(5)
        proc = _RelayProc(last=4)
        engine = SyncEngine(g, proc)
        rounds = engine.run([Message.make(0, 0, "token")])
        # wake-up in round 1, then one hop per round: arrives in round 5
        assert proc.arrived_round == 5
        assert rounds == 5
        assert engine.messages_sent == 4  # the self wake-up is free

    def test_ledger_charged(self):
        from repro.net.metrics import CostLedger

        g = path_graph(3)
        ledger = CostLedger()
        engine = SyncEngine(g, _RelayProc(last=2), ledger=ledger)
        engine.run([Message.make(0, 0, "token")])
        assert ledger.messages == 2
        assert ledger.rounds == 3

    def test_non_neighbor_message_rejected(self):
        g = path_graph(4)

        class Cheater:
            def on_round(self, node, round_no, inbox):
                return [Message.make(0, 3, "jump")] if inbox else []

        with pytest.raises(SimulationError):
            SyncEngine(g, Cheater()).run([Message.make(0, 0, "go")])

    def test_congest_limit_enforced(self):
        g = path_graph(2)

        class Chatty:
            def on_round(self, node, round_no, inbox):
                if inbox and inbox[0].kind == "go":
                    payload = {f"f{i}": i for i in range(CONGEST_WORD_LIMIT + 1)}
                    return [Message.make(0, 1, "big", **payload)]
                return []

        with pytest.raises(SimulationError):
            SyncEngine(g, Chatty()).run([Message.make(0, 0, "go")])

    def test_runaway_protocol_detected(self):
        g = path_graph(2)

        class PingPong:
            def on_round(self, node, round_no, inbox):
                return [Message.make(node, 1 - node, "ping") for _ in inbox]

        with pytest.raises(SimulationError):
            SyncEngine(g, PingPong()).run(
                [Message.make(0, 0, "ping")], max_rounds=50
            )


class TestMessage:
    def test_payload_roundtrip(self):
        m = Message.make(1, 2, "test", a=5, b="x")
        assert m.get("a") == 5
        assert m.get("b") == "x"
        assert m.get("missing", 42) == 42

    def test_size_words(self):
        assert Message.make(0, 1, "k", a=1).size_words() == 1
        assert Message.make(0, 1, "k", a=(1, 2, 3)).size_words() == 3

    def test_unserializable_payload(self):
        m = Message.make(0, 1, "k", bad=object())
        with pytest.raises(SimulationError):
            m.size_words()
