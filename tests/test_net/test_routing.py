"""Virtual-path routing and congestion-scheduled permutation routing."""

import math
import random

from repro.net.routing import permutation_routing, route_cost, route_real_path
from repro.virtual.pcycle import PCycle


class TestRouteCost:
    def test_identity_mapping_matches_distance(self):
        z = PCycle(53)
        assert route_cost(z, lambda v: v, 3, 40) == z.distance(3, 40)

    def test_contraction_shortens(self):
        z = PCycle(53)
        # 5 hosts; routing cost can only shrink under contraction (Fact 1)
        host_of = lambda v: v % 5  # noqa: E731
        for dst in (7, 22, 40):
            assert route_cost(z, host_of, 0, dst) <= z.distance(0, dst)

    def test_same_host_is_free(self):
        z = PCycle(53)
        assert route_cost(z, lambda v: 0, 3, 40) == 0

    def test_real_path_endpoints(self):
        z = PCycle(53)
        host_of = lambda v: v // 8  # noqa: E731
        path = route_real_path(z, host_of, 0, 40)
        assert path[0] == host_of(0)
        assert path[-1] == host_of(40)
        # consecutive entries are distinct (compressed)
        assert all(a != b for a, b in zip(path, path[1:]))


class TestPermutationRouting:
    def test_all_packets_delivered_and_counted(self):
        z = PCycle(101)
        rng = random.Random(0)
        dsts = list(range(101))
        rng.shuffle(dsts)
        packets = list(zip(range(101), dsts))
        rounds, messages = permutation_routing(z, packets, rng)
        total_distance = sum(z.distance(s, d) for s, d in packets)
        assert messages == total_distance
        assert rounds >= max(z.distance(s, d) for s, d in packets)

    def test_polylog_rounds_on_expander(self):
        """The stand-in for Cor 7.7.3 of [28]: a full permutation routes
        in polylog rounds on the constant-degree expander."""
        p = 199
        z = PCycle(p)
        rng = random.Random(1)
        dsts = list(range(p))
        rng.shuffle(dsts)
        rounds, _ = permutation_routing(z, list(zip(range(p), dsts)), rng)
        assert rounds <= 12 * math.ceil(math.log2(p)) ** 2

    def test_empty_and_trivial(self):
        z = PCycle(23)
        assert permutation_routing(z, []) == (0, 0)
        rounds, messages = permutation_routing(z, [(5, 5)])
        assert (rounds, messages) == (0, 0)

    def test_contention_on_shared_edge(self):
        z = PCycle(23)
        # many packets from the same source must serialize
        packets = [(0, 11)] * 6
        rounds, messages = permutation_routing(z, packets)
        assert messages == 6 * z.distance(0, 11)
        assert rounds >= 6  # at most one per round leaves vertex 0 per edge
