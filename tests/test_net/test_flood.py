"""Flood/echo aggregation: the engine execution and the analytic cost
model must agree (DESIGN.md substitution 1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flood import flood_echo_analytic, flood_echo_engine
from repro.net.metrics import CostLedger
from repro.net.topology import DynamicMultigraph


def random_connected_graph(n: int, extra: int, seed: int) -> DynamicMultigraph:
    rng = random.Random(seed)
    g = DynamicMultigraph()
    for u in range(n):
        g.add_node(u)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        g.add_edge(order[i], order[rng.randrange(i)])
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        if g.multiplicity(u, v) == 0:
            g.add_edge(u, v)
    return g


class TestAgreement:
    @given(
        st.integers(min_value=2, max_value=24),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_engine_matches_analytic(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        origin = seed % n
        value_of = lambda u: u + 1  # noqa: E731

        ledger_engine = CostLedger()
        result_engine = flood_echo_engine(g, origin, value_of, ledger_engine)
        ledger_analytic = CostLedger()
        result_analytic = flood_echo_analytic(g, origin, value_of, ledger_analytic)

        assert result_engine == result_analytic == sum(range(1, n + 1))
        assert ledger_engine.messages == ledger_analytic.messages
        # rounds agree up to the +2 handshake slack of the closed form
        assert abs(ledger_engine.rounds - ledger_analytic.rounds) <= 3


class TestFloodBasics:
    def test_single_node(self):
        g = DynamicMultigraph()
        g.add_node(0)
        assert flood_echo_engine(g, 0, lambda u: 7) == 7
        assert flood_echo_analytic(g, 0, lambda u: 7) == 7

    def test_counts_predicate_membership(self):
        g = random_connected_graph(10, 5, 3)
        member = {2, 4, 6}
        count = flood_echo_engine(g, 0, lambda u: 1 if u in member else 0)
        assert count == 3

    def test_messages_scale_with_edges(self):
        sparse = random_connected_graph(20, 0, 1)
        dense = random_connected_graph(20, 60, 1)
        l1, l2 = CostLedger(), CostLedger()
        flood_echo_analytic(sparse, 0, lambda u: 1, l1)
        flood_echo_analytic(dense, 0, lambda u: 1, l2)
        assert l2.messages > l1.messages
