"""Dynamic multigraph: multiplicities, self-loop conventions, and
topology-change accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.net.topology import DynamicMultigraph


def triangle() -> DynamicMultigraph:
    g = DynamicMultigraph()
    for u in range(3):
        g.add_node(u)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(0, 2)
    return g


class TestNodes:
    def test_add_remove(self):
        g = DynamicMultigraph()
        g.add_node(7)
        assert g.has_node(7) and g.num_nodes == 1
        g.remove_node(7)
        assert not g.has_node(7)

    def test_duplicate_add_raises(self):
        g = DynamicMultigraph()
        g.add_node(1)
        with pytest.raises(TopologyError):
            g.add_node(1)

    def test_remove_with_edges_raises(self):
        g = triangle()
        with pytest.raises(TopologyError):
            g.remove_node(0)

    def test_drop_node_with_edges(self):
        g = triangle()
        lost = g.drop_node_with_edges(0)
        assert dict(lost) == {1: 1, 2: 1}
        assert g.num_nodes == 2
        assert g.multiplicity(1, 2) == 1

    def test_missing_node_raises(self):
        g = DynamicMultigraph()
        with pytest.raises(TopologyError):
            g.degree(5)


class TestEdges:
    def test_multiplicity_counting(self):
        g = triangle()
        g.add_edge(0, 1, mult=2)
        assert g.multiplicity(0, 1) == 3
        assert g.multiplicity(1, 0) == 3
        g.remove_edge(0, 1, mult=2)
        assert g.multiplicity(0, 1) == 1

    def test_remove_more_than_present_raises(self):
        g = triangle()
        with pytest.raises(TopologyError):
            g.remove_edge(0, 1, mult=2)

    def test_self_loop_weight(self):
        g = triangle()
        g.add_edge(0, 0, mult=1)  # virtual self-loop: degree +1
        assert g.degree(0) == 3
        g.add_edge(0, 0, mult=2)  # contracted pair: degree +2
        assert g.degree(0) == 5
        assert g.connection_count(0) == 2  # loops are not connections

    def test_degree_sums_multiplicities(self):
        g = triangle()
        g.add_edge(0, 1, mult=3)
        assert g.degree(0) == 2 + 3
        assert g.connection_count(0) == 2

    def test_distinct_neighbors_excludes_loops(self):
        g = triangle()
        g.add_edge(1, 1)
        assert sorted(g.distinct_neighbors(1)) == [0, 2]
        # but the loop shows in the multiplicity view (for walks)
        assert (1, 1) in g.neighbor_multiplicities(1)

    def test_nonpositive_multiplicity_rejected(self):
        g = triangle()
        with pytest.raises(TopologyError):
            g.add_edge(0, 1, mult=0)
        with pytest.raises(TopologyError):
            g.remove_edge(0, 1, mult=-1)


class TestTopologyChanges:
    def test_connection_transitions_counted(self):
        g = DynamicMultigraph()
        g.add_node(0)
        g.add_node(1)
        base = g.topology_changes  # 2 node events
        g.add_edge(0, 1)  # new connection: +1
        g.add_edge(0, 1)  # multiplicity bump: +0
        g.remove_edge(0, 1)  # still connected: +0
        g.remove_edge(0, 1)  # connection destroyed: +1
        assert g.topology_changes - base == 2

    def test_self_loops_never_counted(self):
        g = DynamicMultigraph()
        g.add_node(0)
        base = g.topology_changes
        g.add_edge(0, 0)
        g.remove_edge(0, 0)
        assert g.topology_changes == base


class TestQueries:
    def test_bfs_and_eccentricity(self):
        g = triangle()
        g.add_node(3)
        g.add_edge(2, 3)
        assert g.bfs_distances(0) == {0: 0, 1: 1, 2: 1, 3: 2}
        assert g.eccentricity(0) == 2
        assert g.is_connected()

    def test_disconnected(self):
        g = triangle()
        g.add_node(9)
        assert not g.is_connected()
        with pytest.raises(TopologyError):
            g.eccentricity(0)

    def test_counts(self):
        g = triangle()
        g.add_edge(0, 1)  # double edge
        g.add_edge(2, 2)  # loop
        assert g.num_connections == 3
        assert g.num_edge_units == 5
        assert g.max_degree() == g.degree(1) if g.degree(1) >= g.degree(2) else True

    def test_sparse_export(self):
        g = triangle()
        g.add_edge(0, 1)
        g.add_edge(2, 2, mult=2)
        order, A = g.to_sparse_adjacency()
        assert order == [0, 1, 2]
        assert A[0, 1] == 2 and A[1, 0] == 2
        assert A[2, 2] == 2
        assert (A != A.T).nnz == 0

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30))
    @settings(max_examples=60)
    def test_symmetry_invariant(self, edges):
        g = DynamicMultigraph()
        for u in range(6):
            g.add_node(u)
        for u, v in edges:
            g.add_edge(u, v)
        for u in range(6):
            for v, m in g.neighbor_multiplicities(u):
                if u != v:
                    assert g.multiplicity(v, u) == m
