"""Random-walk primitives: lengths, predicates, stationarity, and the
congestion-limited parallel walks of Lemma 11."""

import math
import random
from collections import Counter

import pytest

from repro.errors import TopologyError
from repro.net.topology import DynamicMultigraph
from repro.net.walks import parallel_walks, random_walk, virtual_walk
from repro.virtual.pcycle import PCycle


def pcycle_graph(p: int) -> DynamicMultigraph:
    z = PCycle(p)
    g = DynamicMultigraph()
    for u in z.vertices():
        g.add_node(u)
    for a, b in z.edges():
        g.add_edge(a, b, mult=1)
    return g


class TestRandomWalk:
    def test_walk_length_respected(self):
        g = pcycle_graph(23)
        rng = random.Random(0)
        result = random_walk(g, 0, 10, rng)
        assert result.hops == 10
        assert result.found  # no predicate: completing == success

    def test_stop_predicate(self):
        g = pcycle_graph(23)
        rng = random.Random(1)
        target = {5}
        result = random_walk(g, 5, 500, rng, stop=lambda u: u in target)
        assert result.found
        assert result.end == 5
        assert result.hops >= 1  # the walk leaves before checking

    def test_predicate_never_satisfied(self):
        g = pcycle_graph(23)
        result = random_walk(g, 0, 8, random.Random(2), stop=lambda u: False)
        assert not result.found
        assert result.hops == 8

    def test_excluded_nodes_never_visited(self):
        g = pcycle_graph(23)
        excluded = frozenset({1, 22})  # both neighbors on the ring of 0
        result = random_walk(
            g, 0, 50, random.Random(3), excluded=excluded, keep_trace=True
        )
        assert excluded.isdisjoint(result.trace)

    def test_stuck_token_stays(self):
        g = DynamicMultigraph()
        g.add_node(0)
        g.add_node(1)
        g.add_edge(0, 1)
        result = random_walk(g, 0, 5, random.Random(0), excluded=frozenset({1}))
        assert result.end == 0
        assert not result.found

    def test_negative_length_rejected(self):
        g = pcycle_graph(23)
        with pytest.raises(TopologyError):
            random_walk(g, 0, -1, random.Random(0))

    def test_distribution_approaches_stationary(self):
        """On the 3-regular p-cycle the stationary distribution is
        uniform; long walks should spread mass broadly (chi-square-ish
        sanity, not a strict test)."""
        p = 53
        g = pcycle_graph(p)
        rng = random.Random(4)
        counts = Counter(
            random_walk(g, 0, 6 * math.ceil(math.log2(p)), rng).end
            for _ in range(2000)
        )
        assert len(counts) > p // 2  # visited most of the graph
        assert max(counts.values()) < 2000 * 10 / p  # nothing hogs the mass


class TestVirtualWalk:
    def test_hops_counted_only_across_hosts(self):
        z = PCycle(23)
        host_of = lambda v: v // 4  # noqa: E731  contiguous arcs
        end, hops = virtual_walk(z, host_of, 0, 30, random.Random(5))
        assert 0 <= end < 23
        assert hops <= 30

    def test_single_host_costs_nothing(self):
        z = PCycle(23)
        end, hops = virtual_walk(z, lambda v: 0, 0, 50, random.Random(6))
        assert hops == 0

    def test_stop_predicate(self):
        z = PCycle(23)
        end, hops = virtual_walk(
            z, lambda v: v, 0, 500, random.Random(7), stop=lambda v, h: v == 11
        )
        assert end == 11


class TestParallelWalks(object):
    def test_all_tokens_complete(self):
        p = 53
        g = pcycle_graph(p)
        starts = list(range(p))
        length = 2 * math.ceil(math.log2(p))
        ends, rounds = parallel_walks(g, starts, length, random.Random(8))
        assert len(ends) == p
        assert rounds >= length

    def test_lemma11_round_bound(self):
        """n simultaneous walks of Theta(log n) complete in O(log^2 n)
        rounds (Lemma 11); check with a generous constant."""
        p = 101
        g = pcycle_graph(p)
        length = math.ceil(math.log2(p))
        _, rounds = parallel_walks(g, list(range(p)), length, random.Random(9))
        assert rounds <= 30 * math.ceil(math.log2(p)) ** 2

    def test_single_token_no_congestion(self):
        g = pcycle_graph(23)
        _, rounds = parallel_walks(g, [0], 10, random.Random(10))
        assert rounds == 10
