"""Random-walk primitives: lengths, predicates, stationarity, and the
congestion-limited parallel walks of Lemma 11."""

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.net.topology import DynamicMultigraph
from repro.net.walks import parallel_walks, random_walk, virtual_walk
from repro.virtual.pcycle import PCycle


def pcycle_graph(p: int) -> DynamicMultigraph:
    z = PCycle(p)
    g = DynamicMultigraph()
    for u in z.vertices():
        g.add_node(u)
    for a, b in z.edges():
        g.add_edge(a, b, mult=1)
    return g


class TestRandomWalk:
    def test_walk_length_respected(self):
        g = pcycle_graph(23)
        rng = random.Random(0)
        result = random_walk(g, 0, 10, rng)
        assert result.hops == 10
        assert result.found  # no predicate: completing == success

    def test_stop_predicate(self):
        g = pcycle_graph(23)
        rng = random.Random(1)
        target = {5}
        result = random_walk(g, 5, 500, rng, stop=lambda u: u in target)
        assert result.found
        assert result.end == 5
        assert result.hops >= 1  # the walk leaves before checking

    def test_predicate_never_satisfied(self):
        g = pcycle_graph(23)
        result = random_walk(g, 0, 8, random.Random(2), stop=lambda u: False)
        assert not result.found
        assert result.hops == 8

    def test_excluded_nodes_never_visited(self):
        g = pcycle_graph(23)
        excluded = frozenset({1, 22})  # both neighbors on the ring of 0
        result = random_walk(
            g, 0, 50, random.Random(3), excluded=excluded, keep_trace=True
        )
        assert excluded.isdisjoint(result.trace)

    def test_stuck_token_stays(self):
        g = DynamicMultigraph()
        g.add_node(0)
        g.add_node(1)
        g.add_edge(0, 1)
        result = random_walk(g, 0, 5, random.Random(0), excluded=frozenset({1}))
        assert result.end == 0
        assert not result.found

    def test_negative_length_rejected(self):
        g = pcycle_graph(23)
        with pytest.raises(TopologyError):
            random_walk(g, 0, -1, random.Random(0))

    def test_distribution_approaches_stationary(self):
        """On the 3-regular p-cycle the stationary distribution is
        uniform; long walks should spread mass broadly (chi-square-ish
        sanity, not a strict test)."""
        p = 53
        g = pcycle_graph(p)
        rng = random.Random(4)
        counts = Counter(
            random_walk(g, 0, 6 * math.ceil(math.log2(p)), rng).end
            for _ in range(2000)
        )
        assert len(counts) > p // 2  # visited most of the graph
        assert max(counts.values()) < 2000 * 10 / p  # nothing hogs the mass


class TestVirtualWalk:
    def test_hops_counted_only_across_hosts(self):
        z = PCycle(23)
        host_of = lambda v: v // 4  # noqa: E731  contiguous arcs
        end, hops = virtual_walk(z, host_of, 0, 30, random.Random(5))
        assert 0 <= end < 23
        assert hops <= 30

    def test_single_host_costs_nothing(self):
        z = PCycle(23)
        end, hops = virtual_walk(z, lambda v: 0, 0, 50, random.Random(6))
        assert hops == 0

    def test_stop_predicate(self):
        z = PCycle(23)
        end, hops = virtual_walk(
            z, lambda v: v, 0, 500, random.Random(7), stop=lambda v, h: v == 11
        )
        assert end == 11


class TestParallelWalks(object):
    def test_all_tokens_complete(self):
        p = 53
        g = pcycle_graph(p)
        starts = list(range(p))
        length = 2 * math.ceil(math.log2(p))
        ends, rounds = parallel_walks(g, starts, length, random.Random(8))
        assert len(ends) == p
        assert rounds >= length

    def test_lemma11_round_bound(self):
        """n simultaneous walks of Theta(log n) complete in O(log^2 n)
        rounds (Lemma 11); check with a generous constant."""
        p = 101
        g = pcycle_graph(p)
        length = math.ceil(math.log2(p))
        _, rounds = parallel_walks(g, list(range(p)), length, random.Random(9))
        assert rounds <= 30 * math.ceil(math.log2(p)) ** 2

    def test_single_token_no_congestion(self):
        g = pcycle_graph(23)
        _, rounds = parallel_walks(g, [0], 10, random.Random(10))
        assert rounds == 10


class TestScheduledWalks:
    """The token scheduler behind the batch healing engine."""

    def test_stop_predicates_per_token(self):
        from repro.net.walks import TokenSpec, scheduled_walks

        g = pcycle_graph(53)
        targets = set(range(0, 53, 2))
        tokens = [
            TokenSpec(start=u, length=200, stop=lambda m: m in targets)
            for u in range(0, 53, 7)
        ]
        results, rounds = scheduled_walks(g, tokens, random.Random(5))
        assert rounds >= 1
        for r in results:
            assert r.found
            assert r.end in targets
            assert r.hops >= 1

    def test_excluded_nodes_respected(self):
        from repro.net.walks import TokenSpec, scheduled_walks

        g = pcycle_graph(23)
        tokens = [
            TokenSpec(start=0, length=30, excluded=frozenset({1}))
            for _ in range(4)
        ]
        results, _ = scheduled_walks(g, tokens, random.Random(6))
        assert all(r.end != 1 for r in results)

    def test_zero_length_tokens_finish_instantly(self):
        from repro.net.walks import TokenSpec, scheduled_walks

        g = pcycle_graph(23)
        results, rounds = scheduled_walks(
            g, [TokenSpec(start=3, length=0)], random.Random(7)
        )
        assert rounds == 0
        assert results[0].end == 3
        assert results[0].hops == 0

    def test_congestion_blocks_are_retried(self):
        """Two tokens forced over the same two-node bridge: with only
        one directed edge each way, at most one advances per round, so
        completion takes more rounds than the walk length."""
        from repro.net.walks import TokenSpec, scheduled_walks

        g = DynamicMultigraph()
        g.add_node(0)
        g.add_node(1)
        g.add_edge(0, 1)
        tokens = [TokenSpec(start=0, length=4) for _ in range(3)]
        _, rounds = scheduled_walks(g, tokens, random.Random(8))
        assert rounds > 4


class TestRunWave:
    """The specialized membership-set wave used by core.multi."""

    def test_found_tokens_end_in_member_set(self):
        from repro.net.walks import run_wave

        g = pcycle_graph(53)
        members = set(range(0, 53, 3))
        ends, founds, hops, rounds = run_wave(
            g, list(range(0, 53, 5)), 100, members, random.Random(9)
        )
        assert all(founds)
        assert all(end in members for end in ends)
        assert hops >= len(ends)
        assert rounds >= 1

    def test_excluded_node_never_entered(self):
        from repro.net.walks import run_wave

        g = pcycle_graph(23)
        # member set == the excluded node: the token can never stop there
        ends, founds, _, _ = run_wave(
            g, [0], 40, {1}, random.Random(10), excluded=[1]
        )
        assert founds == [False]
        assert ends[0] != 1

    def test_empty_member_set_walks_full_length(self):
        from repro.net.walks import run_wave

        g = pcycle_graph(23)
        ends, founds, hops, rounds = run_wave(
            g, [0, 5], 12, frozenset(), random.Random(11)
        )
        assert founds == [False, False]
        assert hops == 24
        assert rounds >= 12


def random_multigraph(rng: random.Random) -> DynamicMultigraph:
    g = DynamicMultigraph()
    n = rng.randrange(3, 40)
    for u in range(n):
        g.add_node(u)
    for _ in range(rng.randrange(n, 4 * n)):
        g.add_edge(rng.randrange(n), rng.randrange(n), mult=rng.randrange(1, 3))
    return g


class TestWaveEngines:
    """The lockstep vector engine vs. the scalar reference: one draw
    protocol, bit-identical transcripts for a fixed seed."""

    def wave_args(self, rng: random.Random, g: DynamicMultigraph):
        n = g.num_nodes
        k = rng.randrange(1, 30)
        starts = [rng.randrange(n) for _ in range(k)]
        length = rng.randrange(0, 12)
        members = {u for u in range(n) if rng.random() < 0.2}
        excluded = [
            rng.randrange(n) if rng.random() < 0.5 else None for _ in range(k)
        ]
        return starts, length, members, excluded

    def test_engines_are_transcript_identical(self):
        from repro.net.walks import run_wave

        for seed in range(40):
            rng = random.Random(seed)
            g = random_multigraph(rng)
            starts, length, members, excluded = self.wave_args(rng, g)
            scalar_t: list = []
            vector_t: list = []
            scalar = run_wave(
                g, starts, length, members, random.Random(7 * seed + 1),
                excluded, engine="scalar", transcript=scalar_t,
            )
            vector = run_wave(
                g, starts, length, members, random.Random(7 * seed + 1),
                excluded, engine="vector", transcript=vector_t,
            )
            assert list(scalar[0]) == list(vector[0]), seed
            assert list(scalar[1]) == list(vector[1]), seed
            assert scalar[2:] == vector[2:], seed
            assert scalar_t == vector_t, seed

    def test_auto_engine_matches_forced_engines(self):
        from repro.net.walks import run_wave

        g = pcycle_graph(53)
        starts = list(range(53)) * 2  # above VECTOR_MIN_TOKENS
        members = set(range(0, 53, 9))
        auto = run_wave(g, starts, 20, members, random.Random(3))
        forced = run_wave(g, starts, 20, members, random.Random(3), engine="vector")
        assert (list(auto[0]), list(auto[1]), auto[2], auto[3]) == (
            list(forced[0]), list(forced[1]), forced[2], forced[3],
        )

    def test_unknown_engine_rejected(self):
        from repro.net.walks import run_wave

        g = pcycle_graph(23)
        with pytest.raises(TopologyError, match="wave engine"):
            run_wave(g, [0], 5, set(), random.Random(0), engine="simd")

    def test_dead_start_rejected_by_both_engines(self):
        from repro.net.walks import run_wave

        g = pcycle_graph(23)
        for engine in ("scalar", "vector"):
            with pytest.raises(TopologyError, match="does not exist"):
                run_wave(g, [0, 999], 5, set(), random.Random(0), engine=engine)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), engine=st.sampled_from(["scalar", "vector"]))
    def test_no_directed_edge_double_booked(self, seed: int, engine: str):
        """Lemma 11's congestion rule, checked from the transcript: in
        any round, at most one token crosses each directed edge (the
        edge-claim arrays must never double-book)."""
        from repro.net.walks import run_wave

        rng = random.Random(seed)
        g = random_multigraph(rng)
        starts, length, members, excluded = self.wave_args(rng, g)
        transcript: list = []
        run_wave(
            g, starts, length, members, random.Random(seed + 1),
            excluded, engine=engine, transcript=transcript,
        )
        prev = list(starts)
        for positions, claimed in transcript:
            crossings = [
                (a, b) for a, b in zip(prev, positions) if a != b
            ]
            assert len(crossings) == len(set(crossings)), (
                f"directed edge double-booked in round: {crossings}"
            )
            # every actual crossing was claimed, and claims are unique
            assert set(crossings) <= set(claimed)
            assert len(claimed) == len(set(claimed))
            prev = list(positions)
