"""Cost ledgers and the per-step metrics log."""

from repro.net.metrics import CostLedger, MetricsLog


class TestCostLedger:
    def test_charge_walk(self):
        ledger = CostLedger()
        ledger.charge_walk(7)
        assert ledger.walks == 1
        assert ledger.walk_hops == 7
        assert ledger.messages == 7
        assert ledger.rounds == 7

    def test_charge_route(self):
        ledger = CostLedger()
        ledger.charge_route(5)
        assert ledger.messages == 5 and ledger.rounds == 5
        assert ledger.walks == 0

    def test_charge_flood(self):
        ledger = CostLedger()
        ledger.charge_flood(rounds=10, messages=200)
        assert ledger.floods == 1
        assert ledger.rounds == 10 and ledger.messages == 200

    def test_charge_parallel_rounds_are_additive_here(self):
        # charge_parallel models one batch: rounds = the batch max,
        # added onto whatever the step already used
        ledger = CostLedger()
        ledger.charge_route(3)
        ledger.charge_parallel(rounds=4, messages=40)
        assert ledger.rounds == 7
        assert ledger.messages == 43

    def test_add_accumulates_all_fields(self):
        a = CostLedger(rounds=1, messages=2, topology_changes=3, walks=4)
        b = CostLedger(rounds=10, messages=20, topology_changes=30, walks=40)
        a.add(b)
        assert (a.rounds, a.messages, a.topology_changes, a.walks) == (11, 22, 33, 44)

    def test_as_dict_roundtrip(self):
        ledger = CostLedger(rounds=5, retries=2)
        d = ledger.as_dict()
        assert d["rounds"] == 5 and d["retries"] == 2
        assert set(d) >= {"rounds", "messages", "topology_changes", "walks"}


class TestMetricsLog:
    def _log(self):
        log = MetricsLog()
        for messages in (10, 20, 60):
            log.append(CostLedger(messages=messages, rounds=messages // 10))
        return log

    def test_totals(self):
        assert self._log().totals().messages == 90

    def test_series_and_amortized(self):
        log = self._log()
        assert log.series("messages") == [10, 20, 60]
        assert log.amortized("messages") == 30.0
        assert log.worst("messages") == 60

    def test_empty_log(self):
        log = MetricsLog()
        assert log.amortized("messages") == 0.0
        assert log.worst("rounds") == 0
        assert log.totals().messages == 0

    def test_extend(self):
        log = MetricsLog()
        log.extend([CostLedger(messages=1), CostLedger(messages=2)])
        assert log.totals().messages == 3
