"""Baselines: structural sanity and the Table 1 cost shapes."""

import math

import numpy as np
import pytest

from repro.adversary import RandomChurn
from repro.analysis.spectral import spectral_gap
from repro.baselines import (
    FlipChainOverlay,
    FloodingExpander,
    GlobalKnowledgeExpander,
    LawSiuNetwork,
    SkipGraphOverlay,
)
from repro.baselines.interface import snapshot
from repro.errors import AdversaryError
from repro.harness.runner import run_churn


class TestLawSiu:
    def test_degree_exactly_2d(self):
        net = LawSiuNetwork(20, d=3, seed=1)
        for _ in range(30):
            net.insert()
        for u in net.nodes():
            assert net.degree_of(u) == 6  # 2 edges per Hamiltonian cycle

    def test_cycles_stay_hamiltonian(self):
        net = LawSiuNetwork(15, d=2, seed=2)
        for _ in range(10):
            net.insert()
        for _ in range(8):
            net.delete(next(iter(sorted(net.nodes()))))
        for succ in net.succ:
            # follow each cycle: must visit every node exactly once
            start = next(iter(succ))
            seen = {start}
            at = succ[start]
            while at != start:
                assert at not in seen or at == start
                seen.add(at)
                at = succ[at]
            assert seen == set(net.nodes())

    def test_insert_cost_logarithmic(self):
        net = LawSiuNetwork(64, d=3, seed=3)
        ledger = net.insert()
        assert ledger.messages <= 3 * 3 * math.ceil(math.log2(64)) + 10

    def test_gap_positive_initially(self):
        net = LawSiuNetwork(64, d=3, seed=4)
        assert spectral_gap(net.adjacency()) > 0.01

    def test_too_small_rejected(self):
        with pytest.raises(AdversaryError):
            LawSiuNetwork(2)


class TestSkipGraph:
    def test_degree_logarithmic(self):
        net = SkipGraphOverlay(64, seed=5)
        for _ in range(64):
            net.insert()
        max_deg = net.max_degree()
        assert max_deg <= 6 * math.ceil(math.log2(net.size))
        assert max_deg > 3  # strictly more than constant

    def test_join_cost_polylog(self):
        net = SkipGraphOverlay(128, seed=6)
        ledger = net.insert()
        log_n = math.ceil(math.log2(net.size))
        assert ledger.messages <= 4 * log_n * log_n

    def test_connected_union(self):
        net = SkipGraphOverlay(40, seed=7)
        A = net.adjacency()
        import scipy.sparse.csgraph as csgraph

        n_components, _ = csgraph.connected_components(A, directed=False)
        assert n_components == 1


class TestFlipChain:
    def test_degree_only_almost_regular(self):
        """The flip chain keeps degrees *around* d, but churn makes them
        drift (degrees 'varying around d', like Reiter et al. [26]) --
        unlike DEX's hard constant bound.  Check the drift stays moderate
        and strictly exceeds d (the comparison point of Table 1)."""
        net = FlipChainOverlay(32, d=6, seed=8)
        result = run_churn(net, RandomChurn(0.5, seed=8), steps=60, sample_every=30)
        assert 6 < result.max_degree_seen <= 4 * 6

    def test_flips_preserve_edge_count(self):
        net = FlipChainOverlay(32, d=6, seed=9)
        edges_before = int(net.adjacency().nnz)
        from repro.net.metrics import CostLedger

        net._flip_mix(CostLedger())
        assert int(net.adjacency().nnz) == edges_before


class TestSectionThreeStrawmen:
    def test_flooding_messages_linear(self):
        net = FloodingExpander(64, seed=10)
        ledger = net.insert()
        assert ledger.messages >= net.size  # Theta(n) notification flood

    def test_flooding_guarantees_gap(self):
        net = FloodingExpander(32, seed=11)
        result = run_churn(net, RandomChurn(0.5, seed=11), steps=50, sample_every=25)
        assert result.min_gap > 0.02  # deterministic expander, like DEX

    def test_global_knowledge_cheap_until_leader_dies(self):
        net = GlobalKnowledgeExpander(64, seed=12)
        cheap = net.insert()
        assert cheap.messages < 20
        expensive = net.delete(net.leader)
        assert expensive.messages >= net.size  # Omega(n) state transfer

    def test_leader_reelected(self):
        net = GlobalKnowledgeExpander(16, seed=13)
        old_leader = net.leader
        net.delete(old_leader)
        assert net.leader != old_leader
        assert net.leader in set(net.nodes())


class TestCommonInterface:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LawSiuNetwork(24, seed=14),
            lambda: SkipGraphOverlay(24, seed=14),
            lambda: FlipChainOverlay(24, seed=14),
            lambda: FloodingExpander(24, seed=14),
            lambda: GlobalKnowledgeExpander(24, seed=14),
        ],
        ids=["law-siu", "skip-graph", "flip-chain", "flooding", "global"],
    )
    def test_snapshot_and_churn(self, factory):
        overlay = factory()
        snap = snapshot(overlay)
        assert snap.n == 24
        assert snap.spectral_gap > 0
        result = run_churn(
            overlay, RandomChurn(0.6, seed=14), steps=30, sample_every=15
        )
        assert len(result.ledgers) == 30 - result.skipped_actions
        assert np.isfinite(result.min_gap)
