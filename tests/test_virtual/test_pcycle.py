"""Structure of the p-cycle expander family (Definition 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VirtualGraphError
from repro.virtual.pcycle import PCycle, cached_pcycle
from tests.conftest import SMALL_PRIMES

primes = st.sampled_from(SMALL_PRIMES)
bigger_primes = st.sampled_from([53, 67, 97, 101, 151, 199, 251])


class TestConstruction:
    def test_rejects_composite(self):
        with pytest.raises(VirtualGraphError):
            PCycle(9)

    def test_rejects_small_primes(self):
        with pytest.raises(VirtualGraphError):
            PCycle(3)

    def test_vertices(self):
        z = PCycle(23)
        assert len(z) == 23
        assert list(z.vertices()) == list(range(23))
        assert 22 in z and 23 not in z

    def test_equality_and_hash(self):
        assert PCycle(23) == PCycle(23)
        assert PCycle(23) != PCycle(29)
        assert len({PCycle(23), PCycle(23), PCycle(29)}) == 2


class TestStructure:
    @given(primes)
    def test_three_regular(self, p):
        z = PCycle(p)
        for x in z.vertices():
            assert len(z.neighbor_multiset(x)) == 3
            assert z.degree(x) == 3

    @given(primes)
    def test_self_loops_exactly_at_0_1_pminus1(self, p):
        z = PCycle(p)
        loops = {x for x in z.vertices() if z.has_self_loop(x)}
        assert loops == {0, 1, p - 1}

    @given(primes, st.data())
    def test_inverse_is_involution(self, p, data):
        z = PCycle(p)
        x = data.draw(st.integers(min_value=1, max_value=p - 1))
        inv = z.inverse(x)
        assert 1 <= inv <= p - 1
        assert z.inverse(inv) == x
        assert (x * inv) % p == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(VirtualGraphError):
            PCycle(23).inverse(0)

    @given(primes)
    def test_neighbor_relation_symmetric(self, p):
        z = PCycle(p)
        for x in z.vertices():
            for y in z.distinct_neighbors(x):
                assert x in z.distinct_neighbors(y) or x == y

    @given(primes)
    def test_edges_match_neighbor_multisets(self, p):
        z = PCycle(p)
        # each vertex's incidences from the edge list == 3
        incidence = {x: 0 for x in z.vertices()}
        for a, b in z.edges():
            if a == b:
                incidence[a] += 1
            else:
                incidence[a] += 1
                incidence[b] += 1
        assert all(count == 3 for count in incidence.values())

    @given(primes)
    def test_adjacency_rows_sum_to_three(self, p):
        A = PCycle(p).adjacency_matrix()
        sums = np.asarray(A.sum(axis=1)).ravel()
        assert np.all(sums == 3)
        assert (A != A.T).nnz == 0  # symmetric

    def test_vertex_bounds_checked(self):
        z = PCycle(23)
        with pytest.raises(VirtualGraphError):
            z.neighbor_multiset(23)
        with pytest.raises(VirtualGraphError):
            z.neighbor_multiset(-1)


class TestPaths:
    @given(bigger_primes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_shortest_path_matches_bfs(self, p, data):
        z = PCycle(p)
        src = data.draw(st.integers(min_value=0, max_value=p - 1))
        dst = data.draw(st.integers(min_value=0, max_value=p - 1))
        path = z.shortest_path(src, dst)
        assert path[0] == src and path[-1] == dst
        # consecutive vertices are neighbors
        for a, b in zip(path, path[1:]):
            assert b in z.distinct_neighbors(a)
        # exact optimality against a reference full BFS
        assert len(path) - 1 == z.bfs_distances(src)[dst]

    def test_trivial_path(self):
        z = PCycle(23)
        assert z.shortest_path(5, 5) == [5]
        assert z.distance(5, 5) == 0

    @given(primes)
    def test_connected(self, p):
        z = PCycle(p)
        assert len(z.bfs_distances(0)) == p

    def test_diameter_logarithmic(self):
        # the family has O(log p) diameter; check a generous constant
        for p in (101, 499, 997):
            ecc = PCycle(p).eccentricity(0)
            assert ecc <= 6 * np.log2(p)

    def test_cached_pcycle_identity(self):
        assert cached_pcycle(23) is cached_pcycle(23)
