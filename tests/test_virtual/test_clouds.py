"""The inflation/deflation cloud maps: the bijection claims of Lemmas
4(b) and 6(b) as executable properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VirtualGraphError
from repro.virtual.clouds import (
    deflation_cloud,
    deflation_image,
    dominating_vertex,
    inflation_cloud,
    inflation_cloud_size,
    inflation_parent,
    is_dominating,
)
from repro.virtual.primes import deflation_prime, inflation_prime, is_prime

prime_st = st.sampled_from([5, 7, 11, 13, 17, 23, 29, 41, 53, 97, 101, 151])
big_prime_st = st.sampled_from([41, 53, 97, 151, 251, 499, 997])


class TestInflation:
    @given(prime_st)
    @settings(max_examples=30, deadline=None)
    def test_clouds_partition_new_vertex_set(self, p_old):
        """Lemma 4(b): the clouds are a bijective cover of Z_{p_new}."""
        p_new = inflation_prime(p_old)
        seen: list[int] = []
        for x in range(p_old):
            seen.extend(inflation_cloud(x, p_old, p_new))
        assert sorted(seen) == list(range(p_new))

    @given(prime_st, st.data())
    def test_cloud_size_bounds(self, p_old, data):
        """Cloud sizes lie in {floor(alpha), ceil(alpha)} subset [4, 8]."""
        p_new = inflation_prime(p_old)
        x = data.draw(st.integers(min_value=0, max_value=p_old - 1))
        size = inflation_cloud_size(x, p_old, p_new)
        assert 4 <= size <= 8  # zeta bound (Section 3.1)
        assert size == len(inflation_cloud(x, p_old, p_new))

    @given(prime_st, st.data())
    def test_parent_inverts_cloud(self, p_old, data):
        p_new = inflation_prime(p_old)
        y = data.draw(st.integers(min_value=0, max_value=p_new - 1))
        x = inflation_parent(y, p_old, p_new)
        assert y in inflation_cloud(x, p_old, p_new)

    def test_cloud_of_zero_starts_at_zero(self):
        # vertex 0's cloud contains new vertex 0 (coordinator continuity)
        p_old, p_new = 23, inflation_prime(23)
        assert inflation_cloud(0, p_old, p_new)[0] == 0

    def test_rejects_wrong_direction(self):
        with pytest.raises(VirtualGraphError):
            inflation_cloud(0, 23, 11)
        with pytest.raises(VirtualGraphError):
            inflation_parent(0, 23, 11)

    def test_rejects_out_of_range(self):
        p_new = inflation_prime(23)
        with pytest.raises(VirtualGraphError):
            inflation_cloud(23, 23, p_new)
        with pytest.raises(VirtualGraphError):
            inflation_parent(p_new, 23, p_new)


class TestDeflation:
    @given(big_prime_st)
    @settings(max_examples=30, deadline=None)
    def test_image_surjective_onto_new_set(self, p_old):
        """Lemma 6(b): every new vertex is hit, exactly Z_{p_new}."""
        p_new = deflation_prime(p_old)
        images = {deflation_image(x, p_old, p_new) for x in range(p_old)}
        assert images == set(range(p_new))

    @given(big_prime_st)
    @settings(max_examples=20, deadline=None)
    def test_dominating_count_equals_p_new(self, p_old):
        p_new = deflation_prime(p_old)
        dominating = [x for x in range(p_old) if is_dominating(x, p_old, p_new)]
        assert len(dominating) == p_new

    @given(big_prime_st, st.data())
    def test_dominating_vertex_is_min_of_cloud(self, p_old, data):
        p_new = deflation_prime(p_old)
        y = data.draw(st.integers(min_value=0, max_value=p_new - 1))
        cloud = deflation_cloud(y, p_old, p_new)
        dom = dominating_vertex(y, p_old, p_new)
        assert dom == min(cloud)
        assert is_dominating(dom, p_old, p_new)
        assert all(deflation_image(x, p_old, p_new) == y for x in cloud)

    @given(big_prime_st)
    @settings(max_examples=20, deadline=None)
    def test_deflation_clouds_partition_old_set(self, p_old):
        p_new = deflation_prime(p_old)
        seen: list[int] = []
        for y in range(p_new):
            seen.extend(deflation_cloud(y, p_old, p_new))
        assert sorted(seen) == list(range(p_old))

    @given(big_prime_st, st.data())
    def test_cloud_size_bounds(self, p_old, data):
        p_new = deflation_prime(p_old)
        y = data.draw(st.integers(min_value=0, max_value=p_new - 1))
        size = len(deflation_cloud(y, p_old, p_new))
        assert 4 <= size <= 9  # alpha in (4, 8): floor/ceil + boundary cell

    def test_vertex_zero_dominates_itself(self):
        p_old = 997
        p_new = deflation_prime(p_old)
        assert is_dominating(0, p_old, p_new)
        assert deflation_image(0, p_old, p_new) == 0
        assert dominating_vertex(0, p_old, p_new) == 0

    def test_rejects_wrong_direction(self):
        with pytest.raises(VirtualGraphError):
            deflation_image(0, 11, 23)
        with pytest.raises(VirtualGraphError):
            dominating_vertex(0, 11, 23)


class TestRoundTrips:
    @given(st.integers(min_value=10, max_value=400))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_prime_pairs(self, n):
        """The maps stay consistent for every inflation pair produced by
        the algorithm's own prime selection."""
        from repro.virtual.primes import initial_prime

        p_old = initial_prime(n)
        p_new = inflation_prime(p_old)
        assert is_prime(p_old) and is_prime(p_new)
        # spot-check bijection on a stride of vertices
        for y in range(0, p_new, max(1, p_new // 97)):
            x = inflation_parent(y, p_old, p_new)
            assert y in inflation_cloud(x, p_old, p_new)
