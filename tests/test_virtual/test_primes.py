"""Primality and Bertrand-range prime selection (Section 4 setup)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VirtualGraphError
from repro.virtual.primes import (
    deflation_prime,
    inflation_prime,
    initial_prime,
    is_prime,
    next_prime_in,
)


def _trial_division(n: int) -> bool:
    if n < 2:
        return False
    d = 2
    while d * d <= n:
        if n % d == 0:
            return False
        d += 1
    return True


class TestIsPrime:
    def test_small_values(self):
        expected = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
        for n in range(50):
            assert is_prime(n) == (n in expected)

    def test_negative_and_zero(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_carmichael_numbers_rejected(self):
        # classic Fermat pseudoprimes must not fool Miller-Rabin
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_prime(carmichael)

    def test_large_known_prime(self):
        assert is_prime(2_147_483_647)  # Mersenne prime 2^31 - 1
        assert not is_prime(2_147_483_647 * 3)

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=300)
    def test_matches_trial_division(self, n):
        assert is_prime(n) == _trial_division(n)


class TestNextPrimeIn:
    def test_finds_smallest(self):
        assert next_prime_in(10, 20) == 11
        assert next_prime_in(13, 20) == 17  # open interval excludes 13

    def test_empty_interval_raises(self):
        with pytest.raises(VirtualGraphError):
            next_prime_in(24, 25)
        with pytest.raises(VirtualGraphError):
            next_prime_in(10, 10)

    def test_no_prime_in_range_raises(self):
        with pytest.raises(VirtualGraphError):
            next_prime_in(24, 29)  # 25..28 are all composite


class TestPaperRanges:
    @given(st.integers(min_value=2, max_value=5_000))
    @settings(max_examples=200)
    def test_initial_prime_in_range(self, n0):
        p = initial_prime(n0)
        assert 4 * n0 < p < 8 * n0
        assert is_prime(p)

    @given(st.integers(min_value=5, max_value=100_000).filter(is_prime))
    @settings(max_examples=200)
    def test_inflation_prime_in_range(self, p):
        q = inflation_prime(p)
        assert 4 * p < q < 8 * p
        assert is_prime(q)

    @given(st.integers(min_value=41, max_value=1_000_000).filter(is_prime))
    @settings(max_examples=200)
    def test_deflation_prime_in_range(self, p):
        q = deflation_prime(p)
        assert p / 8 < q < p / 4
        assert is_prime(q)
        assert q >= 5  # smallest supported p-cycle

    def test_initial_prime_rejects_tiny(self):
        with pytest.raises(VirtualGraphError):
            initial_prime(1)

    def test_deflation_rejects_small(self):
        with pytest.raises(VirtualGraphError):
            deflation_prime(40)

    def test_inflation_deflation_roughly_inverse(self):
        # inflating then deflating lands near the original size
        p = 101
        q = inflation_prime(p)
        r = deflation_prime(q)
        assert q / 8 < r < q / 4
        assert 0.5 * p < r < 2 * p
