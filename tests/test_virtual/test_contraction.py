"""Vertex contraction and the spectral monotonicity it relies on
(Lemma 10 / Lemma 1)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.spectral import second_eigenvalue
from repro.errors import VirtualGraphError
from repro.virtual.contraction import contract_adjacency, quotient_multigraph
from repro.virtual.pcycle import PCycle

primes = st.sampled_from([23, 29, 41, 53, 97])


def balanced_labels(p: int, m: int) -> list[int]:
    """Contiguous-arc contraction onto m blocks (the bootstrap mapping)."""
    return [min(z * m // p, m - 1) for z in range(p)]


class TestQuotient:
    def test_row_sums_preserved(self):
        z = PCycle(23)
        A = z.adjacency_matrix()
        labels = balanced_labels(23, 7)
        H = quotient_multigraph(A, labels)
        assert H.shape == (7, 7)
        # total degree mass is preserved: each block's row sum is
        # 3 * (#vertices contracted into it)
        sums = np.asarray(H.sum(axis=1)).ravel()
        sizes = np.bincount(labels)
        assert np.array_equal(sums, 3 * sizes)

    def test_symmetry(self):
        z = PCycle(29)
        H = quotient_multigraph(z.adjacency_matrix(), balanced_labels(29, 5))
        assert (H != H.T).nnz == 0

    def test_identity_contraction(self):
        z = PCycle(23)
        A = z.adjacency_matrix()
        H = quotient_multigraph(A, list(range(23)))
        assert (H != A).nnz == 0

    def test_rejects_gapped_labels(self):
        z = PCycle(23)
        labels = [0] * 23
        labels[0] = 2  # block 1 missing
        with pytest.raises(VirtualGraphError):
            quotient_multigraph(z.adjacency_matrix(), labels)

    def test_rejects_wrong_length(self):
        z = PCycle(23)
        with pytest.raises(VirtualGraphError):
            quotient_multigraph(z.adjacency_matrix(), [0, 1, 2])

    def test_dict_interface(self):
        z = PCycle(23)
        labels = balanced_labels(23, 7)
        H1 = quotient_multigraph(z.adjacency_matrix(), labels)
        H2 = contract_adjacency(z.adjacency_matrix(), dict(enumerate(labels)))
        assert (H1 != H2).nnz == 0


class TestLemma10:
    """Contraction does not increase lambda (within numerical tolerance)."""

    TOLERANCE = 1e-8

    @given(primes, st.integers(min_value=3, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_balanced_contraction_monotone(self, p, m):
        z = PCycle(p)
        A = z.adjacency_matrix()
        lam_g = second_eigenvalue(A)
        H = quotient_multigraph(A, balanced_labels(p, min(m, p)))
        lam_h = second_eigenvalue(H)
        assert lam_h <= lam_g + self.TOLERANCE

    @given(primes, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_random_balanced_contraction_monotone(self, p, rnd):
        """Random (not contiguous) surjective mappings with bounded block
        size also keep the gap (this is what DEX's balanced mapping is)."""
        z = PCycle(p)
        m = max(3, p // 6)
        labels = [i % m for i in range(p)]
        rnd.shuffle(labels)
        lam_g = second_eigenvalue(z.adjacency_matrix())
        lam_h = second_eigenvalue(quotient_multigraph(z.adjacency_matrix(), labels))
        assert lam_h <= lam_g + self.TOLERANCE

    def test_complete_graph_contracts_cleanly(self):
        n = 8
        A = sp.csr_matrix(np.ones((n, n)) - np.eye(n))
        lam_g = second_eigenvalue(A)
        labels = [i // 2 for i in range(n)]
        lam_h = second_eigenvalue(quotient_multigraph(A, labels))
        assert lam_h <= lam_g + self.TOLERANCE
