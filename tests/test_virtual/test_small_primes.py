"""Degenerate small p-cycles: p = 5 and p = 7 have overlapping chord and
ring edges (multi-edges), the hardest cases for the edge bookkeeping."""

from repro.core.mapping import LayerMapping
from repro.core.overlay import Overlay
from repro.net.topology import DynamicMultigraph
from repro.types import Layer
from repro.virtual.pcycle import PCycle


class TestPCycle5:
    """Z(5): inverses are 1->1, 2->3, 3->2, 4->4; the chord (2,3)
    coincides with a ring edge, giving a genuine double edge."""

    def test_multi_edge_between_2_and_3(self):
        z = PCycle(5)
        assert z.neighbor_multiset(2).count(3) == 2
        assert z.neighbor_multiset(3).count(2) == 2

    def test_rows_still_sum_to_three(self):
        import numpy as np

        A = PCycle(5).adjacency_matrix()
        assert np.all(np.asarray(A.sum(axis=1)).ravel() == 3)
        assert A[2, 3] == 2

    def test_edges_listed_with_multiplicity(self):
        edges = list(PCycle(5).edges())
        assert edges.count((2, 3)) == 2

    def test_overlay_handles_double_edges(self):
        graph = DynamicMultigraph()
        for u in range(2):
            graph.add_node(u)
        overlay = Overlay(graph, LayerMapping(PCycle(5), low_threshold=16))
        for z in range(5):
            overlay.activate(Layer.OLD, z, z % 2)
        for u in range(2):
            assert graph.degree(u) == overlay.expected_degree(u)
        # move the double-edge endpoint around
        overlay.move(Layer.OLD, 2, 1)
        overlay.move(Layer.OLD, 3, 0)
        expected = overlay.rebuild_expected_graph()
        for (a, b), mult in expected.items():
            assert graph.multiplicity(a, b) == mult


class TestPCycle7:
    def test_inverse_map(self):
        z = PCycle(7)
        assert z.inverse(2) == 4
        assert z.inverse(3) == 5
        assert z.inverse(6) == 6  # self-inverse -> self-loop

    def test_three_self_loops(self):
        z = PCycle(7)
        loops = [x for x in z.vertices() if z.has_self_loop(x)]
        assert loops == [0, 1, 6]

    def test_distance_bounds(self):
        z = PCycle(7)
        for a in z.vertices():
            for b in z.vertices():
                assert z.distance(a, b) <= 3
