"""The command-line experiment runner."""

import pytest

from repro.cli import ADVERSARIES, build_parser, main
from repro.harness import OVERLAY_FACTORIES


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "dex" in out and "law-siu" in out
        assert "degree-attack" in out

    def test_default_run(self, capsys):
        assert main(["--steps", "30", "--n0", "16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "dex vs random" in out
        assert "spectral gap" in out
        assert "messages" in out

    def test_baseline_run(self, capsys):
        assert (
            main(
                [
                    "--overlay",
                    "law-siu",
                    "--adversary",
                    "degree-attack",
                    "--steps",
                    "20",
                    "--n0",
                    "16",
                ]
            )
            == 0
        )
        assert "law-siu vs degree-attack" in capsys.readouterr().out

    def test_campaign_mode(self, capsys):
        assert (
            main(
                [
                    "--campaign",
                    "--adversary",
                    "flash-crowd",
                    "--steps",
                    "64",
                    "--max-batch",
                    "16",
                    "--n0",
                    "32",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "dex vs flash-crowd" in out
        assert "campaign: 64 events" in out

    def test_every_registered_pair_has_factories(self):
        for name, factory in ADVERSARIES.items():
            assert callable(factory), name
        for name, factory in OVERLAY_FACTORIES.items():
            assert callable(factory), name

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--overlay", "bogus"])
