"""Crash-safe snapshots: order-faithful round-trips (restored networks
are *bit-identical* in behaviour), atomic durability, checksum-verified
loads that refuse every flavour of corruption, and checkpoint-directory
management."""

from __future__ import annotations

import json
import random

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import CorruptSnapshot, SnapshotError
from repro.persist import (
    SNAPSHOT_SCHEMA,
    list_checkpoints,
    load_snapshot,
    prune_checkpoints,
    restore_latest,
    save_snapshot,
    state_fingerprint,
)
from repro.persist.snapshot import MANIFEST_NAME, checkpoint_name


def make_net(n0: int = 24, seed: int = 9, **overrides) -> DexNetwork:
    config = DexConfig(seed=seed, type2_mode="simplified").with_(**overrides)
    return DexNetwork.bootstrap(n0, config, seed=seed)


def churn(net: DexNetwork, driver: random.Random, steps: int) -> list:
    """Mixed insert/delete steps drawn from ``driver``; returns the
    step reports (the behavioural transcript)."""
    reports = []
    for _ in range(steps):
        if driver.random() < 0.55 or net.size <= net.config.min_network_size:
            reports.append(net.insert())
        else:
            reports.append(net.delete(driver.choice(net.graph._nodes)))
    return reports


def full_audit(net: DexNetwork) -> None:
    invariants.check_all(net.overlay, net.config)
    invariants.check_wave_engine_equivalence(net.overlay)
    net.graph.verify_caches()
    assert net.coordinator.verify(), "coordinator counters diverged"


class TestRoundTrip:
    def test_fingerprint_identical_and_audit_passes(self, tmp_path):
        net = make_net()
        churn(net, random.Random(3), 60)
        restored = load_snapshot(save_snapshot(net, tmp_path))
        assert state_fingerprint(restored) == state_fingerprint(net)
        full_audit(restored)

    def test_subsequent_churn_is_bit_identical(self, tmp_path):
        """The restored network must not merely be isomorphic: driven by
        an identically seeded driver it must emit the same StepReports
        and land in the same state -- container orders and rng state
        round-trip exactly."""
        net = make_net()
        churn(net, random.Random(31), 50)
        restored = load_snapshot(save_snapshot(net, tmp_path))
        original_transcript = churn(net, random.Random(77), 40)
        restored_transcript = churn(restored, random.Random(77), 40)
        assert restored_transcript == original_transcript
        assert state_fingerprint(restored) == state_fingerprint(net)

    def test_staggered_config_round_trips_at_steady_state(self, tmp_path):
        net = make_net(type2_mode="staggered")
        churn(net, random.Random(5), 30)
        restored = load_snapshot(save_snapshot(net, tmp_path))
        assert restored.config.type2_mode == "staggered"
        assert state_fingerprint(restored) == state_fingerprint(net)
        assert churn(net, random.Random(8), 20) == churn(
            restored, random.Random(8), 20
        )

    def test_fresh_bootstrap_round_trips(self, tmp_path):
        net = make_net(n0=12)
        restored = load_snapshot(save_snapshot(net, tmp_path))
        assert state_fingerprint(restored) == state_fingerprint(net)

    def test_save_is_idempotent_per_step(self, tmp_path):
        net = make_net()
        first = save_snapshot(net, tmp_path)
        again = save_snapshot(net, tmp_path)
        assert first == again
        assert list_checkpoints(tmp_path) == [first]

    def test_save_refuses_mid_recovery_state(self, tmp_path):
        net = make_net()
        net.staggered = object()  # a staggered type-2 recovery in flight
        with pytest.raises(SnapshotError):
            save_snapshot(net, tmp_path)

    def test_no_temp_orphans_after_save(self, tmp_path):
        net = make_net()
        save_snapshot(net, tmp_path)
        assert not [p for p in tmp_path.iterdir() if p.name.startswith(".tmp")]


class TestCorruption:
    def checkpoint(self, tmp_path, steps: int = 40):
        net = make_net()
        churn(net, random.Random(13), steps)
        return net, save_snapshot(net, tmp_path)

    def test_flipped_array_byte_is_refused(self, tmp_path):
        _, path = self.checkpoint(tmp_path)
        target = path / "nodes.npy"
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(CorruptSnapshot, match="checksum"):
            load_snapshot(path)

    def test_truncated_manifest_is_refused(self, tmp_path):
        _, path = self.checkpoint(tmp_path)
        manifest = path / MANIFEST_NAME
        manifest.write_bytes(manifest.read_bytes()[: manifest.stat().st_size // 2])
        with pytest.raises(CorruptSnapshot, match="JSON"):
            load_snapshot(path)

    def test_missing_manifest_is_refused(self, tmp_path):
        _, path = self.checkpoint(tmp_path)
        (path / MANIFEST_NAME).unlink()
        with pytest.raises(CorruptSnapshot, match="manifest"):
            load_snapshot(path)

    def test_missing_array_is_refused(self, tmp_path):
        _, path = self.checkpoint(tmp_path)
        (path / "adj_mult.npy").unlink()
        with pytest.raises(CorruptSnapshot, match="missing array"):
            load_snapshot(path)

    def test_foreign_schema_is_refused(self, tmp_path):
        _, path = self.checkpoint(tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["schema"] = "dex-snapshot/999"
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CorruptSnapshot, match="schema"):
            load_snapshot(path)

    def test_consistent_rewrite_with_wrong_aggregates_is_refused(self, tmp_path):
        """An attacker (or bitrot survivor) who fixes the checksums but
        leaves the manifest aggregates stale still gets refused: the
        loader recomputes edge units / connections from the triplets."""
        _, path = self.checkpoint(tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["edge_units"] += 1
        (path / MANIFEST_NAME).write_text(json.dumps(manifest, sort_keys=True))
        with pytest.raises(CorruptSnapshot, match="edge units"):
            load_snapshot(path)

    def test_restore_latest_falls_back_to_older_checkpoint(self, tmp_path):
        net = make_net()
        churn(net, random.Random(2), 20)
        old_fingerprint = state_fingerprint(net)
        old_path = save_snapshot(net, tmp_path)
        churn(net, random.Random(3), 20)
        new_path = save_snapshot(net, tmp_path)
        blob = bytearray((new_path / "adj_src.npy").read_bytes())
        blob[-1] ^= 0x01
        (new_path / "adj_src.npy").write_bytes(bytes(blob))

        restored, path, skipped = restore_latest(tmp_path)
        assert path == old_path
        assert [p for p, _err in skipped] == [new_path]
        assert all(isinstance(e, CorruptSnapshot) for _p, e in skipped)
        assert state_fingerprint(restored) == old_fingerprint

    def test_restore_latest_without_checkpoints_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="no checkpoint"):
            restore_latest(tmp_path)

    def test_restore_latest_all_corrupt_raises(self, tmp_path):
        _, path = self.checkpoint(tmp_path)
        (path / MANIFEST_NAME).unlink()
        with pytest.raises(SnapshotError, match="corrupt"):
            restore_latest(tmp_path)


class TestCheckpointDirectory:
    def test_list_sorts_and_ignores_foreign_entries(self, tmp_path):
        net = make_net()
        first = save_snapshot(net, tmp_path)
        churn(net, random.Random(1), 10)
        second = save_snapshot(net, tmp_path)
        (tmp_path / ".tmp-ckpt-000000000099-123").mkdir()
        (tmp_path / "ckpt-notanumber").mkdir()
        (tmp_path / "unrelated.txt").write_text("x")
        assert list_checkpoints(tmp_path) == [first, second]

    def test_prune_keeps_the_newest(self, tmp_path):
        net = make_net()
        paths = []
        for burst in range(4):
            churn(net, random.Random(burst), 5)
            paths.append(save_snapshot(net, tmp_path))
        removed = prune_checkpoints(tmp_path, keep=2)
        assert removed == paths[:2]
        assert list_checkpoints(tmp_path) == paths[2:]
        with pytest.raises(ValueError):
            prune_checkpoints(tmp_path, keep=0)

    def test_checkpoint_name_is_zero_padded_and_sortable(self):
        assert checkpoint_name(7) == "ckpt-000000000007"
        assert checkpoint_name(10**10) > checkpoint_name(999)

    def test_schema_constant_exported(self):
        assert SNAPSHOT_SCHEMA.startswith("dex-snapshot/")


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    steps=st.integers(min_value=0, max_value=60),
    extra=st.integers(min_value=1, max_value=25),
)
def test_property_round_trip_then_identical_futures(tmp_path_factory, seed, steps, extra):
    """Churn N steps, snapshot, restore: state fingerprints match and a
    shared-seed future produces bit-identical transcripts on both."""
    root = tmp_path_factory.mktemp("snap")
    net = make_net(n0=14, seed=seed % 97)
    churn(net, random.Random(seed), steps)
    restored = load_snapshot(save_snapshot(net, root))
    assert state_fingerprint(restored) == state_fingerprint(net)
    assert churn(net, random.Random(seed + 1), extra) == churn(
        restored, random.Random(seed + 1), extra
    )
    assert state_fingerprint(restored) == state_fingerprint(net)
    restored.check_invariants()
    restored.graph.verify_caches()
