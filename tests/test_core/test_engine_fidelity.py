"""Cross-check the two cost-fidelity modes (DESIGN.md substitution 1):
the `engine` mode schedules every computeSpare/computeLow message on the
synchronous engine, the `analytic` mode charges the closed form; the
aggregates must be identical and the charges must agree."""

import pytest

from repro.core.aggregation import compute_low, compute_spare
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.net.metrics import CostLedger


@pytest.fixture
def nets():
    analytic = DexNetwork.bootstrap(14, DexConfig(seed=31, fidelity="analytic"))
    engine = DexNetwork.bootstrap(14, DexConfig(seed=31, fidelity="engine"))
    return analytic, engine


class TestFidelityAgreement:
    def test_compute_spare_same_aggregate(self, nets):
        analytic, engine = nets
        origin = 0
        la, le = CostLedger(), CostLedger()
        na, sa = compute_spare(analytic.overlay, origin, analytic.config, la)
        ne, se = compute_spare(engine.overlay, origin, engine.config, le)
        assert (na, sa) == (ne, se)
        assert la.messages == le.messages
        assert abs(la.rounds - le.rounds) <= 3

    def test_compute_low_same_aggregate(self, nets):
        analytic, engine = nets
        la, le = CostLedger(), CostLedger()
        assert compute_low(analytic.overlay, 0, analytic.config, la) == compute_low(
            engine.overlay, 0, engine.config, le
        )
        assert la.messages == le.messages

    def test_engine_mode_full_churn(self):
        """A short full-churn run in engine fidelity stays correct (the
        expensive path; exercised here at small n)."""
        net = DexNetwork.bootstrap(
            12,
            DexConfig(
                seed=33,
                fidelity="engine",
                type2_mode="simplified",
                validate_every_step=True,
            ),
        )
        for _ in range(60):
            net.insert()
        assert net.spectral_gap() > 0.01

    def test_engine_mode_matches_analytic_history(self):
        """With identical seeds the two modes make identical topology
        decisions (only cost accounting differs)."""
        def history(fidelity):
            net = DexNetwork.bootstrap(12, DexConfig(seed=35, fidelity=fidelity))
            out = []
            for _ in range(30):
                report = net.insert()
                out.append((report.recovery, report.n_after, report.p))
            return out

        assert history("analytic") == history("engine")
