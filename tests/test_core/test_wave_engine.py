"""The vectorized lockstep wave engine vs. the scalar reference inside
the *full* batch healing engine (PR 3).

Both engines implement one draw protocol, so two networks driven by the
same seed and the same adversarial schedule -- one healing through
``wave_engine="vector"``, one through ``wave_engine="scalar"`` -- must
stay *identical* step for step: same node set, same adjacency, same
vertex hosting, same Spare/Low sets, same ledger costs.  This is the
differential test behind the engine-equivalence invariant; a transcript
divergence anywhere in 200 mixed batches fails loudly at the first
diverging round.
"""

from __future__ import annotations

import random

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.core.multi import delete_batch, insert_batch
from repro.errors import AdversaryError


def engine_net(engine: str, n0: int = 24, seed: int = 61) -> DexNetwork:
    config = DexConfig(
        seed=seed,
        type2_mode="simplified",
        validate_every_step=False,
        wave_engine=engine,
    )
    return DexNetwork.bootstrap(n0, config, seed=seed)


def assert_networks_identical(a: DexNetwork, b: DexNetwork, step: int) -> None:
    assert a.size == b.size, f"sizes diverged at step {step}"
    assert a.p == b.p, f"cycle primes diverged at step {step}"
    assert sorted(a.nodes()) == sorted(b.nodes()), f"node sets diverged at step {step}"
    assert a.overlay.old.host == b.overlay.old.host, (
        f"vertex hosting diverged at step {step}"
    )
    assert a.overlay.old.spare == b.overlay.old.spare, (
        f"Spare sets diverged at step {step}"
    )
    assert a.overlay.old.low == b.overlay.old.low, f"Low sets diverged at step {step}"
    for u in a.nodes():
        assert dict(a.graph._adj[u]) == dict(b.graph._adj[u]), (
            f"adjacency diverged at node {u}, step {step}"
        )


def drive_same_schedule(vec: DexNetwork, sca: DexNetwork, steps: int) -> None:
    """One adversary rng per network (identical seeds) so engine-side
    draws can never skew the schedule."""
    rng_v, rng_s = random.Random(17), random.Random(17)
    for step in range(steps):
        grow = (step % 4 != 3) if vec.size < 120 else (step % 2 == 0)
        size = 2 + (step % 7)
        if grow:
            pairs_v = _insert_batch_for(vec, rng_v, size)
            pairs_s = _insert_batch_for(sca, rng_s, size)
            assert pairs_v == pairs_s
            rv = insert_batch(vec, pairs_v)
            rs = insert_batch(sca, pairs_s)
        else:
            size = min(size, vec.size - vec.config.min_network_size)
            if size < 1:
                continue
            victims_v = _victims_for(vec, rng_v, size)
            victims_s = _victims_for(sca, rng_s, size)
            assert victims_v == victims_s
            try:
                rv = delete_batch(vec, victims_v)
            except AdversaryError:
                # Model-level rejection is schedule-side, not engine-side:
                # the scalar twin must reject the identical batch.
                try:
                    delete_batch(sca, victims_s)
                except AdversaryError:
                    continue
                raise AssertionError(
                    f"engines disagreed on batch rejection at step {step}"
                )
            rs = delete_batch(sca, victims_s)
        assert rv.recovery == rs.recovery, f"recovery kinds diverged at step {step}"
        assert rv.rounds == rs.rounds, f"wave rounds diverged at step {step}"
        assert rv.costs.messages == rs.costs.messages, (
            f"message costs diverged at step {step}"
        )
        assert_networks_identical(vec, sca, step)


def _insert_batch_for(net: DexNetwork, rng: random.Random, size: int):
    per_host: dict[int, int] = {}
    pairs = []
    base = net.fresh_id()
    for i in range(size):
        host = net.sample_node(rng)
        while per_host.get(host, 0) >= 4:
            host = net.sample_node(rng)
        per_host[host] = per_host.get(host, 0) + 1
        pairs.append((base + i, host))
    return pairs


def _victims_for(net: DexNetwork, rng: random.Random, size: int) -> list[int]:
    victims: set[int] = set()
    while len(victims) < size:
        victims.add(net.sample_node(rng))
    return sorted(victims)


class TestEngineDifferential:
    def test_200_mixed_batches_transcript_equal(self):
        """200 mixed insert/delete batches: the vector-healed network
        must be indistinguishable from the scalar-healed one after every
        single batch (crossing type-2 inflations and deflations)."""
        vec = engine_net("vector")
        sca = engine_net("scalar")
        drive_same_schedule(vec, sca, steps=200)
        # both ends are also internally consistent
        invariants.check_all(vec.overlay, vec.config)
        invariants.check_all(sca.overlay, sca.config)

    def test_wave_oracle_catches_protocol_drift(self):
        """The invariant oracle itself: run it on a healthy network (it
        must pass) -- drift between the engines is simulated by the unit
        fuzz in tests/test_net/test_walks.py, so here we only prove the
        oracle is wired and runs."""
        net = engine_net("auto")
        invariants.check_wave_engine_equivalence(net.overlay)
