"""The coordinator (Algorithm 4.7): exact counters, O(log n) update
costs, and survival of targeted deletion."""

from repro.adversary.adaptive import CoordinatorAttack
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.net.metrics import CostLedger
from tests.conftest import drive_inserts


class TestCounters:
    def test_ground_truth_after_every_step(self, small_net):
        for i in range(30):
            if i % 4 == 3 and small_net.size > 8:
                small_net.delete(small_net.random_node())
            else:
                small_net.insert()
            assert small_net.coordinator.verify()

    def test_initial_state(self, small_net):
        c = small_net.coordinator
        assert c.n == 16
        assert c.spare == 16  # bootstrap loads are 4..8, all >= 2
        assert c.low == 16

    def test_thresholds(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=3, theta=0.05))
        c = net.coordinator
        c.spare = 0
        assert c.wants_inflate()
        c.spare = net.size
        assert not c.wants_inflate()

    def test_update_cost_logarithmic(self, small_net):
        drive_inserts(small_net, 30)
        ledger = CostLedger()
        some_node = small_net.random_node()
        small_net.coordinator.charge_update(some_node, ledger)
        # route + O(1) replication
        assert ledger.messages <= 4 * small_net.config.walk_length(small_net.size)


class TestCoordinatorUnderAttack:
    def test_repeated_coordinator_kills(self, small_net):
        attack = CoordinatorAttack(seed=5, insert_every=2)
        for _ in range(30):
            action = attack.next_action(small_net)
            if action.kind == "insert":
                small_net.insert(attach_to=action.attach_to)
            else:
                small_net.delete(action.node)
            assert small_net.coordinator.verify()
            # vertex 0 is always simulated somewhere
            assert small_net.overlay.old.is_active(0) or (
                small_net.overlay.new is not None
                and small_net.overlay.new.is_active(0)
            )

    def test_kill_cost_constant_not_linear(self, small_net):
        """Unlike the Section 3 global-knowledge strawman, killing the
        coordinator costs O(log n), not Omega(n)."""
        drive_inserts(small_net, 40)
        n = small_net.size
        report = small_net.delete(small_net.coordinator.node)
        assert report.messages < n  # strawman would pay >= 3n
