"""The invariant checker must actually detect corrupted states."""

import pytest

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import InvariantViolation
from repro.types import Layer


@pytest.fixture
def net():
    return DexNetwork.bootstrap(12, DexConfig(seed=71))


class TestDetection:
    def test_clean_network_passes(self, net):
        invariants.check_all(net.overlay, net.config)

    def test_detects_missing_edge(self, net):
        u = net.random_node()
        v = net.graph.distinct_neighbors(u)[0]
        net.graph.remove_edge(u, v, 1)
        with pytest.raises(InvariantViolation):
            invariants.check_all(net.overlay, net.config)

    def test_detects_extra_edge(self, net):
        nodes = sorted(net.nodes())
        net.graph.add_edge(nodes[0], nodes[-1])
        with pytest.raises(InvariantViolation):
            invariants.check_all(net.overlay, net.config)

    def test_detects_empty_node(self, net):
        # strip all vertices from one node by brute-force moves
        victim = sorted(net.nodes())[1]
        target = sorted(net.nodes())[2]
        for z in list(net.overlay.old.vertices_of(victim)):
            net.overlay.move(Layer.OLD, z, target)
        with pytest.raises(InvariantViolation):
            invariants.check_surjectivity(net.overlay)

    def test_detects_overload(self, net):
        target = sorted(net.nodes())[0]
        moved = 0
        for z in range(net.p):
            if net.overlay.old.host_of(z) != target:
                net.overlay.move(Layer.OLD, z, target)
                moved += 1
            if moved > net.config.max_load + 4:
                break
        with pytest.raises(InvariantViolation):
            invariants.check_balance(net.overlay, net.config)

    def test_detects_stale_spare_set(self, net):
        net.overlay.old.spare.discard(sorted(net.overlay.old.spare)[0])
        with pytest.raises(Exception):
            invariants.check_mapping_sets(net.overlay)

    def test_detects_disconnection(self, net):
        # sever a node by removing all its real edges behind the books
        u = sorted(net.nodes())[0]
        for v in list(net.graph.distinct_neighbors(u)):
            net.graph.remove_edge(u, v, net.graph.multiplicity(u, v))
        with pytest.raises(InvariantViolation):
            invariants.check_connectivity(net.overlay)
